#!/usr/bin/env python3
"""Active learning: train a GP surrogate on the flux x architecture campaign.

This example walks the full ``repro.ml`` loop on the paper's 3D-MPSoC
design space (Sec. V architectures, coolant flow rate as the knob):

1. run a small seed campaign over flow rate x Niagara architecture into a
   campaign store (the labelled training set),
2. fit an exact Gaussian-process surrogate from that store,
3. check it against a held-out exact solve -- the truth must land inside
   the model's own 3 sigma,
4. run active-learning rounds: score a denser candidate sweep with the
   expected-improvement acquisition, solve only the most informative
   points, refit, and watch the mean predictive std shrink,
5. use the final surrogate to scan the whole design space in microseconds
   per query.

Run it with ``python examples/active_learning.py`` (or step 4 from the
shell with ``repro ml active campaign.jsonl candidates.json``).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import Session, build_dataset, get_scenario, make_surrogate, select_batch
from repro.scenarios import GridSpec, OptimizerSpec
from repro.sweeps import SweepAxis, SweepSpec, apply_field_overrides

#: Coarse grids keep every exact solve under ~10 ms; the surrogate's
#: whole point is making even these cheap solves unnecessary in bulk.
GRID = GridSpec(n_grid_points=41, n_lanes=2, n_rows=4, n_cols=8)
OPTIMIZER = OptimizerSpec(n_segments=2, max_iterations=3)

ARCHITECTURES = ("arch1", "arch2", "arch3")
SEED_FLOWS = (6.0e-9, 9.0e-9, 1.2e-8)
POOL_FLOWS = tuple(float(f) for f in np.linspace(6.0e-9, 1.2e-8, 7))


def base_spec():
    return get_scenario("niagara-arch1").with_overrides(
        grid=GRID, optimizer=OPTIMIZER
    )


def flux_architecture_sweep(name, flows):
    return SweepSpec(
        name=name,
        base=base_spec(),
        axes=(
            SweepAxis("params.flow_rate_per_channel", flows, label="flow"),
            SweepAxis("workload.architecture", ARCHITECTURES, label="arch"),
        ),
    )


def main() -> None:
    session = Session()
    workdir = Path(tempfile.mkdtemp(prefix="repro-active-"))
    store = workdir / "campaign.jsonl"

    # 1. The seed campaign: 3 flow rates x 3 architectures, exact solves.
    seed = flux_architecture_sweep("al-seed", SEED_FLOWS)
    campaign = session.run_many(seed, out=store)
    print(
        f"seed campaign: {campaign.n_ok} exact solves "
        f"into {store.name} ({campaign.wall_time_s:.2f} s)"
    )

    # 2. Fit the exact GP from the store.
    dataset = build_dataset(store)
    model = make_surrogate("gp").fit(dataset)
    target = "peak_temperature_K"
    index = list(model.targets).index(target)
    print(
        f"GP fitted on {dataset.X.shape[0]} samples, "
        f"features: {', '.join(dataset.schema.column_names())}"
    )

    # 3. Held-out check: an interior point the model never saw.
    held_out = apply_field_overrides(
        base_spec(),
        {
            "params.flow_rate_per_channel": 8.0e-9,
            "workload.architecture": "arch2",
        },
        name="al-held-out",
    )
    truth = session.run(held_out).peak_temperature_K
    mean, std = model.predict_specs([held_out])
    error = abs(float(mean[0, index]) - truth)
    print(
        f"held-out (8 nl/s, arch2): predicted "
        f"{float(mean[0, index]):.3f} +/- {float(std[0, index]):.3f} K, "
        f"truth {truth:.3f} K -> error {error:.3f} K "
        f"({'inside' if error <= 3 * float(std[0, index]) else 'OUTSIDE'} 3 sigma)"
    )

    # 4. Active-learning rounds over a denser candidate pool.  Labelled
    # points are excluded by physical identity, so each round only ever
    # pays for genuinely new solves -- and the store accumulates them.
    pool = flux_architecture_sweep("al-pool", POOL_FLOWS)
    for round_index in range(2):
        dataset = build_dataset(store)
        model = make_surrogate("gp").fit(dataset)
        _, std_pool = model.predict_specs(pool.scenarios())
        before = float(std_pool[:, index].mean())

        selection = select_batch(
            model,
            pool,
            n_points=4,
            acquisition="ei",
            target=target,
            exclude=dataset.specs,
        )
        labels = [
            spec.name.rsplit("/", 1)[-1] for spec in selection.sweep.scenarios()
        ]
        campaign = session.run_many(selection.sweep, out=store)

        refit = make_surrogate("gp").fit(
            build_dataset(store, schema=dataset.schema)
        )
        _, std_after = refit.predict_specs(pool.scenarios())
        after = float(std_after[:, index].mean())
        print(
            f"round {round_index + 1}: solved {campaign.n_ok} points "
            f"({', '.join(labels)}); mean std over the pool "
            f"{before:.4f} -> {after:.4f} K"
        )

    # 5. The payoff: scan the full design space from the surrogate alone.
    final = make_surrogate("gp").fit(build_dataset(store))
    scan_flows = np.linspace(6.0e-9, 1.2e-8, 25)
    print()
    print("predicted peak temperature (K) across the design space:")
    header = "  flow [nl/s] " + "".join(f"{a:>10s}" for a in ARCHITECTURES)
    print(header)
    for flow in scan_flows[:: len(scan_flows) // 8]:
        specs = [
            apply_field_overrides(
                base_spec(),
                {
                    "params.flow_rate_per_channel": float(flow),
                    "workload.architecture": arch,
                },
            )
            for arch in ARCHITECTURES
        ]
        mean, _ = final.predict_specs(specs)
        row = "".join(f"{float(m):10.2f}" for m in mean[:, index])
        print(f"  {flow * 1e9:11.2f} {row}")


if __name__ == "__main__":
    main()
