#!/usr/bin/env python3
"""Channel modulation under hotspots distributed along the flow path (Test B).

The related-work approaches (channel clustering, non-uniform channel
density) adapt the cooling *across* the die but cannot react to hotspots
placed *along* a single channel.  The paper's Test B (Fig. 4b) stresses
exactly that case: the strip under one channel is split into segments, each
drawing a random heat flux in [50, 250] W/cm^2.

This example drives the flow through the scenario API:

1. fetches the registered ``test-b`` scenario (deterministic seed baked
   into the spec, so the workload is reproducible from its JSON form),
2. runs the optimal channel modulation,
3. compares it against the uniform-width baselines *and* the "best uniform
   width" design (the strongest design available without modulation), and
4. shows how the optimized channel narrows over the hot segments.

Run it with ``python examples/test_structure_hotspots.py`` (or get the raw
numbers with ``repro optimize test-b --json``).
"""

from __future__ import annotations

import numpy as np

from repro import ChannelModulationDesigner, Session, get_scenario
from repro.analysis import format_table, render_profile, render_width_profile
from repro.floorplan import test_b_fluxes


def main() -> None:
    spec = get_scenario("test-b")
    config = spec.experiment_config()
    top_fluxes, bottom_fluxes = test_b_fluxes(config)
    print(f"scenario {spec.name}: {spec.description}")
    print("Test B per-segment heat fluxes (W/cm^2):")
    print("  top layer:   ", np.round(top_fluxes, 0))
    print("  bottom layer:", np.round(bottom_fluxes, 0))

    # The session shares one solution cache between the optimization and
    # the designer baselines below.
    session = Session()
    outcome = session.optimize(spec)
    result = outcome.result

    # The best-uniform baseline comes from the classic designer, built from
    # the same spec (and sharing the session's evaluation engine).
    designer = ChannelModulationDesigner.from_spec(
        spec, engine=session.engine_for(spec)
    )
    best_uniform = designer.best_uniform()

    rows = result.comparison_table()
    rows.insert(-1, best_uniform.summary())
    print()
    print(format_table(rows))

    solution = result.optimal.solution
    print()
    print(
        render_profile(
            solution.z,
            solution.temperature_change_from_inlet()[0, 0],
            label="top-layer temperature change from inlet (optimal design)",
            unit="K",
        )
    )
    print()
    print(render_width_profile(result.optimal.width_profiles[0]))

    hottest_segment = int(np.argmax(top_fluxes + bottom_fluxes))
    widths = result.optimal.width_profiles[0].segment_widths * 1e6
    print()
    print(
        f"hottest segment is #{hottest_segment} "
        f"({top_fluxes[hottest_segment] + bottom_fluxes[hottest_segment]:.0f} "
        f"W/cm^2 combined); optimized widths per segment (um): "
        f"{np.round(widths, 1)}"
    )
    print(
        f"gradient reduction vs uniform widths: "
        f"{result.gradient_reduction * 100:.0f}%  "
        f"(best single uniform width achieves "
        f"{(1 - best_uniform.thermal_gradient / result.reference_gradient) * 100:.0f}%)"
    )


if __name__ == "__main__":
    main()
