#!/usr/bin/env python3
"""Transient scenarios and runtime flow-control policies, end to end.

The paper balances temperature *statically* by shaping the channels; its
runtime companion work modulates the *coolant flow* while the workload
runs.  This example drives both transient features of the library:

1. fetch the registered trace-driven ``test-a-burst`` scenario (the top
   die duty-cycles 100/10 W/cm^2 every 0.1 s) and simulate it through the
   finite-volume transient engine,
2. sweep three runtime flow-control policies (constant, bang-bang,
   proportional) over the same trace in one campaign, and
3. print the transient metrics the campaign records for each policy:
   peak transient temperature, time above threshold, thermal-cycling
   amplitude and the pumping energy the policy spent.

Run it with ``python examples/transient_policies.py`` (or step 1 from the
shell with ``repro run test-a-burst --json``).
"""

from __future__ import annotations

from dataclasses import replace

from repro import Session, get_scenario, run_many
from repro.analysis import format_table
from repro.sweeps import SweepSpec
from repro.transient import PolicySpec


def main() -> None:
    # 1. One trace-driven transient run (uncontrolled flow).
    base = get_scenario("test-a-burst")
    print(f"scenario {base.name}: {base.description}")
    session = Session()
    result = session.run(base)
    transient = result.transient
    print(
        f"uncontrolled: peak {result.peak_temperature_K - 273.15:.1f} C over "
        f"{transient['duration_s']:.1f} s, "
        f"{transient['time_above_threshold_s']:.2f} s above "
        f"{transient['threshold_K'] - 273.15:.0f} C, cycling amplitude "
        f"{transient['thermal_cycling_amplitude_K']:.1f} K"
    )

    # 2. The same trace under three flow-control policies, as one campaign.
    # The bang-bang controller doubles the flow above 45 C; the
    # proportional controller tracks a 40 C setpoint.
    controlled = base.with_overrides(
        name="burst-policies",
        transient=replace(
            base.transient,
            policy=PolicySpec(
                kind="constant",
                control_interval_s=0.1,
                threshold_K=318.15,   # bang-bang trigger: 45 C
                high_scale=2.0,
                setpoint_K=313.15,    # proportional setpoint: 40 C
                gain_per_K=0.05,
                min_scale=0.5,
                max_scale=2.0,
            ),
        ),
    )
    sweep = SweepSpec(
        name="flow-policies",
        base=controlled,
        axes=(
            {
                "field": "transient.policy.kind",
                "values": ["constant", "bang-bang", "proportional"],
            },
        ),
    )
    campaign = run_many(sweep, session=session)

    # 3. The transient metrics per policy, side by side.
    rows = []
    for record in campaign.records:
        metrics = record["result"]["transient"]
        rows.append(
            {
                "policy": metrics["policy"],
                "peak [C]": round(
                    metrics["peak_transient_temperature_K"] - 273.15, 2
                ),
                "t>thr [s]": round(metrics["time_above_threshold_s"], 3),
                "cycling [K]": round(
                    metrics["thermal_cycling_amplitude_K"], 2
                ),
                "pump [mJ]": round(metrics["pumping_energy_J"] * 1e3, 3),
                "flow changes": metrics["n_flow_changes"],
            }
        )
    print()
    print(format_table(rows))
    print(
        "\nMore flow when (and only when) the die runs hot: the reactive "
        "policies trade pumping energy against time above threshold."
    )


if __name__ == "__main__":
    main()
