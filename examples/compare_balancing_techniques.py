#!/usr/bin/env python3
"""Compare channel modulation against the related-work balancing techniques.

The paper's related-work section (Sec. II) discusses three alternative ways
of fighting the liquid-cooling thermal gradient: per-cluster coolant flow
rates (Qian et al.), non-uniform channel density (Shi et al.) and changed
flow routing (Brunschwiler et al.).  This example evaluates all of them on
the same two-die Niagara cavity -- built declaratively from the registered
``niagara-arch*`` scenario -- together with the paper's optimal
channel-width modulation, and prints a single ranking table.

Run it with ``python examples/compare_balancing_techniques.py [arch1|arch2|arch3]``.
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro import get_scenario
from repro.analysis import format_table
from repro.related import compare_techniques


def main(architecture_name: str = "arch1") -> None:
    base = get_scenario(f"niagara-{architecture_name}")
    spec = base.with_overrides(
        grid=replace(base.grid, n_grid_points=141, n_cols=40),
        optimizer=replace(base.optimizer, n_segments=5, max_iterations=30),
    )
    cavity = spec.build_structure()
    print(
        f"{spec.name} at peak power: {cavity.n_lanes} lanes x "
        f"{cavity.cluster_size} channels, {cavity.total_power:.1f} W"
    )

    evaluations = compare_techniques(
        cavity,
        spec.optimizer_settings(),
        optimize_flow=True,
        n_points=spec.grid.n_grid_points,
    )
    reference = next(
        e for e in evaluations if e.label == "uniform maximum"
    ).thermal_gradient

    rows = []
    for evaluation in evaluations:
        rows.append(
            {
                "technique": evaluation.label,
                "thermal_gradient_K": evaluation.thermal_gradient,
                "peak_C": evaluation.peak_temperature - 273.15,
                "reduction_vs_uniform_pct": (
                    (1.0 - evaluation.thermal_gradient / reference) * 100.0
                ),
                "max_pressure_bar": evaluation.max_pressure_drop / 1e5,
            }
        )
    print()
    print(format_table(rows))
    print()
    print(
        "Channel modulation adapts the cooling both across the die and along "
        "the flow path, which is why it leads this table; the lateral-only "
        "techniques cannot react to hotspots distributed along a channel "
        "(see the paper's Sec. II discussion and the Test B example)."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "arch1")
