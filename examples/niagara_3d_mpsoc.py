#!/usr/bin/env python3
"""Thermal balancing of a two-die UltraSPARC T1 (Niagara-1) 3D-MPSoC.

This example reproduces the protocol of Sec. V-B of the paper on one of the
Fig. 7 architectures, end to end through the scenario API:

1. fetch the registered ``niagara-arch*`` scenario (two-die stacking,
   peak-power workload, channels clustered into a handful of modeled
   lanes),
2. design the optimal per-lane channel-width modulation at peak power with
   ``Session.optimize``,
3. re-evaluate the *same* width profiles under the average-power scenario
   (the paper applies the design-time solution to both load levels), and
4. render the top-die thermal maps of the minimum / optimal / maximum width
   designs with the finite-volume simulator (the content of Fig. 9) by
   running design-pinned scenario variants with ``--solver ice`` semantics.

Run it with ``python examples/niagara_3d_mpsoc.py [arch1|arch2|arch3]``
(or start from the shell: ``repro optimize niagara-arch1 --save-design
opt.json && repro run opt.json --solver ice``).
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro import ChannelModulationDesigner, Session, get_scenario
from repro.analysis import format_table, render_map


def main(architecture_name: str = "arch1") -> None:
    spec = get_scenario(f"niagara-{architecture_name}")
    print(f"scenario {spec.name}: {spec.description}")

    cavity = spec.build_structure()
    print(
        f"  cavity: {cavity.n_lanes} modeled lanes x "
        f"{cavity.cluster_size} physical channels, "
        f"{cavity.total_power:.1f} W into the coolant"
    )

    # 2. Optimal modulation at peak power (one session, shared caches).
    session = Session()
    outcome = session.optimize(spec)
    result = outcome.result
    print()
    print("peak-power designs:")
    print(format_table(result.comparison_table()))

    # 3. The same geometry under average power: pin the optimized design
    # into the spec and flip the workload's power scenario.
    average_spec = replace(
        outcome.optimized_spec(),
        workload=replace(spec.workload, power="average"),
    )
    average_designer = ChannelModulationDesigner.from_spec(
        replace(average_spec, design=None), engine=session.engine_for(spec)
    )
    average_optimal = average_designer.evaluate_profiles(
        average_spec.width_profiles(), "optimal (peak design)"
    )
    average_rows = [
        average_designer.uniform_minimum().summary(),
        average_designer.uniform_maximum().summary(),
        average_optimal.summary(),
    ]
    print()
    print("average-power evaluation of the same design:")
    print(format_table(average_rows))

    # 4. Thermal maps of the top die (Fig. 9) on a common temperature
    # scale: three design-pinned scenario variants through the
    # finite-volume simulator.
    geometry = cavity.geometry
    variants = {
        "minimum": spec.with_design([[geometry.min_width]] * cavity.n_lanes),
        "optimal": outcome.optimized_spec(),
        "maximum": spec.with_design([[geometry.max_width]] * cavity.n_lanes),
    }
    scale = None
    maps = {}
    for label, variant in variants.items():
        solved = session.run(variant, solver="ice").solution
        maps[label] = solved.layer("top_die")
        low = solved.min_temperature("top_die")
        high = solved.peak_temperature("top_die")
        scale = (
            (low, high)
            if scale is None
            else (min(scale[0], low), max(scale[1], high))
        )

    for label, thermal_map in maps.items():
        print()
        print(
            render_map(
                thermal_map,
                vmin=scale[0],
                vmax=scale[1],
                title=f"top-die thermal map, {label} channel widths "
                "(coolant flows left to right)",
            )
        )

    print()
    print(
        f"thermal gradient reduction at peak power: "
        f"{result.gradient_reduction * 100:.0f}%  "
        f"(optimal {result.optimal.thermal_gradient:.1f} K vs uniform "
        f"{result.reference_gradient:.1f} K)"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "arch1")
