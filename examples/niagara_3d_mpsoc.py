#!/usr/bin/env python3
"""Thermal balancing of a two-die UltraSPARC T1 (Niagara-1) 3D-MPSoC.

This example reproduces the protocol of Sec. V-B of the paper on one of the
Fig. 7 architectures:

1. build the two-die stack (compute die over memory die, Arch. 1) and its
   peak-power heat-flux maps,
2. project the maps onto the multi-channel cavity model (physical channels
   clustered into a handful of modeled lanes),
3. design the optimal per-lane channel-width modulation at peak power,
4. re-evaluate the *same* width profiles under the average-power scenario
   (the paper applies the design-time solution to both load levels), and
5. render the top-die thermal maps of the minimum / optimal / maximum width
   designs with the finite-volume simulator (the content of Fig. 9).

Run it with ``python examples/niagara_3d_mpsoc.py [arch1|arch2|arch3]``.
"""

from __future__ import annotations

import sys

from repro import ChannelModulationDesigner, OptimizerSettings, get_architecture
from repro.analysis import format_table, render_map
from repro.config import DEFAULT_EXPERIMENT
from repro.ice import SteadyStateSolver, two_die_stack_from_architecture
from repro.thermal.geometry import WidthProfile


def main(architecture_name: str = "arch1") -> None:
    config = DEFAULT_EXPERIMENT
    architecture = get_architecture(architecture_name)
    print(f"{architecture.name}: {architecture.description}")
    print(
        f"  peak power {architecture.total_power('peak'):.1f} W, "
        f"average power {architecture.total_power('average'):.1f} W"
    )

    # 2. Cavity model at peak power (channels clustered into a few lanes).
    peak_cavity = architecture.cavity("peak", config=config)
    print(
        f"  cavity: {peak_cavity.n_lanes} modeled lanes x "
        f"{peak_cavity.cluster_size} physical channels, "
        f"{peak_cavity.total_power:.1f} W into the coolant"
    )

    # 3. Optimal modulation at peak power.
    designer = ChannelModulationDesigner(
        peak_cavity,
        OptimizerSettings(
            n_segments=6, max_iterations=40, n_grid_points=161
        ),
    )
    result = designer.design()
    print()
    print("peak-power designs:")
    print(format_table(result.comparison_table()))

    # 4. The same geometry under average power.
    average_cavity = architecture.cavity(
        "average", config=config, width_profiles=result.optimal.width_profiles
    )
    average_designer = ChannelModulationDesigner(
        average_cavity, designer.settings
    )
    average_optimal = average_designer.evaluate_profiles(
        result.optimal.width_profiles, "optimal (peak design)"
    )
    average_rows = [
        average_designer.uniform_minimum().summary(),
        average_designer.uniform_maximum().summary(),
        average_optimal.summary(),
    ]
    print()
    print("average-power evaluation of the same design:")
    print(format_table(average_rows))

    # 5. Thermal maps of the top die (Fig. 9) on a common temperature scale.
    scale = None
    maps = {}
    for label, profile in (
        ("minimum", WidthProfile.uniform(
            peak_cavity.geometry.min_width, architecture.die_length)),
        ("optimal", result.optimal.width_profiles),
        ("maximum", WidthProfile.uniform(
            peak_cavity.geometry.max_width, architecture.die_length)),
    ):
        if isinstance(profile, list):
            # Expand the per-lane profiles onto the physical channels.
            n_channels = int(
                round(architecture.die_width / config.params.channel_pitch)
            )
            per_channel = [
                profile[min(i * len(profile) // n_channels, len(profile) - 1)]
                for i in range(n_channels)
            ]
            width_argument = per_channel
        else:
            width_argument = profile
        stack = two_die_stack_from_architecture(
            architecture, "peak", config=config, width_profile=width_argument,
            n_cols=44, n_rows=44,
        )
        solved = SteadyStateSolver(stack).solve()
        maps[label] = solved.layer("top_die")
        low = solved.min_temperature("top_die")
        high = solved.peak_temperature("top_die")
        scale = (
            (low, high)
            if scale is None
            else (min(scale[0], low), max(scale[1], high))
        )

    for label, thermal_map in maps.items():
        print()
        print(
            render_map(
                thermal_map,
                vmin=scale[0],
                vmax=scale[1],
                title=f"top-die thermal map, {label} channel widths "
                "(coolant flows left to right)",
            )
        )

    print()
    print(
        f"thermal gradient reduction at peak power: "
        f"{result.gradient_reduction * 100:.0f}%  "
        f"(optimal {result.optimal.thermal_gradient:.1f} K vs uniform "
        f"{result.reference_gradient:.1f} K)"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "arch1")
