#!/usr/bin/env python3
"""Design-space exploration: flow rate, pressure budget and segment count.

The paper frames channel modulation as "an additional dimension in the
design-space exploration".  This example walks that design space on the
Test A structure:

1. a sweep of *uniform* channel widths (the conventional single knob),
2. the effect of the pressure-drop budget on the achievable gradient
   reduction,
3. the effect of the coolant flow rate on the gradient of the optimal
   design, and
4. the effect of the number of piecewise-constant control segments
   (discretization of the direct sequential method).

Run it with ``python examples/design_space_exploration.py``.
"""

from __future__ import annotations

from repro import ChannelModulationDesigner, OptimizerSettings, test_a_structure
from repro.analysis import format_table
from repro.config import DEFAULT_EXPERIMENT, paper_parameters
from repro.thermal.properties import ml_per_min_to_m3_per_s


def uniform_width_sweep() -> None:
    """1. The conventional design space: one constant width per design."""
    designer = ChannelModulationDesigner(test_a_structure())
    rows = []
    for evaluation in designer.width_sweep(n_candidates=9):
        summary = evaluation.summary()
        summary["width_um"] = (
            evaluation.width_profiles[0].segment_widths[0] * 1e6
        )
        rows.append(summary)
    print("uniform width sweep (Test A):")
    print(
        format_table(
            rows,
            columns=[
                "width_um",
                "thermal_gradient_K",
                "peak_temperature_C",
                "max_pressure_drop_Pa",
            ],
        )
    )
    print()


def pressure_budget_sweep() -> None:
    """2. How the allowed pressure drop limits the achievable balancing."""
    rows = []
    for budget_bar in (2.0, 5.0, 10.0, 20.0):
        designer = ChannelModulationDesigner(
            test_a_structure(),
            OptimizerSettings(n_segments=8, max_iterations=50),
            max_pressure_drop=budget_bar * 1e5,
        )
        result = designer.design()
        rows.append(
            {
                "pressure_budget_bar": budget_bar,
                "optimal_gradient_K": result.optimal.thermal_gradient,
                "gradient_reduction_pct": result.gradient_reduction * 100.0,
                "used_pressure_bar": result.optimal.max_pressure_drop / 1e5,
            }
        )
    print("pressure budget sweep (Test A):")
    print(format_table(rows))
    print()


def flow_rate_sweep() -> None:
    """3. Higher flow rate means lower coolant rise, hence lower gradients."""
    rows = []
    for flow_ml_per_min in (0.3, 0.6, 1.2, 2.4):
        params = paper_parameters().with_overrides(
            flow_rate_per_channel=ml_per_min_to_m3_per_s(flow_ml_per_min)
        )
        config = DEFAULT_EXPERIMENT.with_overrides(params=params)
        from repro.floorplan import test_a_structure as build_structure

        designer = ChannelModulationDesigner(
            build_structure(config),
            OptimizerSettings(n_segments=8, max_iterations=50),
        )
        result = designer.design()
        rows.append(
            {
                "flow_ml_per_min": flow_ml_per_min,
                "uniform_gradient_K": result.reference_gradient,
                "optimal_gradient_K": result.optimal.thermal_gradient,
                "gradient_reduction_pct": result.gradient_reduction * 100.0,
                "pressure_bar": result.optimal.max_pressure_drop / 1e5,
            }
        )
    print("coolant flow-rate sweep (Test A):")
    print(format_table(rows))
    print()


def segment_count_sweep() -> None:
    """4. Control discretization of the direct sequential method."""
    rows = []
    for n_segments in (2, 4, 8, 16):
        designer = ChannelModulationDesigner(
            test_a_structure(),
            OptimizerSettings(n_segments=n_segments, max_iterations=60),
        )
        result = designer.design()
        rows.append(
            {
                "n_segments": n_segments,
                "optimal_gradient_K": result.optimal.thermal_gradient,
                "gradient_reduction_pct": result.gradient_reduction * 100.0,
                "cost_J": result.optimal.cost,
            }
        )
    print("control segment count sweep (Test A):")
    print(format_table(rows))


def main() -> None:
    uniform_width_sweep()
    pressure_budget_sweep()
    flow_rate_sweep()
    segment_count_sweep()


if __name__ == "__main__":
    main()
