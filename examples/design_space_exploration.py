#!/usr/bin/env python3
"""Design-space exploration: flow rate, pressure budget and segment count.

The paper frames channel modulation as "an additional dimension in the
design-space exploration".  This example walks that design space on the
Test A scenario by deriving declarative variants of the registered spec --
every point of every sweep is itself a serializable scenario:

1. a sweep of *uniform* channel widths (the conventional single knob),
2. the effect of the pressure-drop budget on the achievable gradient
   reduction,
3. the effect of the coolant flow rate on the gradient of the optimal
   design, and
4. the effect of the number of piecewise-constant control segments
   (discretization of the direct sequential method).

Run it with ``python examples/design_space_exploration.py``.
"""

from __future__ import annotations

from dataclasses import replace

from repro import ChannelModulationDesigner, Session, get_scenario
from repro.analysis import format_table
from repro.thermal.properties import ml_per_min_to_m3_per_s

BASE = get_scenario("test-a").with_overrides(name="test-a-dse")


def uniform_width_sweep(session: Session) -> None:
    """1. The conventional design space: one constant width per design."""
    designer = ChannelModulationDesigner.from_spec(
        BASE, engine=session.engine_for(BASE)
    )
    rows = []
    for evaluation in designer.width_sweep(n_candidates=9):
        summary = evaluation.summary()
        summary["width_um"] = (
            evaluation.width_profiles[0].segment_widths[0] * 1e6
        )
        rows.append(summary)
    print("uniform width sweep (Test A):")
    print(
        format_table(
            rows,
            columns=[
                "width_um",
                "thermal_gradient_K",
                "peak_temperature_C",
                "max_pressure_drop_Pa",
            ],
        )
    )
    print()


def pressure_budget_sweep(session: Session) -> None:
    """2. How the allowed pressure drop limits the achievable balancing."""
    rows = []
    for budget_bar in (2.0, 5.0, 10.0, 20.0):
        spec = BASE.with_overrides(
            optimizer=replace(
                BASE.optimizer,
                n_segments=8,
                max_iterations=50,
                max_pressure_drop_Pa=budget_bar * 1e5,
            )
        )
        result = session.optimize(spec).result
        rows.append(
            {
                "pressure_budget_bar": budget_bar,
                "optimal_gradient_K": result.optimal.thermal_gradient,
                "gradient_reduction_pct": result.gradient_reduction * 100.0,
                "used_pressure_bar": result.optimal.max_pressure_drop / 1e5,
            }
        )
    print("pressure budget sweep (Test A):")
    print(format_table(rows))
    print()


def flow_rate_sweep(session: Session) -> None:
    """3. Higher flow rate means lower coolant rise, hence lower gradients."""
    rows = []
    for flow_ml_per_min in (0.3, 0.6, 1.2, 2.4):
        spec = BASE.with_params(
            flow_rate_per_channel=ml_per_min_to_m3_per_s(flow_ml_per_min)
        ).with_overrides(
            optimizer=replace(BASE.optimizer, n_segments=8, max_iterations=50)
        )
        result = session.optimize(spec).result
        rows.append(
            {
                "flow_ml_per_min": flow_ml_per_min,
                "uniform_gradient_K": result.reference_gradient,
                "optimal_gradient_K": result.optimal.thermal_gradient,
                "gradient_reduction_pct": result.gradient_reduction * 100.0,
                "pressure_bar": result.optimal.max_pressure_drop / 1e5,
            }
        )
    print("coolant flow-rate sweep (Test A):")
    print(format_table(rows))
    print()


def segment_count_sweep(session: Session) -> None:
    """4. Control discretization of the direct sequential method."""
    rows = []
    for n_segments in (2, 4, 8, 16):
        spec = BASE.with_overrides(
            optimizer=replace(
                BASE.optimizer, n_segments=n_segments, max_iterations=60
            )
        )
        result = session.optimize(spec).result
        rows.append(
            {
                "n_segments": n_segments,
                "optimal_gradient_K": result.optimal.thermal_gradient,
                "gradient_reduction_pct": result.gradient_reduction * 100.0,
                "cost_J": result.optimal.cost,
            }
        )
    print("control segment count sweep (Test A):")
    print(format_table(rows))


def main() -> None:
    # One session for every sweep: identical candidate designs (e.g. the
    # uniform baselines re-evaluated per sweep point) are solved once.
    session = Session()
    uniform_width_sweep(session)
    pressure_budget_sweep(session)
    flow_rate_sweep(session)
    segment_count_sweep(session)


if __name__ == "__main__":
    main()
