#!/usr/bin/env python3
"""Quickstart: balance the temperature of one liquid-cooled microchannel.

This example reproduces the paper's Test A scenario through the scenario
API -- the same facade the ``repro`` CLI uses:

1. fetch the registered, declarative ``test-a`` scenario (Fig. 2 structure,
   Fig. 4a workload, Table I parameters),
2. simulate the conventional (uniform-width) design with ``Session.run``,
3. run the optimal channel-width modulation of Sec. IV with
   ``Session.optimize``,
4. cross-check the optimized design on the finite-volume (3D-ICE-like)
   simulator, and
5. print the resulting temperature profiles, width trajectory and metrics.

Run it with ``python examples/quickstart.py`` (or reproduce steps 1-2 from
the shell with ``repro run test-a --json``).
"""

from __future__ import annotations

from repro import Session, get_scenario
from repro.analysis import format_table, render_profile, render_width_profile


def main() -> None:
    # 1. The declarative Test A scenario (serializable: spec.to_json()).
    spec = get_scenario("test-a")
    print(f"scenario {spec.name}: {spec.description}")

    # One session = shared solution caches across every call below.
    session = Session()

    # 2. The conventional design (uniform maximum width), simulated through
    # the analytical finite-difference path.
    uniform = session.run(spec)
    print(
        f"uniform design: gradient {uniform.thermal_gradient_K:.1f} K, "
        f"peak {uniform.peak_temperature_K - 273.15:.1f} C, "
        f"pressure drop {uniform.max_pressure_drop_Pa / 1e5:.2f} bar "
        f"({uniform.simulator}, {uniform.provenance['backend']} backend)"
    )

    # 3. The paper's contribution: optimal channel-width modulation.
    outcome = session.optimize(spec)
    result = outcome.result

    # 4. Pin the optimized design into a spec and cross-check it on the
    # finite-volume simulator (the validation move of the paper).
    optimized_spec = outcome.optimized_spec()
    ice = session.run(optimized_spec, solver="ice")
    print(
        f"optimized design on the finite-volume model: "
        f"gradient {ice.thermal_gradient_K:.1f} K "
        f"(analytical: {result.optimal.thermal_gradient:.1f} K)"
    )

    # 5a. Comparison table (the content of Fig. 5a, in numbers).
    print()
    print(format_table(result.comparison_table()))

    # 5b. Temperature change from inlet to outlet for the optimal design.
    solution = result.optimal.solution
    print()
    print(
        render_profile(
            solution.z,
            solution.temperature_change_from_inlet()[0, 0],
            label="top-layer temperature change from inlet (optimal design)",
            unit="K",
        )
    )

    # 5c. The optimized channel width trajectory (Fig. 6a).
    print()
    print(render_width_profile(result.optimal.width_profiles[0]))

    # 5d. Headline metrics.
    summary = result.summary()
    print()
    print(
        f"thermal gradient: {result.reference_gradient:.1f} K (uniform) -> "
        f"{result.optimal.thermal_gradient:.1f} K (optimal), "
        f"a {summary['gradient_reduction'] * 100:.0f}% reduction"
    )
    print(
        f"max pressure drop of the optimal design: "
        f"{summary['max_pressure_drop_Pa'] / 1e5:.2f} bar "
        f"(limit: 10 bar)"
    )
    stats = session.stats()
    for engine, engine_stats in stats.items():
        print(
            f"engine {engine}: {engine_stats['n_solves']} solves, "
            f"hit rate {engine_stats['hit_rate']:.0%}"
        )


if __name__ == "__main__":
    main()
