#!/usr/bin/env python3
"""Quickstart: balance the temperature of one liquid-cooled microchannel.

This example reproduces the paper's Test A scenario in a few lines of code:

1. build the single-channel, two-die test structure of Fig. 2 with a uniform
   50 W/cm^2 heat flux on both active layers (Fig. 4a),
2. evaluate the two conventional designs (uniform minimum / maximum channel
   width),
3. run the optimal channel-width modulation of Sec. IV, and
4. print the resulting temperature profiles, width trajectory and metrics.

Run it with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import ChannelModulationDesigner, OptimizerSettings, test_a_structure
from repro.analysis import format_table, render_profile, render_width_profile


def main() -> None:
    # 1. The Test A structure (Table I parameters, uniform 50 W/cm^2 flux).
    structure = test_a_structure()
    print(
        f"Test structure: channel length {structure.length * 100:.1f} cm, "
        f"total power {structure.total_power:.2f} W, "
        f"flow rate {structure.flow_rate * 6e7:.2f} ml/min"
    )

    # 2 + 3. Design: the designer evaluates the uniform baselines and runs
    # the direct sequential optimization with the paper's cost and
    # constraints.
    designer = ChannelModulationDesigner(
        structure, OptimizerSettings(n_segments=10, max_iterations=60)
    )
    result = designer.design()

    # 4a. Comparison table (the content of Fig. 5a, in numbers).
    print()
    print(format_table(result.comparison_table()))

    # 4b. Temperature change from inlet to outlet for the optimal design.
    solution = result.optimal.solution
    print()
    print(
        render_profile(
            solution.z,
            solution.temperature_change_from_inlet()[0, 0],
            label="top-layer temperature change from inlet (optimal design)",
            unit="K",
        )
    )

    # 4c. The optimized channel width trajectory (Fig. 6a).
    print()
    print(render_width_profile(result.optimal.width_profiles[0]))

    # 4d. Headline metrics.
    summary = result.summary()
    print()
    print(
        f"thermal gradient: {result.reference_gradient:.1f} K (uniform) -> "
        f"{result.optimal.thermal_gradient:.1f} K (optimal), "
        f"a {summary['gradient_reduction'] * 100:.0f}% reduction"
    )
    print(
        f"max pressure drop of the optimal design: "
        f"{summary['max_pressure_drop_Pa'] / 1e5:.2f} bar "
        f"(limit: 10 bar)"
    )


if __name__ == "__main__":
    main()
