#!/usr/bin/env python3
"""Model-predictive flow planning on the reduced-order transient tier.

The runtime policies in ``examples/transient_policies.py`` are reactive:
they look at the current peak temperature and adjust the pump after the
fact.  The MPC policy instead rolls the Krylov reduced-order model
forward over a short horizon at every control interval and picks the
*cheapest* flow scale whose predicted peak stays under the threshold —
milliseconds of planning instead of a full transient solve per
candidate.

This example runs one campaign over four policies (constant, bang-bang,
proportional, MPC) on the trace-driven ``test-a-burst`` scenario with the
reduced-order tier enabled, then compares the pumping energy each policy
spent against the time it left the die above threshold.

Run it with ``python examples/transient_mpc.py`` (or the ROM scenario
alone with ``repro run test-a-burst-rom --json``).
"""

from __future__ import annotations

from dataclasses import replace

from repro import Session, get_scenario, run_many
from repro.analysis import format_table
from repro.sweeps import SweepSpec
from repro.transient import PolicySpec, RomSpec


def main() -> None:
    # One shared policy spec: each kind reads the fields it needs.  The
    # MPC planner previews a 0.1 s horizon over 4 flow candidates at
    # every 0.1 s control interval; rom.mode="rom" gives it (and every
    # other policy in the sweep) the order-48 reduced model.
    base = get_scenario("test-a-burst")
    controlled = base.with_overrides(
        name="burst-mpc",
        transient=replace(
            base.transient,
            rom=RomSpec(mode="rom", order=48),
            threshold_K=343.15,       # report time above 70 C
            policy=PolicySpec(
                kind="constant",
                control_interval_s=0.1,
                threshold_K=343.15,   # plan/trigger threshold: 70 C
                high_scale=2.0,
                setpoint_K=313.15,    # proportional setpoint: 40 C
                gain_per_K=0.05,
                min_scale=0.5,
                max_scale=2.0,
                horizon_s=0.1,        # MPC lookahead per control step
                n_candidates=4,
            ),
        ),
    )
    sweep = SweepSpec(
        name="mpc-vs-reactive",
        base=controlled,
        axes=(
            {
                "field": "transient.policy.kind",
                "values": ["constant", "bang-bang", "proportional", "mpc"],
            },
        ),
    )
    session = Session()
    campaign = run_many(sweep, session=session)

    rows = []
    for record in campaign.records:
        metrics = record["result"]["transient"]
        rows.append(
            {
                "policy": metrics["policy"],
                "peak [C]": round(
                    metrics["peak_transient_temperature_K"] - 273.15, 2
                ),
                "t>thr [s]": round(metrics["time_above_threshold_s"], 3),
                "pump [mJ]": round(metrics["pumping_energy_J"] * 1e3, 3),
                "flow changes": metrics["n_flow_changes"],
                "rom err [K]": (
                    f"{metrics['rom_peak_abs_err_K']:.1e}"
                    if "rom_peak_abs_err_K" in metrics
                    else "-"
                ),
            }
        )
    print(f"scenario {base.name} through the reduced-order tier:")
    print()
    print(format_table(rows))

    stats = session.stats()
    counters = {
        key: sum(engine.get(key, 0) for engine in stats.values())
        for key in ("n_rom_builds", "n_rom_steps")
    }
    print(
        f"\nROM work across the campaign: {counters['n_rom_builds']} model "
        f"build(s), {counters['n_rom_steps']} reduced steps (the bounded "
        "cache shares one basis across all four policies)."
    )
    print(
        "The planner spends pump energy only on the intervals where the "
        "preview says the burst would cross the threshold."
    )


if __name__ == "__main__":
    main()
