"""State-space form of the analytical heat-transfer model (Eq. 3 of the paper).

The paper writes the steady-state heat transfer of the single-channel test
structure (Fig. 2) as an ordinary differential equation in the distance
``z`` from the inlet,

    dX/dz = F(z, w_C(z), X(z)) + G(q_hat_i(z), T_Cin),

with state ``X = [T1, T2, q1, q2]`` (silicon temperatures and longitudinal
heat flows of the two active layers).  The coolant temperature ``T_C(z)`` is
eliminated from the state using the integral energy balance over ``[0, z]``
together with the adiabatic boundary conditions ``q_i(0) = 0``:

    T_C(z) = T_Cin + [ Int_0^z (q_hat_i1 + q_hat_i2) dz' - q1(z) - q2(z) ] / (c_v V_dot)

This module provides both the paper's *reduced* 4-state right-hand side and
an *augmented* 5-state form in which ``T_C`` is kept as an explicit state
with the initial condition ``T_C(0) = T_Cin``.  The two forms are
mathematically equivalent (the tests cross-validate them); the augmented
form is more convenient for generic boundary-value solvers, the reduced form
is the one quoted in the paper.

Because all circuit parameters are independent of temperature (paper
assumption 2), both right-hand sides are *linear* in the state; the solvers
in :mod:`repro.thermal.bvp` and :mod:`repro.thermal.fdm` exploit this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from . import conductances
from .geometry import TestStructure

__all__ = [
    "SingleChannelStateSpace",
    "REDUCED_STATE_NAMES",
    "AUGMENTED_STATE_NAMES",
]

REDUCED_STATE_NAMES: Tuple[str, ...] = ("T1", "T2", "q1", "q2")
AUGMENTED_STATE_NAMES: Tuple[str, ...] = ("T1", "T2", "q1", "q2", "TC")


@dataclass
class SingleChannelStateSpace:
    """Right-hand-side evaluator for the single-channel analytical model.

    Parameters
    ----------
    structure:
        The test structure (geometry, width profile, heat inputs, coolant
        and flow settings) whose thermal response is being modeled.
    """

    structure: TestStructure

    def __post_init__(self) -> None:
        geometry = self.structure.geometry
        silicon = self.structure.silicon
        self._g_l = conductances.longitudinal_conductance(geometry, silicon)
        self._g_slab = conductances.slab_conductance(geometry, silicon)
        self._capacity_rate = conductances.capacity_rate(
            self.structure.coolant, self.structure.flow_rate
        )

    # -- per-position circuit parameters --------------------------------------

    @property
    def longitudinal_conductance(self) -> float:
        """``g_l`` in W.m (constant along the channel)."""
        return self._g_l

    @property
    def capacity_rate(self) -> float:
        """Coolant capacity rate ``c_v V_dot`` in W/K."""
        return self._capacity_rate

    def local_conductances(self, z) -> Tuple[np.ndarray, np.ndarray]:
        """``(g_v(z), g_w(z))`` evaluated at position(s) ``z`` (W/(m.K))."""
        structure = self.structure
        width = np.atleast_1d(structure.width_profile(z))
        g_v = conductances.layer_to_coolant_conductance(
            structure.geometry,
            structure.silicon,
            structure.coolant,
            width,
            structure.flow_rate,
            np.atleast_1d(np.asarray(z, dtype=float)),
            structure.developing_flow,
        )
        g_w = conductances.sidewall_conductance(
            structure.geometry, structure.silicon, width
        )
        return np.atleast_1d(g_v), np.atleast_1d(g_w)

    def heat_inputs(self, z) -> Tuple[np.ndarray, np.ndarray]:
        """``(q_hat_i1(z), q_hat_i2(z))`` in W/m."""
        top = np.atleast_1d(self.structure.heat_top(z))
        bottom = np.atleast_1d(self.structure.heat_bottom(z))
        return top, bottom

    def cumulative_heat_input(self, z) -> np.ndarray:
        """``Int_0^z (q_hat_i1 + q_hat_i2) dz'`` in W, vectorized over ``z``.

        Needed by the reduced 4-state form to reconstruct the coolant
        temperature from the energy balance.  Computed by trapezoidal
        integration on a fine internal grid.
        """
        z_arr = np.atleast_1d(np.asarray(z, dtype=float))
        grid = np.linspace(0.0, self.structure.length, 2049)
        total = np.atleast_1d(self.structure.heat_top(grid)) + np.atleast_1d(
            self.structure.heat_bottom(grid)
        )
        cumulative = np.concatenate(
            ([0.0], np.cumsum(0.5 * (total[1:] + total[:-1]) * np.diff(grid)))
        )
        return np.interp(z_arr, grid, cumulative)

    # -- coolant temperature reconstruction ------------------------------------

    def coolant_temperature_from_state(self, z, q1, q2) -> np.ndarray:
        """Coolant temperature implied by the reduced state (energy balance)."""
        injected = self.cumulative_heat_input(z)
        q1 = np.atleast_1d(np.asarray(q1, dtype=float))
        q2 = np.atleast_1d(np.asarray(q2, dtype=float))
        return self.structure.inlet_temperature + (injected - q1 - q2) / (
            self._capacity_rate
        )

    # -- right-hand sides ---------------------------------------------------------

    def reduced_rhs(self, z, state) -> np.ndarray:
        """The paper's 4-state right-hand side ``dX/dz``.

        ``state`` has shape ``(4,)`` or ``(4, n)`` for vectorized evaluation
        (as used by :func:`scipy.integrate.solve_bvp`).
        """
        state = np.atleast_2d(np.asarray(state, dtype=float))
        if state.shape[0] != 4:
            state = state.T
        t1, t2, q1, q2 = state
        z_arr = np.atleast_1d(np.asarray(z, dtype=float))
        g_v, g_w = self.local_conductances(z_arr)
        q_top, q_bottom = self.heat_inputs(z_arr)
        t_coolant = self.coolant_temperature_from_state(z_arr, q1, q2)

        dt1 = -q1 / self._g_l
        dt2 = -q2 / self._g_l
        dq1 = q_top - g_v * (t1 - t_coolant) - g_w * (t1 - t2)
        dq2 = q_bottom - g_v * (t2 - t_coolant) - g_w * (t2 - t1)
        out = np.vstack([dt1, dt2, dq1, dq2])
        if out.shape[1] == 1 and np.ndim(z) == 0:
            return out[:, 0]
        return out

    def augmented_rhs(self, z, state) -> np.ndarray:
        """The 5-state right-hand side with the coolant temperature as a state."""
        state = np.atleast_2d(np.asarray(state, dtype=float))
        if state.shape[0] != 5:
            state = state.T
        t1, t2, q1, q2, t_coolant = state
        z_arr = np.atleast_1d(np.asarray(z, dtype=float))
        g_v, g_w = self.local_conductances(z_arr)
        q_top, q_bottom = self.heat_inputs(z_arr)

        dt1 = -q1 / self._g_l
        dt2 = -q2 / self._g_l
        dq1 = q_top - g_v * (t1 - t_coolant) - g_w * (t1 - t2)
        dq2 = q_bottom - g_v * (t2 - t_coolant) - g_w * (t2 - t1)
        dtc = (g_v * (t1 - t_coolant) + g_v * (t2 - t_coolant)) / self._capacity_rate
        out = np.vstack([dt1, dt2, dq1, dq2, dtc])
        if out.shape[1] == 1 and np.ndim(z) == 0:
            return out[:, 0]
        return out

    # -- linear-system view -------------------------------------------------------

    def linear_coefficients(self, z) -> Tuple[np.ndarray, np.ndarray]:
        """Matrices ``A(z)`` and vectors ``b(z)`` of the augmented linear ODE.

        The augmented right-hand side is linear in the state:
        ``dX/dz = A(z) X + b(z)``.  Returns ``A`` with shape ``(n, 5, 5)``
        and ``b`` with shape ``(n, 5)`` for each of the ``n`` requested
        positions.  Used by the superposition (linear shooting) solver and by
        the tests that verify linearity.
        """
        z_arr = np.atleast_1d(np.asarray(z, dtype=float))
        g_v, g_w = self.local_conductances(z_arr)
        q_top, q_bottom = self.heat_inputs(z_arr)
        n = z_arr.size
        a = np.zeros((n, 5, 5))
        b = np.zeros((n, 5))
        inv_gl = 1.0 / self._g_l
        inv_cap = 1.0 / self._capacity_rate
        # dT1/dz = -q1/g_l ; dT2/dz = -q2/g_l
        a[:, 0, 2] = -inv_gl
        a[:, 1, 3] = -inv_gl
        # dq1/dz = q_top - g_v (T1 - TC) - g_w (T1 - T2)
        a[:, 2, 0] = -(g_v + g_w)
        a[:, 2, 1] = g_w
        a[:, 2, 4] = g_v
        b[:, 2] = q_top
        # dq2/dz = q_bottom - g_v (T2 - TC) - g_w (T2 - T1)
        a[:, 3, 1] = -(g_v + g_w)
        a[:, 3, 0] = g_w
        a[:, 3, 4] = g_v
        b[:, 3] = q_bottom
        # dTC/dz = [g_v (T1 - TC) + g_v (T2 - TC)] / (c_v V_dot)
        a[:, 4, 0] = g_v * inv_cap
        a[:, 4, 1] = g_v * inv_cap
        a[:, 4, 4] = -2.0 * g_v * inv_cap
        return a, b

    def boundary_residual(self, state_at_inlet, state_at_outlet) -> np.ndarray:
        """Residual of the boundary conditions for the augmented form.

        The paper's boundary conditions (Eq. 5) are adiabatic ends of the
        silicon layers, ``q_i(0) = q_i(d) = 0``; the augmented form adds the
        coolant inlet condition ``T_C(0) = T_Cin``.
        """
        inlet = np.asarray(state_at_inlet, dtype=float)
        outlet = np.asarray(state_at_outlet, dtype=float)
        return np.array(
            [
                inlet[2],
                inlet[3],
                inlet[4] - self.structure.inlet_temperature,
                outlet[2],
                outlet[3],
            ]
        )
