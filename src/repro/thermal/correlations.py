"""Laminar forced-convection correlations for rectangular microchannels.

The paper computes the convective heat-transfer coefficient from the Nusselt
number correlations of Shah & London (1978) for fully developed laminar flow
in rectangular ducts, written as a polynomial in the duct aspect ratio.  The
same reference also provides the friction-factor correlation (f.Re product)
used by the hydraulics subsystem.

All correlations here are pure functions of geometry and fluid properties;
they are shared by the analytical ODE model (`repro.thermal`), the
finite-volume simulator (`repro.ice`) and the pressure-drop model
(`repro.hydraulics`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .properties import Coolant

__all__ = [
    "LAMINAR_REYNOLDS_LIMIT",
    "aspect_ratio",
    "hydraulic_diameter",
    "nusselt_fully_developed_h1",
    "nusselt_fully_developed_t",
    "friction_factor_times_reynolds",
    "mean_velocity",
    "reynolds_number",
    "prandtl_number",
    "graetz_number",
    "nusselt_developing",
    "heat_transfer_coefficient",
    "ChannelFlowState",
]

# Polynomial coefficients of the Shah & London fully-developed laminar
# Nusselt number for rectangular ducts.  ``H1`` is the constant axial heat
# flux / constant peripheral temperature boundary condition (the one that
# applies to microchannel heat sinks etched in silicon, whose walls are much
# more conductive than the fluid); ``T`` is the constant wall temperature
# condition, included for completeness and used in tests as a sanity bound.
_SHAH_LONDON_H1 = (1.0, -2.0421, 3.0853, -2.4765, 1.0578, -0.1861)
_SHAH_LONDON_T = (1.0, -2.610, 4.970, -5.119, 2.702, -0.548)
_NU_H1_INFINITE_PLATES = 8.235
_NU_T_INFINITE_PLATES = 7.541

# Shah & London friction factor correlation for rectangular ducts,
# f.Re = 24 * poly(alpha) with f the Darcy friction factor divided by 4
# (Fanning); we return the product for the *Fanning* factor and convert in
# the hydraulics module where needed.
_SHAH_LONDON_FRE = (1.0, -1.3553, 1.9467, -1.7012, 0.9564, -0.2537)
_FRE_INFINITE_PLATES = 24.0

#: Upper Reynolds bound of the laminar regime the Shah & London
#: correlations are valid for.  Above it the transient flow-scaling
#: policies are extrapolating; the transient engine records a
#: ``laminar_violated`` flag instead of doing so silently.
LAMINAR_REYNOLDS_LIMIT = 2300.0


def _is_scalar(*values) -> bool:
    """True when every argument is a plain scalar (0-dimensional)."""
    return all(np.ndim(value) == 0 for value in values)


def aspect_ratio(width, height):
    """Duct aspect ratio ``alpha = min(w, h) / max(w, h)`` in (0, 1].

    Shah & London define the aspect ratio as the short side divided by the
    long side so that the correlation is symmetric in width and height.
    Accepts scalars or arrays (broadcast elementwise); scalar inputs return
    a plain float.
    """
    w = np.asarray(width, dtype=float)
    h = np.asarray(height, dtype=float)
    if np.any(w <= 0.0) or np.any(h <= 0.0):
        raise ValueError("channel width and height must be positive")
    ratio = np.minimum(w, h) / np.maximum(w, h)
    if _is_scalar(width, height):
        return float(ratio)
    return ratio


def hydraulic_diameter(width, height):
    """Hydraulic diameter ``D_h = 4 A / P`` of a rectangular duct in meters."""
    w = np.asarray(width, dtype=float)
    h = np.asarray(height, dtype=float)
    if np.any(w <= 0.0) or np.any(h <= 0.0):
        raise ValueError("channel width and height must be positive")
    d_h = 2.0 * w * h / (w + h)
    if _is_scalar(width, height):
        return float(d_h)
    return d_h


def _polynomial(alpha, coefficients):
    # Horner evaluation on purpose: it uses only elementwise * and +, which
    # produce bit-identical results whether ``alpha`` is a Python float or a
    # NumPy array (``alpha**power`` does not -- NumPy's pow and libm's pow
    # can differ in the last ulp).  The finite-volume assembly relies on
    # this to keep its vectorized path bit-identical to the scalar
    # reference loop.
    acc = coefficients[-1]
    for coefficient in reversed(coefficients[:-1]):
        acc = acc * alpha + coefficient
    return acc


def nusselt_fully_developed_h1(width, height):
    """Fully developed laminar Nusselt number, H1 boundary condition.

    ``Nu = 8.235 * (1 - 2.0421 a + 3.0853 a^2 - 2.4765 a^3 + 1.0578 a^4 -
    0.1861 a^5)`` with ``a`` the aspect ratio.  ``Nu -> 8.235`` for parallel
    plates (a -> 0) and ``Nu ~ 3.61`` for a square duct (a = 1).
    """
    alpha = aspect_ratio(width, height)
    return _NU_H1_INFINITE_PLATES * _polynomial(alpha, _SHAH_LONDON_H1)


def nusselt_fully_developed_t(width, height):
    """Fully developed laminar Nusselt number, constant wall temperature."""
    alpha = aspect_ratio(width, height)
    return _NU_T_INFINITE_PLATES * _polynomial(alpha, _SHAH_LONDON_T)


def friction_factor_times_reynolds(width, height):
    """Fanning friction factor times Reynolds number, ``f.Re``.

    ``f.Re = 24 (1 - 1.3553 a + 1.9467 a^2 - 1.7012 a^3 + 0.9564 a^4 -
    0.2537 a^5)``; 24 for parallel plates, about 14.23 for a square duct.
    """
    alpha = aspect_ratio(width, height)
    return _FRE_INFINITE_PLATES * _polynomial(alpha, _SHAH_LONDON_FRE)


def mean_velocity(flow_rate: float, width, height):
    """Mean flow velocity ``u = V_dot / (w * h)`` in m/s."""
    if flow_rate < 0.0:
        raise ValueError("flow rate must be non-negative")
    return flow_rate / (width * height)


def reynolds_number(flow_rate: float, width, height, coolant: Coolant):
    """Reynolds number based on the hydraulic diameter."""
    velocity = mean_velocity(flow_rate, width, height)
    d_h = hydraulic_diameter(width, height)
    return coolant.density * velocity * d_h / coolant.dynamic_viscosity


def prandtl_number(coolant: Coolant) -> float:
    """Prandtl number of the coolant (stored on the coolant object)."""
    return coolant.prandtl


def graetz_number(
    distance, flow_rate: float, width, height, coolant: Coolant
):
    """Inverse Graetz number ``z* = z / (D_h Re Pr)`` used for developing flow.

    ``z*`` grows from 0 at the inlet; the flow is thermally fully developed
    for ``z* >~ 0.05``.
    """
    if np.any(np.asarray(distance) < 0.0):
        raise ValueError("distance from the inlet must be non-negative")
    re = reynolds_number(flow_rate, width, height, coolant)
    d_h = hydraulic_diameter(width, height)
    if _is_scalar(distance, width, height):
        if re == 0.0:
            return math.inf
        return distance / (d_h * re * coolant.prandtl)
    denominator = d_h * re * coolant.prandtl
    with np.errstate(divide="ignore", invalid="ignore"):
        z_star = np.where(
            denominator > 0.0,
            np.asarray(distance, dtype=float) / np.where(denominator > 0.0, denominator, 1.0),
            np.inf,
        )
    return z_star


def nusselt_developing(
    distance,
    flow_rate: float,
    width,
    height,
    coolant: Coolant,
):
    """Local Nusselt number including the thermal entrance effect.

    Uses a Hausen-type superposition on top of the fully developed H1 value:
    ``Nu(z*) = Nu_fd + 0.0668 / (z*^(2/3) (0.04 + z*^(1/3)))`` with
    ``z* = z / (D_h Re Pr)``.  At the inlet (z* -> 0) the local Nusselt
    number is large and it decays monotonically to the fully developed value.
    The expression is clamped so that it never falls below the fully
    developed asymptote.
    """
    nu_fd = nusselt_fully_developed_h1(width, height)
    z_star = graetz_number(distance, flow_rate, width, height, coolant)
    # Guard the singular inlet point: cap the entrance enhancement at 5x.
    # (0.0668 / inf evaluates to 0, recovering the fully developed value
    # for zero flow.)
    z_star = np.maximum(np.asarray(z_star, dtype=float), 1e-6)
    enhancement = 0.0668 / (z_star ** (2.0 / 3.0) * (0.04 + z_star ** (1.0 / 3.0)))
    nu = np.minimum(nu_fd + enhancement, 5.0 * nu_fd)
    if _is_scalar(distance, width, height):
        return float(nu)
    return nu


def heat_transfer_coefficient(
    width,
    height,
    coolant: Coolant,
    flow_rate: float = 0.0,
    distance=0.0,
    developing: bool = False,
):
    """Convective heat-transfer coefficient ``h = Nu k_f / D_h`` in W/(m^2.K).

    Parameters
    ----------
    width, height:
        Local channel cross-section in meters.
    coolant:
        Coolant property record -- a constant-property
        :class:`~repro.thermal.properties.Coolant` or an array-valued
        :class:`~repro.thermal.properties.CoolantState` (film properties
        per cell); array fields broadcast elementwise against the
        geometry, which is how the Picard outer iteration feeds
        temperature-dependent ``k_f(T)`` into the conductance refresh.
    flow_rate:
        Per-channel volumetric flow rate in m^3/s.  Only needed when
        ``developing`` is True.
    distance:
        Distance from the inlet in meters.  Only needed when ``developing``
        is True.
    developing:
        If True, include the thermal entrance-region enhancement; the
        default (False) matches the paper's assumption of fully developed
        flow everywhere.
    """
    if developing:
        nu = nusselt_developing(distance, flow_rate, width, height, coolant)
    else:
        nu = nusselt_fully_developed_h1(width, height)
    return nu * coolant.thermal_conductivity / hydraulic_diameter(width, height)


@dataclass(frozen=True)
class ChannelFlowState:
    """Snapshot of the hydrodynamic state of one channel cross-section.

    Convenience record produced by :func:`characterize_flow` and used by
    reports and tests to check that the flow stays laminar (the correlations
    above are only valid for laminar flow, Re < ~2300).
    """

    width: float
    height: float
    flow_rate: float
    velocity: float
    reynolds: float
    nusselt: float
    heat_transfer_coefficient: float
    hydraulic_diameter: float

    @property
    def is_laminar(self) -> bool:
        """True when the Reynolds number is inside the laminar regime."""
        return self.reynolds < LAMINAR_REYNOLDS_LIMIT


def characterize_flow(
    width: float, height: float, flow_rate: float, coolant: Coolant
) -> ChannelFlowState:
    """Build a :class:`ChannelFlowState` for a cross-section and flow rate."""
    velocity = mean_velocity(flow_rate, width, height)
    return ChannelFlowState(
        width=width,
        height=height,
        flow_rate=flow_rate,
        velocity=velocity,
        reynolds=reynolds_number(flow_rate, width, height, coolant),
        nusselt=nusselt_fully_developed_h1(width, height),
        heat_transfer_coefficient=heat_transfer_coefficient(width, height, coolant),
        hydraulic_diameter=hydraulic_diameter(width, height),
    )
