"""Geometry descriptions for microchannel-cooled 3D stacks.

Three geometric concepts are defined here:

* :class:`ChannelGeometry` -- the cross-sectional dimensions of one channel
  "cell" of the cavity (Fig. 2 of the paper): channel pitch ``W``, channel
  height ``H_C``, silicon slab height ``H_Si`` and channel length ``d``.
* :class:`WidthProfile` -- the channel width as a function of the distance
  ``z`` from the inlet, ``w_C(z)``.  This is the control variable of the
  paper's optimal design problem.  Uniform, piecewise-constant and arbitrary
  callable profiles are supported; the piecewise-constant form is what the
  direct sequential optimizer manipulates.
* :class:`TestStructure` / :class:`MultiChannelStructure` -- a complete
  thermal problem: geometry + width profiles + per-layer heat inputs +
  coolant and flow rate.  The single-channel :class:`TestStructure`
  reproduces Fig. 2; the multi-channel structure adds adjacent lanes with
  lateral heat spreading and optional channel clustering (end of Sec. III).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from .._compat import trapezoid

from .properties import Coolant, PaperParameters, SolidMaterial, TABLE_I

__all__ = [
    "ChannelGeometry",
    "WidthProfile",
    "HeatInputProfile",
    "TestStructure",
    "MultiChannelStructure",
]


@dataclass(frozen=True)
class ChannelGeometry:
    """Cross-sectional geometry of one microchannel cell.

    Attributes
    ----------
    pitch:
        ``W`` -- lateral pitch of the channel cell in meters.  One cell is
        one channel plus its share of the silicon side walls.
    channel_height:
        ``H_C`` -- channel height in meters.
    silicon_height:
        ``H_Si`` -- height of the silicon slab above and below the channel.
    length:
        ``d`` -- channel length from inlet to outlet in meters.
    min_width / max_width:
        Fabrication bounds ``w_Cmin`` / ``w_Cmax`` on the channel width.
    """

    pitch: float = TABLE_I.channel_pitch
    channel_height: float = TABLE_I.channel_height
    silicon_height: float = TABLE_I.silicon_height
    length: float = TABLE_I.channel_length
    min_width: float = TABLE_I.min_channel_width
    max_width: float = TABLE_I.max_channel_width

    def __post_init__(self) -> None:
        for attr in ("pitch", "channel_height", "silicon_height", "length"):
            if getattr(self, attr) <= 0.0:
                raise ValueError(f"{attr} must be positive")
        if not (0.0 < self.min_width < self.max_width < self.pitch):
            raise ValueError(
                "channel width bounds must satisfy 0 < w_Cmin < w_Cmax < W"
            )

    @classmethod
    def from_parameters(cls, params: PaperParameters) -> "ChannelGeometry":
        """Build the geometry from a :class:`PaperParameters` record."""
        return cls(
            pitch=params.channel_pitch,
            channel_height=params.channel_height,
            silicon_height=params.silicon_height,
            length=params.channel_length,
            min_width=params.min_channel_width,
            max_width=params.max_channel_width,
        )

    def wall_width(self, channel_width: float) -> float:
        """Solid silicon width ``W - w_C`` remaining beside the channel."""
        return self.pitch - channel_width

    def clamp_width(self, channel_width: Union[float, np.ndarray]):
        """Clamp a width (or array of widths) to the fabrication bounds."""
        return np.clip(channel_width, self.min_width, self.max_width)


class WidthProfile:
    """Channel width as a function of the distance from the inlet, ``w_C(z)``.

    The profile may be uniform, piecewise constant over equal-length
    segments (the representation used by the direct sequential optimizer) or
    an arbitrary callable.  Evaluation is vectorized over ``z``.
    """

    def __init__(
        self,
        length: float,
        *,
        uniform: Optional[float] = None,
        segments: Optional[Sequence[float]] = None,
        function: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> None:
        if length <= 0.0:
            raise ValueError("channel length must be positive")
        provided = sum(value is not None for value in (uniform, segments, function))
        if provided != 1:
            raise ValueError(
                "exactly one of uniform=, segments= or function= must be given"
            )
        self.length = float(length)
        self._uniform = None if uniform is None else float(uniform)
        self._segments = None if segments is None else np.asarray(segments, dtype=float)
        self._function = function
        if self._uniform is not None and self._uniform <= 0.0:
            raise ValueError("uniform channel width must be positive")
        if self._segments is not None:
            if self._segments.ndim != 1 or self._segments.size == 0:
                raise ValueError("segments must be a non-empty 1-D sequence")
            if np.any(self._segments <= 0.0):
                raise ValueError("all segment widths must be positive")

    # -- constructors ------------------------------------------------------

    @classmethod
    def uniform(cls, width: float, length: float) -> "WidthProfile":
        """A constant-width channel (the paper's baseline designs)."""
        return cls(length, uniform=width)

    @classmethod
    def piecewise_constant(
        cls, widths: Sequence[float], length: float
    ) -> "WidthProfile":
        """Equal-length piecewise-constant segments from inlet to outlet."""
        return cls(length, segments=widths)

    @classmethod
    def from_function(
        cls, function: Callable[[np.ndarray], np.ndarray], length: float
    ) -> "WidthProfile":
        """An arbitrary width function of ``z`` (vectorized callable)."""
        return cls(length, function=function)

    # -- queries -------------------------------------------------------------

    @property
    def is_uniform(self) -> bool:
        """True for constant-width profiles."""
        return self._uniform is not None

    @property
    def n_segments(self) -> int:
        """Number of piecewise-constant segments (1 for uniform profiles)."""
        if self._segments is not None:
            return int(self._segments.size)
        return 1

    @property
    def segment_widths(self) -> np.ndarray:
        """The piecewise-constant segment values (copies, never views)."""
        if self._segments is not None:
            return self._segments.copy()
        if self._uniform is not None:
            return np.array([self._uniform])
        raise AttributeError("a callable width profile has no segment widths")

    def __call__(self, z: Union[float, np.ndarray]) -> np.ndarray:
        """Evaluate the width at distance(s) ``z`` from the inlet."""
        z_arr = np.atleast_1d(np.asarray(z, dtype=float))
        if np.any(z_arr < -1e-12) or np.any(z_arr > self.length * (1 + 1e-9)):
            raise ValueError("z must lie inside [0, channel length]")
        z_arr = np.clip(z_arr, 0.0, self.length)
        if self._uniform is not None:
            out = np.full_like(z_arr, self._uniform)
        elif self._segments is not None:
            index = np.minimum(
                (z_arr / self.length * self._segments.size).astype(int),
                self._segments.size - 1,
            )
            out = self._segments[index]
        else:
            out = np.asarray(self._function(z_arr), dtype=float)
            if out.shape != z_arr.shape:
                out = np.broadcast_to(out, z_arr.shape).copy()
        if np.isscalar(z) or np.ndim(z) == 0:
            return float(out[0])
        return out

    def resampled(self, n_segments: int) -> "WidthProfile":
        """Return a piecewise-constant approximation with ``n_segments`` pieces."""
        if n_segments <= 0:
            raise ValueError("n_segments must be positive")
        edges = np.linspace(0.0, self.length, n_segments + 1)
        centers = 0.5 * (edges[:-1] + edges[1:])
        widths = np.atleast_1d(self(centers))
        return WidthProfile.piecewise_constant(widths, self.length)

    def fingerprint(self) -> Optional[tuple]:
        """Hashable identity of the profile, or None for callable profiles.

        Two profiles with equal fingerprints evaluate identically at every
        ``z``; the evaluation engine uses this to key its solution cache.
        Callable profiles cannot be fingerprinted and return None
        (solutions for them are simply not cached).
        """
        if self._uniform is not None:
            return ("uniform", self.length, self._uniform)
        if self._segments is not None:
            return ("segments", self.length, self._segments.tobytes())
        return None

    def to_dict(self) -> dict:
        """JSON-compatible representation (uniform/piecewise profiles only).

        Callable profiles have no finite description and raise; the
        scenario/CLI layer serializes optimizer output, which is always
        piecewise constant or uniform.
        """
        if self._uniform is not None:
            return {"kind": "uniform", "length": self.length, "width": self._uniform}
        if self._segments is not None:
            return {
                "kind": "piecewise",
                "length": self.length,
                "widths": [float(width) for width in self._segments],
            }
        raise ValueError("callable width profiles cannot be serialized")

    @classmethod
    def from_dict(cls, data: dict) -> "WidthProfile":
        """Rebuild a profile from :meth:`to_dict` output."""
        try:
            kind = data["kind"]
            length = float(data["length"])
            if kind == "uniform":
                return cls.uniform(float(data["width"]), length)
            if kind == "piecewise":
                return cls.piecewise_constant(
                    [float(width) for width in data["widths"]], length
                )
        except (KeyError, TypeError) as error:
            raise ValueError(
                "a width profile mapping needs 'kind', 'length' and "
                f"'width'/'widths': {error!r}"
            ) from None
        raise ValueError(
            f"unknown width profile kind {kind!r}; "
            "expected 'uniform' or 'piecewise'"
        )

    def mean_width(self, n_samples: int = 512) -> float:
        """Average width along the channel (trapezoidal sampling)."""
        z = np.linspace(0.0, self.length, n_samples)
        return float(trapezoid(np.atleast_1d(self(z)), z) / self.length)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        if self._uniform is not None:
            return f"WidthProfile(uniform={self._uniform * 1e6:.1f}um, d={self.length})"
        if self._segments is not None:
            return (
                f"WidthProfile(piecewise, n={self._segments.size}, "
                f"d={self.length})"
            )
        return f"WidthProfile(callable, d={self.length})"


class HeatInputProfile:
    """Heat input per unit channel length for one active layer, ``q_hat(z)``.

    The paper measures the inputs ``q_hat_i1(z)`` and ``q_hat_i2(z)`` in W/m
    -- the power entering the channel cell per meter along the flow
    direction.  Profiles can be built directly in W/m, from an areal heat
    flux in W/cm^2 combined with the channel pitch, or from per-segment
    areal fluxes (the Test B workload of Fig. 4).
    """

    def __init__(
        self,
        length: float,
        *,
        uniform: Optional[float] = None,
        segments: Optional[Sequence[float]] = None,
        function: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> None:
        if length <= 0.0:
            raise ValueError("channel length must be positive")
        provided = sum(value is not None for value in (uniform, segments, function))
        if provided != 1:
            raise ValueError(
                "exactly one of uniform=, segments= or function= must be given"
            )
        self.length = float(length)
        self._uniform = None if uniform is None else float(uniform)
        self._segments = None if segments is None else np.asarray(segments, dtype=float)
        self._function = function
        if self._uniform is not None and self._uniform < 0.0:
            raise ValueError("heat input must be non-negative")
        if self._segments is not None and np.any(self._segments < 0.0):
            raise ValueError("heat input must be non-negative")

    @classmethod
    def uniform(cls, linear_density: float, length: float) -> "HeatInputProfile":
        """Constant heat input of ``linear_density`` W/m along the channel."""
        return cls(length, uniform=linear_density)

    @classmethod
    def from_areal_flux(
        cls, flux_w_per_cm2: float, pitch: float, length: float
    ) -> "HeatInputProfile":
        """Uniform areal heat flux (W/cm^2) over a strip of width ``pitch``."""
        return cls(length, uniform=flux_w_per_cm2 * 1e4 * pitch)

    @classmethod
    def from_segment_fluxes(
        cls, fluxes_w_per_cm2: Sequence[float], pitch: float, length: float
    ) -> "HeatInputProfile":
        """Piecewise-constant areal fluxes (W/cm^2), e.g. the Test B strips."""
        linear = [flux * 1e4 * pitch for flux in fluxes_w_per_cm2]
        return cls(length, segments=linear)

    @classmethod
    def piecewise_constant(
        cls, linear_densities: Sequence[float], length: float
    ) -> "HeatInputProfile":
        """Equal-length piecewise-constant heat inputs in W/m."""
        return cls(length, segments=linear_densities)

    @classmethod
    def from_function(
        cls, function: Callable[[np.ndarray], np.ndarray], length: float
    ) -> "HeatInputProfile":
        """Arbitrary heat-input function of ``z`` (vectorized, W/m)."""
        return cls(length, function=function)

    def __call__(self, z: Union[float, np.ndarray]) -> np.ndarray:
        """Evaluate the linear heat density (W/m) at distance(s) ``z``."""
        z_arr = np.atleast_1d(np.asarray(z, dtype=float))
        z_arr = np.clip(z_arr, 0.0, self.length)
        if self._uniform is not None:
            out = np.full_like(z_arr, self._uniform)
        elif self._segments is not None:
            index = np.minimum(
                (z_arr / self.length * self._segments.size).astype(int),
                self._segments.size - 1,
            )
            out = self._segments[index]
        else:
            out = np.asarray(self._function(z_arr), dtype=float)
            if out.shape != z_arr.shape:
                out = np.broadcast_to(out, z_arr.shape).copy()
        if np.isscalar(z) or np.ndim(z) == 0:
            return float(out[0])
        return out

    def fingerprint(self) -> Optional[tuple]:
        """Hashable identity of the profile, or None for callable profiles."""
        if self._uniform is not None:
            return ("uniform", self.length, self._uniform)
        if self._segments is not None:
            return ("segments", self.length, self._segments.tobytes())
        return None

    def total_power(self, n_samples: int = 2048) -> float:
        """Total power (W) injected into this layer over the channel length."""
        z = np.linspace(0.0, self.length, n_samples)
        return float(trapezoid(np.atleast_1d(self(z)), z))

    def mean_areal_flux(self, pitch: float) -> float:
        """Average areal heat flux in W/cm^2 for a strip of width ``pitch``."""
        return self.total_power() / (self.length * pitch) / 1e4


@dataclass(frozen=True)
class TestStructure:
    """The single-channel, two-active-layer test structure of Fig. 2.

    Attributes
    ----------
    geometry:
        Cross-sectional geometry of the channel cell.
    width_profile:
        The channel width ``w_C(z)``.
    heat_top / heat_bottom:
        Heat inputs ``q_hat_i1(z)`` and ``q_hat_i2(z)`` of the two active
        layers (top and bottom) in W/m.
    silicon:
        Solid material of the dies and channel walls.
    coolant:
        The coolant flowing through the channel.
    flow_rate:
        Volumetric flow rate through this channel in m^3/s.
    inlet_temperature:
        Coolant inlet temperature in Kelvin.
    developing_flow:
        If True, use the thermally-developing Nusselt correlation; the
        paper's default is fully developed flow.
    """

    geometry: ChannelGeometry
    width_profile: WidthProfile
    heat_top: HeatInputProfile
    heat_bottom: HeatInputProfile
    silicon: SolidMaterial = TABLE_I.silicon
    coolant: Coolant = TABLE_I.coolant
    flow_rate: float = TABLE_I.flow_rate_per_channel
    inlet_temperature: float = TABLE_I.inlet_temperature
    developing_flow: bool = False
    flow_reversed: bool = False

    def __post_init__(self) -> None:
        if self.flow_rate <= 0.0:
            raise ValueError("flow rate must be positive")
        if self.inlet_temperature <= 0.0:
            raise ValueError("inlet temperature must be positive (Kelvin)")
        for profile in (self.width_profile, self.heat_top, self.heat_bottom):
            if abs(profile.length - self.geometry.length) > 1e-12:
                raise ValueError(
                    "width and heat profiles must cover the full channel length"
                )

    @property
    def length(self) -> float:
        """Channel length ``d`` in meters."""
        return self.geometry.length

    @property
    def total_power(self) -> float:
        """Total power injected by both active layers (W)."""
        return self.heat_top.total_power() + self.heat_bottom.total_power()

    def with_width_profile(self, width_profile: WidthProfile) -> "TestStructure":
        """Return a copy of the structure with a different width profile."""
        return replace(self, width_profile=width_profile)

    def with_flow_rate(self, flow_rate: float) -> "TestStructure":
        """Return a copy of the structure with a different flow rate."""
        return replace(self, flow_rate=flow_rate)

    def with_flow_reversed(self, reversed_: bool = True) -> "TestStructure":
        """Return a copy with the coolant flowing from z = d toward z = 0.

        Used by the counterflow extension: alternating the flow direction of
        neighbouring channels places every hot outlet next to a cold inlet,
        which is another way of attacking the inlet-to-outlet gradient.
        """
        return replace(self, flow_reversed=reversed_)


@dataclass(frozen=True)
class MultiChannelStructure:
    """A cavity with ``N`` adjacent channel lanes between two active layers.

    Each lane has its own width profile and its own pair of heat inputs; the
    lanes are thermally coupled by lateral conduction in the active silicon
    layers (the multi-channel extension described at the end of Sec. III of
    the paper).  ``cluster_size`` physical channels may be merged under one
    node pair; the per-unit-length parameters are scaled accordingly.

    Attributes
    ----------
    geometry:
        Geometry of one physical channel cell.
    lanes:
        One :class:`TestStructure`-like lane description per modeled lane.
        For convenience each lane is itself a :class:`TestStructure` whose
        geometry/coolant/flow settings must agree with the cavity-level
        settings.
    cluster_size:
        Number of physical channels represented by each modeled lane.
    lateral_coupling:
        If False, lateral conduction between lanes is disabled (each lane is
        then an independent single-channel problem).
    """

    geometry: ChannelGeometry
    lanes: Sequence[TestStructure] = field(default_factory=list)
    cluster_size: int = 1
    lateral_coupling: bool = True
    lane_cluster_sizes: Optional[Sequence[int]] = None

    def __post_init__(self) -> None:
        if not self.lanes:
            raise ValueError("a multi-channel structure needs at least one lane")
        if self.cluster_size < 1:
            raise ValueError("cluster_size must be at least 1")
        if self.lane_cluster_sizes is not None:
            sizes = tuple(int(size) for size in self.lane_cluster_sizes)
            if len(sizes) != len(self.lanes):
                raise ValueError(
                    "lane_cluster_sizes must provide one entry per lane"
                )
            if any(size < 1 for size in sizes):
                raise ValueError("every lane cluster size must be at least 1")
            object.__setattr__(self, "lane_cluster_sizes", sizes)
        first = self.lanes[0]
        for lane in self.lanes:
            if abs(lane.geometry.length - self.geometry.length) > 1e-12:
                raise ValueError("all lanes must have the cavity channel length")
            if lane.coolant is not first.coolant:
                raise ValueError("all lanes must share the same coolant")
            if abs(lane.inlet_temperature - first.inlet_temperature) > 1e-9:
                raise ValueError("all lanes must share the same inlet temperature")

    @property
    def n_lanes(self) -> int:
        """Number of modeled lanes."""
        return len(self.lanes)

    @property
    def n_physical_channels(self) -> int:
        """Number of physical channels represented by the structure."""
        if self.lane_cluster_sizes is not None:
            return int(sum(self.lane_cluster_sizes))
        return self.n_lanes * self.cluster_size

    def cluster_size_of_lane(self, lane: int) -> int:
        """Physical channels represented by one modeled lane."""
        if not (0 <= lane < self.n_lanes):
            raise IndexError(f"lane index {lane} out of range")
        if self.lane_cluster_sizes is not None:
            return int(self.lane_cluster_sizes[lane])
        return self.cluster_size

    @property
    def coolant(self) -> Coolant:
        """The (shared) coolant."""
        return self.lanes[0].coolant

    @property
    def silicon(self) -> SolidMaterial:
        """The (shared) solid material."""
        return self.lanes[0].silicon

    @property
    def inlet_temperature(self) -> float:
        """The (shared) coolant inlet temperature in Kelvin."""
        return self.lanes[0].inlet_temperature

    @property
    def length(self) -> float:
        """Channel length ``d`` in meters."""
        return self.geometry.length

    @property
    def total_power(self) -> float:
        """Total power injected into the cavity (W).

        Lane heat profiles carry the *total* power of all physical channels
        merged into the lane (see :func:`repro.thermal.multichannel.build_cavity`),
        so the cavity power is simply the sum over lanes.
        """
        return sum(lane.total_power for lane in self.lanes)

    def width_profiles(self) -> List[WidthProfile]:
        """The per-lane width profiles in lane order."""
        return [lane.width_profile for lane in self.lanes]

    def with_width_profiles(
        self, profiles: Sequence[WidthProfile]
    ) -> "MultiChannelStructure":
        """Return a copy with the lane width profiles replaced."""
        if len(profiles) != self.n_lanes:
            raise ValueError(
                f"expected {self.n_lanes} width profiles, got {len(profiles)}"
            )
        new_lanes = [
            lane.with_width_profile(profile)
            for lane, profile in zip(self.lanes, profiles)
        ]
        return replace(self, lanes=tuple(new_lanes))

    def with_uniform_width(self, width: float) -> "MultiChannelStructure":
        """Return a copy where every lane uses a constant width."""
        profile = WidthProfile.uniform(width, self.geometry.length)
        return self.with_width_profiles([profile] * self.n_lanes)

    @classmethod
    def single(cls, structure: TestStructure) -> "MultiChannelStructure":
        """Wrap a single-channel test structure as a one-lane cavity."""
        return cls(geometry=structure.geometry, lanes=(structure,))
