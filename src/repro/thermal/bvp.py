"""Boundary-value solvers for the single-channel analytical model.

The steady-state model of Sec. III is a two-point boundary-value problem:
the ODE of :mod:`repro.thermal.state_space` with the adiabatic boundary
conditions ``q_1(0) = q_2(0) = 0`` and ``q_1(d) = q_2(d) = 0`` (Eq. 5), plus
the coolant inlet condition ``T_C(0) = T_Cin``.

The problem is *stiff*: longitudinal conduction in the thin silicon layers
gives the homogeneous solutions growth rates of order
``sqrt(g_v / g_l) ~ 1e4 1/m``, i.e. boundary layers a few hundred microns
wide next to growth factors around ``exp(80)`` over a 1 cm channel.  Single
shooting is therefore numerically useless and only *global* methods are
provided:

* :func:`solve_trapezoidal` -- exploits the linearity of the ODE.  The
  augmented 5-state system ``dX/dz = A(z) X + b(z)`` is discretized with the
  (A-stable) trapezoidal rule on a uniform grid, the boundary conditions are
  appended, and the resulting banded sparse linear system is solved in one
  shot.  Second-order accurate, unconditionally stable, and fast; this is
  the default.
* :func:`solve_collocation` -- a thin wrapper around
  :func:`scipy.integrate.solve_bvp` (adaptive collocation), used for
  cross-validation in the test-suite.

Both return a :class:`~repro.thermal.solution.ThermalSolution` sampled on a
uniform grid.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse
from scipy.integrate import solve_bvp
from scipy.sparse.linalg import spsolve

from .geometry import TestStructure
from .solution import ThermalSolution
from .state_space import SingleChannelStateSpace

__all__ = ["solve_trapezoidal", "solve_collocation", "solve_single_channel"]

_N_STATES = 5  # T1, T2, q1, q2, TC


def solve_trapezoidal(
    structure: TestStructure,
    n_points: int = 401,
) -> ThermalSolution:
    """Solve the single-channel BVP with a global trapezoidal discretization.

    The augmented linear system ``dX/dz = A(z) X + b(z)`` is enforced on
    every interval of a uniform grid with the trapezoidal rule::

        X_{k+1} - X_k = (dz / 2) * (A_k X_k + b_k + A_{k+1} X_{k+1} + b_{k+1})

    and the five boundary conditions (``q_1(0) = q_2(0) = 0``,
    ``T_C(0) = T_Cin``, ``q_1(d) = q_2(d) = 0``) close the square system.
    Being a global method it is immune to the stiffness that defeats
    shooting approaches.
    """
    if n_points < 3:
        raise ValueError("n_points must be at least 3")
    model = SingleChannelStateSpace(structure)
    z_grid = np.linspace(0.0, structure.length, n_points)
    dz = z_grid[1] - z_grid[0]

    a_all, b_all = model.linear_coefficients(z_grid)

    n_unknowns = _N_STATES * n_points
    rows, cols, values = [], [], []
    rhs = np.zeros(n_unknowns)

    def state_index(point: int, state: int) -> int:
        return point * _N_STATES + state

    def add(row: int, col: int, value: float) -> None:
        if value != 0.0:
            rows.append(row)
            cols.append(col)
            values.append(value)

    identity = np.eye(_N_STATES)
    row_counter = 0
    for k in range(n_points - 1):
        # X_{k+1} - X_k - dz/2 (A_k X_k + A_{k+1} X_{k+1}) = dz/2 (b_k + b_{k+1})
        left = -identity - 0.5 * dz * a_all[k]
        right = identity - 0.5 * dz * a_all[k + 1]
        forcing = 0.5 * dz * (b_all[k] + b_all[k + 1])
        for i in range(_N_STATES):
            row = row_counter + i
            for j in range(_N_STATES):
                add(row, state_index(k, j), left[i, j])
                add(row, state_index(k + 1, j), right[i, j])
            rhs[row] = forcing[i]
        row_counter += _N_STATES

    # Boundary conditions: q1(0) = q2(0) = 0, TC(0) = T_Cin, q1(d) = q2(d) = 0.
    boundary_rows = [
        (state_index(0, 2), 0.0),
        (state_index(0, 3), 0.0),
        (state_index(0, 4), structure.inlet_temperature),
        (state_index(n_points - 1, 2), 0.0),
        (state_index(n_points - 1, 3), 0.0),
    ]
    for column, value in boundary_rows:
        add(row_counter, column, 1.0)
        rhs[row_counter] = value
        row_counter += 1

    matrix = sparse.csr_matrix(
        (values, (rows, cols)), shape=(n_unknowns, n_unknowns)
    )
    solution_vector = spsolve(matrix, rhs)
    if not np.all(np.isfinite(solution_vector)):
        raise RuntimeError("trapezoidal BVP solve produced non-finite values")
    states = solution_vector.reshape(n_points, _N_STATES).T

    temperatures = states[0:2, :][:, np.newaxis, :]
    heat_flows = states[2:4, :][:, np.newaxis, :]
    coolant = states[4, :][np.newaxis, :]
    residual = matrix @ solution_vector - rhs
    return ThermalSolution(
        z=z_grid,
        temperatures=temperatures,
        heat_flows=heat_flows,
        coolant_temperatures=coolant,
        inlet_temperature=structure.inlet_temperature,
        metadata={
            "solver": "trapezoidal",
            "n_points": n_points,
            "linear_residual": float(np.max(np.abs(residual))),
        },
    )


def solve_collocation(
    structure: TestStructure,
    n_points: int = 201,
    tol: float = 1e-6,
    max_nodes: int = 500_000,
    initial_guess: Optional[np.ndarray] = None,
) -> ThermalSolution:
    """Solve the single-channel BVP with SciPy's adaptive collocation solver.

    Slower than :func:`solve_trapezoidal` but fully independent of our
    discretization choices, which makes it a good cross-check (the test
    suite asserts the two agree).
    """
    model = SingleChannelStateSpace(structure)
    z_grid = np.linspace(0.0, structure.length, n_points)

    def rhs(z, state):
        return model.augmented_rhs(z, state)

    def boundary(inlet_state, outlet_state):
        return model.boundary_residual(inlet_state, outlet_state)

    if initial_guess is None:
        initial_guess = np.zeros((_N_STATES, z_grid.size))
        initial_guess[0:2, :] = structure.inlet_temperature + 10.0
        initial_guess[4, :] = structure.inlet_temperature
    result = solve_bvp(
        rhs, boundary, z_grid, initial_guess, tol=tol, max_nodes=max_nodes
    )
    if not result.success:
        raise RuntimeError(f"collocation BVP solve failed: {result.message}")

    evaluated = result.sol(z_grid)
    temperatures = evaluated[0:2, :][:, np.newaxis, :]
    heat_flows = evaluated[2:4, :][:, np.newaxis, :]
    coolant = evaluated[4, :][np.newaxis, :]
    return ThermalSolution(
        z=z_grid,
        temperatures=temperatures,
        heat_flows=heat_flows,
        coolant_temperatures=coolant,
        inlet_temperature=structure.inlet_temperature,
        metadata={
            "solver": "collocation",
            "n_points": n_points,
            "rms_residuals": float(np.max(result.rms_residuals)),
        },
    )


def solve_single_channel(
    structure: TestStructure,
    n_points: int = 401,
    method: str = "trapezoidal",
    **kwargs,
) -> ThermalSolution:
    """Solve a single-channel structure with the requested method.

    ``method`` is ``"trapezoidal"`` (default), ``"collocation"`` or
    ``"fdm"`` (the finite-difference workhorse from
    :mod:`repro.thermal.fdm`, which also handles multi-channel cavities).
    """
    if method == "trapezoidal":
        return solve_trapezoidal(structure, n_points=n_points, **kwargs)
    if method == "collocation":
        return solve_collocation(structure, n_points=n_points, **kwargs)
    if method == "fdm":
        from .fdm import solve_finite_difference
        from .geometry import MultiChannelStructure

        return solve_finite_difference(
            MultiChannelStructure.single(structure), n_points=n_points, **kwargs
        )
    raise ValueError(f"unknown solver method: {method!r}")
