"""Sparse assembly of the multi-channel finite-difference system.

This module builds the linear system solved by
:func:`repro.thermal.fdm.solve_finite_difference`.  Two assembly routes are
provided:

* :func:`assemble_system` -- the production path.  All coefficient (COO)
  triplets are produced with vectorized NumPy operations, and the *static*
  sparsity structure of the system -- which depends only on the problem
  shape ``(n_lanes, n_points)``, the lateral-coupling flag and the per-lane
  flow directions -- is computed once per shape and cached as a
  :class:`SparsityPattern`.  Repeated solves of the same shape (the
  optimizer evaluates hundreds of candidate designs on one grid) only
  refresh the ``values`` array and reuse the precomputed CSR structure.
* :func:`assemble_system_loop` -- the original per-grid-point Python-loop
  assembly, kept as the reference implementation for the equivalence test
  suite and the scaling benchmark.

Both routes discretize the identical equations (see the module docstring of
:mod:`repro.thermal.fdm`) and produce the same matrix up to floating-point
round-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import sparse

from ..core.linear_system import PatternCache, SparsityFold
from . import conductances
from .geometry import MultiChannelStructure

__all__ = [
    "AssembledSystem",
    "LaneParameters",
    "SparsityPattern",
    "assemble_system",
    "assemble_system_loop",
    "clear_pattern_cache",
    "get_pattern",
    "lane_conductance_rows",
    "lane_parameters",
    "pattern_cache_info",
]


@dataclass(frozen=True)
class LaneParameters:
    """Per-unit-length parameters of every lane evaluated on the z-grid.

    Arrays are stacked lane-major: ``g_v[j, k]`` is the layer-to-coolant
    conductance of lane ``j`` at grid point ``k``.  Scalars per lane
    (``g_l``, ``cap``) have shape ``(n_lanes,)``.
    """

    g_v: np.ndarray
    g_w: np.ndarray
    q_top: np.ndarray
    q_bottom: np.ndarray
    g_l: np.ndarray
    cap: np.ndarray
    reversed_flags: Tuple[bool, ...]


def lane_conductance_rows(
    structure: MultiChannelStructure,
    z_grid: np.ndarray,
    lane_index: int,
    widths: Optional[np.ndarray] = None,
    coolant=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(g_v, g_w)`` rows of one lane, for the given (or its own) widths.

    These are the only :class:`LaneParameters` rows that depend on the
    channel-width profile, so the adjoint gradient path
    (:mod:`repro.core.adjoint`) re-evaluates just them when perturbing one
    lane's design variables.  Cluster scaling matches
    :func:`lane_parameters`.

    ``coolant`` overrides the lane's own coolant record for the ``g_v``
    evaluation -- the Picard outer iteration passes an array-valued
    :class:`~repro.thermal.properties.CoolantState` (film properties at
    the lane's bulk coolant temperatures) to refresh the convective
    conductances without touching the lane itself.
    """
    lane = structure.lanes[lane_index]
    if widths is None:
        widths = lane.width_profile(z_grid)
    widths = np.atleast_1d(np.asarray(widths, dtype=float))
    scale = float(structure.cluster_size_of_lane(lane_index))
    g_v = (
        np.asarray(
            conductances.layer_to_coolant_conductance(
                lane.geometry,
                lane.silicon,
                lane.coolant if coolant is None else coolant,
                widths,
                lane.flow_rate,
                z_grid,
                lane.developing_flow,
            ),
            dtype=float,
        )
        * scale
    )
    g_w = (
        np.asarray(
            conductances.sidewall_conductance(
                lane.geometry, lane.silicon, widths
            ),
            dtype=float,
        )
        * scale
    )
    return g_v, g_w


def lane_parameters(
    structure: MultiChannelStructure, z_grid: np.ndarray
) -> LaneParameters:
    """Evaluate every lane's per-unit-length parameters on the grid.

    Channel clustering scales every parameter of a lane by the number of
    physical channels the lane represents, exactly as in Sec. III of the
    paper.
    """
    n_lanes = structure.n_lanes
    n_points = z_grid.size
    g_v = np.empty((n_lanes, n_points))
    g_w = np.empty((n_lanes, n_points))
    q_top = np.empty((n_lanes, n_points))
    q_bottom = np.empty((n_lanes, n_points))
    g_l = np.empty(n_lanes)
    cap = np.empty(n_lanes)
    for index, lane in enumerate(structure.lanes):
        scale = float(structure.cluster_size_of_lane(index))
        g_v[index], g_w[index] = lane_conductance_rows(structure, z_grid, index)
        q_top[index] = np.atleast_1d(lane.heat_top(z_grid))
        q_bottom[index] = np.atleast_1d(lane.heat_bottom(z_grid))
        g_l[index] = (
            conductances.longitudinal_conductance(lane.geometry, lane.silicon)
            * scale
        )
        cap[index] = conductances.capacity_rate(lane.coolant, lane.flow_rate) * scale
    return LaneParameters(
        g_v=g_v,
        g_w=g_w,
        q_top=q_top,
        q_bottom=q_bottom,
        g_l=g_l,
        cap=cap,
        reversed_flags=tuple(bool(lane.flow_reversed) for lane in structure.lanes),
    )


def lateral_conductance_of(
    structure: MultiChannelStructure, lane_pitch: Optional[float] = None
) -> float:
    """The lane-to-lane lateral conductance of a cavity (0 when disabled).

    Conduction between the centers of two adjacent lane bands: the
    cross-section is one silicon slab of height ``H_Si`` per active layer
    regardless of how many channels the band clusters, so the conductance
    only depends on the band pitch.
    """
    if lane_pitch is None:
        lane_pitch = structure.cluster_size * structure.geometry.pitch
    if structure.lateral_coupling and structure.n_lanes > 1:
        return conductances.lateral_conductance(
            structure.geometry, structure.silicon, lane_pitch
        )
    return 0.0


class SparsityPattern:
    """Precomputed sparsity structure of the FDM system for one shape.

    The unknown ordering is variable-major, then lane, then grid point
    (variable 0 = top-layer temperature, 1 = bottom-layer temperature,
    2 = coolant temperature)::

        index(variable, lane, point) = (variable * n_lanes + lane) * n_points + point

    The pattern owns the canonical CSR index arrays and the scatter map
    from raw COO entry order to CSR data slots, so refreshing a system for
    new parameter values is a single :func:`numpy.add.at` into a
    preallocated data array -- no sorting, no duplicate folding, and a
    bit-identical structure across solves (which the solver backends use to
    recognize repeated matrices).
    """

    def __init__(
        self,
        n_lanes: int,
        n_points: int,
        lateral_coupling: bool,
        reversed_flags: Tuple[bool, ...],
    ) -> None:
        if n_points < 3:
            raise ValueError("n_points must be at least 3")
        if n_lanes < 1:
            raise ValueError("n_lanes must be at least 1")
        if len(reversed_flags) != n_lanes:
            raise ValueError("reversed_flags must provide one flag per lane")
        self.n_lanes = int(n_lanes)
        self.n_points = int(n_points)
        self.lateral_coupling = bool(lateral_coupling) and n_lanes > 1
        self.reversed_flags = tuple(bool(flag) for flag in reversed_flags)
        self.n_unknowns = 3 * self.n_lanes * self.n_points
        #: Hashable identity of this pattern; two systems assembled from the
        #: same token share indptr/indices arrays.
        self.token = (
            "fdm",
            self.n_lanes,
            self.n_points,
            self.lateral_coupling,
            self.reversed_flags,
        )

        L, P = self.n_lanes, self.n_points
        lanes = np.arange(L)[:, None]
        points = np.arange(P)[None, :]
        silicon = [(layer * L + lanes) * P + points for layer in (0, 1)]
        coolant = (2 * L + lanes) * P + points
        reversed_mask = np.asarray(self.reversed_flags, dtype=bool)
        inlet_point = np.where(reversed_mask, P - 1, 0)[:, None]
        upstream = np.where(reversed_mask, 1, -1)[:, None]
        inlet_mask = points == inlet_point

        rows, cols = [], []
        for layer in (0, 1):
            row = silicon[layer]
            other = silicon[1 - layer]
            # Longitudinal conduction neighbours (zero-flux ends).
            rows += [row[:, 1:], row[:, :-1]]
            cols += [row[:, :-1], row[:, 1:]]
            # Layer-to-coolant and inter-layer sidewall couplings.
            rows += [row, row]
            cols += [coolant, other]
            # Lateral conduction to the neighbouring lanes.
            if self.lateral_coupling:
                rows += [row[1:, :], row[:-1, :]]
                cols += [row[:-1, :], row[1:, :]]
            # Diagonal.
            rows.append(row)
            cols.append(row)
        # Coolant advection: diagonal, upwind neighbour, both silicon layers.
        # Inlet (Dirichlet) points redirect the off-diagonal slots onto the
        # diagonal with zero coefficients so the structure stays static.
        rows += [coolant] * 4
        cols += [
            coolant,
            np.where(inlet_mask, coolant, coolant + upstream),
            np.where(inlet_mask, coolant, silicon[0]),
            np.where(inlet_mask, coolant, silicon[1]),
        ]

        raw_rows = np.concatenate([part.ravel() for part in rows])
        raw_cols = np.concatenate([part.ravel() for part in cols])

        #: Canonical fold of the raw triplet stream (shared machinery with
        #: the finite-volume stack model).  Exposes the raw ``rows``/``cols``
        #: used by the adjoint stencils in :mod:`repro.core.adjoint`.
        self.fold = SparsityFold(raw_rows, raw_cols, self.n_unknowns)
        self.n_entries = self.fold.n_entries
        self.nnz = self.fold.nnz

        self._inlet_mask = inlet_mask

    # -- system refresh -----------------------------------------------------

    def values(self, params: LaneParameters, g_lat: float, dz: float) -> np.ndarray:
        """Raw COO coefficient values in the pattern's entry order."""
        L, P = self.n_lanes, self.n_points
        conduction = (params.g_l / dz**2)[:, None]
        inlet = self._inlet_mask
        advection = (params.cap / dz)[:, None]

        parts = []
        lateral = np.full((L - 1, P), g_lat) if self.lateral_coupling else None
        for _layer in (0, 1):
            neighbour = np.broadcast_to(conduction, (L, P - 1))
            parts += [neighbour, neighbour, params.g_v, params.g_w]
            diagonal = np.zeros((L, P))
            diagonal[:, 1:] -= conduction
            diagonal[:, :-1] -= conduction
            diagonal -= params.g_v
            diagonal -= params.g_w
            if self.lateral_coupling:
                parts += [lateral, lateral]
                diagonal[1:, :] -= g_lat
                diagonal[:-1, :] -= g_lat
            parts.append(diagonal)
        parts += [
            np.where(inlet, 1.0, -(advection + 2.0 * params.g_v)),
            np.where(inlet, 0.0, np.broadcast_to(advection, (L, P))),
            np.where(inlet, 0.0, params.g_v),
            np.where(inlet, 0.0, params.g_v),
        ]
        return np.concatenate([part.ravel() for part in parts])

    def conductance_sensitivities(
        self, weight: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fold per-entry adjoint weights into conductance sensitivities.

        The coefficient stream of :meth:`values` is *affine* in the
        conductance rows ``g_v`` and ``g_w`` with a fixed structural
        pattern (``+1`` on the coupling entries, ``-1`` on the diagonals,
        ``-2``/``+1``/``+1`` on the non-inlet coolant rows).  Given the
        per-raw-entry weights ``w_e = lambda[row_e] * u[col_e]`` this
        returns ``(s_v, s_w)`` of shape ``(n_lanes, n_points)`` such that
        for any conductance perturbation

            lambda^T (dA) u = sum(s_v * dg_v) + sum(s_w * dg_w)

        -- the adjoint gradient then needs only the two perturbed
        conductance rows per design variable, never a full value rebuild.
        """
        L, P = self.n_lanes, self.n_points
        weight = np.asarray(weight)
        if weight.shape != (self.n_entries,):
            raise ValueError(
                f"expected {self.n_entries} entry weights, got {weight.shape}"
            )
        s_v = np.zeros((L, P))
        s_w = np.zeros((L, P))
        offset = 0

        def take(shape):
            nonlocal offset
            size = int(np.prod(shape))
            part = weight[offset : offset + size].reshape(shape)
            offset += size
            return part

        for _layer in (0, 1):
            take((L, P - 1))  # conduction neighbours: width-independent
            take((L, P - 1))
            s_v += take((L, P))
            s_w += take((L, P))
            if self.lateral_coupling:
                take((L - 1, P))
                take((L - 1, P))
            diagonal = take((L, P))
            s_v -= diagonal
            s_w -= diagonal
        interior = ~self._inlet_mask
        s_v -= 2.0 * np.where(interior, take((L, P)), 0.0)
        take((L, P))  # advection neighbour: width-independent
        s_v += np.where(interior, take((L, P)), 0.0)
        s_v += np.where(interior, take((L, P)), 0.0)
        assert offset == self.n_entries
        return s_v, s_w

    def rhs(self, params: LaneParameters, inlet_temperature: float) -> np.ndarray:
        """Right-hand side vector for the given parameters."""
        rhs = np.empty(self.n_unknowns)
        L, P = self.n_lanes, self.n_points
        rhs[: L * P] = (-params.q_top).ravel()
        rhs[L * P : 2 * L * P] = (-params.q_bottom).ravel()
        rhs[2 * L * P :] = np.where(self._inlet_mask, inlet_temperature, 0.0).ravel()
        return rhs

    def matrix(self, values: np.ndarray) -> sparse.csr_matrix:
        """Fold raw COO values into a CSR matrix with the static structure."""
        return self.fold.matrix(values)


# -- pattern cache ---------------------------------------------------------

_PATTERN_CACHE_SIZE = 64
_PATTERN_CACHE = PatternCache(_PATTERN_CACHE_SIZE)


def get_pattern(
    n_lanes: int,
    n_points: int,
    lateral_coupling: bool,
    reversed_flags: Tuple[bool, ...],
) -> SparsityPattern:
    """Fetch (or build and cache) the pattern for one problem shape."""
    key = (
        int(n_lanes),
        int(n_points),
        bool(lateral_coupling) and n_lanes > 1,
        tuple(bool(flag) for flag in reversed_flags),
    )
    return _PATTERN_CACHE.get_or_build(
        key,
        lambda: SparsityPattern(
            n_lanes, n_points, lateral_coupling, reversed_flags
        ),
    )


def clear_pattern_cache() -> None:
    """Drop every cached sparsity pattern (used by tests and benchmarks)."""
    _PATTERN_CACHE.clear()


def pattern_cache_info() -> dict:
    """Current size and keys of the pattern cache."""
    return _PATTERN_CACHE.info()


@dataclass
class AssembledSystem:
    """A ready-to-solve linear system plus the context needed afterwards."""

    matrix: sparse.csr_matrix
    rhs: np.ndarray
    z_grid: np.ndarray
    params: LaneParameters
    lateral_conductance: float
    pattern: Optional[SparsityPattern] = None
    #: Raw COO coefficient values in the pattern's entry order (None for
    #: loop assembly).  The adjoint path differentiates these directly.
    values: Optional[np.ndarray] = None

    @property
    def pattern_token(self) -> Optional[tuple]:
        """Identity of the sparsity structure (None for loop assembly)."""
        return None if self.pattern is None else self.pattern.token


def assemble_system(
    structure: MultiChannelStructure,
    n_points: int = 201,
    lane_pitch: Optional[float] = None,
) -> AssembledSystem:
    """Vectorized assembly of the finite-difference system.

    Equivalent to :func:`assemble_system_loop` up to floating-point
    round-off, but with no per-grid-point Python work: the sparsity
    structure comes from the per-shape :class:`SparsityPattern` cache and
    only the coefficient values are recomputed.
    """
    if n_points < 3:
        raise ValueError("n_points must be at least 3")
    z_grid = np.linspace(0.0, structure.length, n_points)
    dz = z_grid[1] - z_grid[0]
    g_lat = lateral_conductance_of(structure, lane_pitch)
    params = lane_parameters(structure, z_grid)
    pattern = get_pattern(
        structure.n_lanes, n_points, structure.lateral_coupling, params.reversed_flags
    )
    values = pattern.values(params, g_lat, dz)
    matrix = pattern.matrix(values)
    rhs = pattern.rhs(params, structure.inlet_temperature)
    return AssembledSystem(
        matrix=matrix,
        rhs=rhs,
        z_grid=z_grid,
        params=params,
        lateral_conductance=g_lat,
        pattern=pattern,
        values=values,
    )


def assemble_system_loop(
    structure: MultiChannelStructure,
    n_points: int = 201,
    lane_pitch: Optional[float] = None,
) -> AssembledSystem:
    """Reference per-grid-point loop assembly (the original implementation).

    Kept verbatim for the equivalence tests and as the baseline of the
    solver-scaling benchmark; production code uses :func:`assemble_system`.
    """
    if n_points < 3:
        raise ValueError("n_points must be at least 3")
    n_lanes = structure.n_lanes
    z_grid = np.linspace(0.0, structure.length, n_points)
    dz = z_grid[1] - z_grid[0]
    g_lat = lateral_conductance_of(structure, lane_pitch)
    params = lane_parameters(structure, z_grid)

    def index(variable: int, lane: int, point: int) -> int:
        return (variable * n_lanes + lane) * n_points + point

    n_unknowns = 3 * n_lanes * n_points
    rows, cols, values = [], [], []
    rhs = np.zeros(n_unknowns)

    def add(row: int, col: int, value: float) -> None:
        rows.append(row)
        cols.append(col)
        values.append(value)

    for lane_idx in range(n_lanes):
        g_v = params.g_v[lane_idx]
        g_w = params.g_w[lane_idx]
        heat = (params.q_top[lane_idx], params.q_bottom[lane_idx])
        conduction = params.g_l[lane_idx] / dz**2
        cap = params.cap[lane_idx]
        for layer in range(2):
            other_layer = 1 - layer
            for k in range(n_points):
                row = index(layer, lane_idx, k)
                diagonal = 0.0
                # Longitudinal conduction with zero-flux (adiabatic) ends.
                if k > 0:
                    add(row, index(layer, lane_idx, k - 1), conduction)
                    diagonal -= conduction
                if k < n_points - 1:
                    add(row, index(layer, lane_idx, k + 1), conduction)
                    diagonal -= conduction
                # Layer to coolant.
                diagonal -= g_v[k]
                add(row, index(2, lane_idx, k), g_v[k])
                # Inter-layer sidewall conduction.
                diagonal -= g_w[k]
                add(row, index(other_layer, lane_idx, k), g_w[k])
                # Lateral conduction to the neighbouring lanes.
                if g_lat > 0.0:
                    if lane_idx > 0:
                        add(row, index(layer, lane_idx - 1, k), g_lat)
                        diagonal -= g_lat
                    if lane_idx < n_lanes - 1:
                        add(row, index(layer, lane_idx + 1, k), g_lat)
                        diagonal -= g_lat
                add(row, row, diagonal)
                rhs[row] = -heat[layer][k]

        # Coolant advection, first-order upwind.  For a reversed lane the
        # coolant enters at z = d and flows toward z = 0, so the inlet
        # Dirichlet condition and the upwind neighbour are mirrored.
        reversed_flow = structure.lanes[lane_idx].flow_reversed
        inlet_point = n_points - 1 if reversed_flow else 0
        upstream_offset = 1 if reversed_flow else -1
        for k in range(n_points):
            row = index(2, lane_idx, k)
            if k == inlet_point:
                add(row, row, 1.0)
                rhs[row] = structure.inlet_temperature
                continue
            advection = cap / dz
            add(row, row, -(advection + 2.0 * g_v[k]))
            add(row, index(2, lane_idx, k + upstream_offset), advection)
            add(row, index(0, lane_idx, k), g_v[k])
            add(row, index(1, lane_idx, k), g_v[k])
            rhs[row] = 0.0

    matrix = sparse.csr_matrix(
        (values, (rows, cols)), shape=(n_unknowns, n_unknowns)
    )
    return AssembledSystem(
        matrix=matrix,
        rhs=rhs,
        z_grid=z_grid,
        params=params,
        lateral_conductance=g_lat,
        pattern=None,
    )
