"""Analytical thermal modeling of microchannel liquid-cooled 3D ICs.

This subpackage implements the thermal substrate of the reproduction: the
per-unit-length thermal network of Sec. III of the paper, its state-space
ODE form, boundary-value solvers, and the multi-channel finite-difference
workhorse used by the optimizer and by the 3D-MPSoC experiments.
"""

from .properties import (
    BEOL,
    COPPER,
    COOLANT_LIBRARY,
    Coolant,
    MATERIAL_LIBRARY,
    PaperParameters,
    SILICON,
    SILICON_DIOXIDE,
    SolidMaterial,
    TABLE_I,
    WATER,
    ml_per_min_to_m3_per_s,
    m3_per_s_to_ml_per_min,
)
from .correlations import (
    ChannelFlowState,
    aspect_ratio,
    characterize_flow,
    friction_factor_times_reynolds,
    graetz_number,
    heat_transfer_coefficient,
    hydraulic_diameter,
    mean_velocity,
    nusselt_developing,
    nusselt_fully_developed_h1,
    nusselt_fully_developed_t,
    prandtl_number,
    reynolds_number,
)
from .geometry import (
    ChannelGeometry,
    HeatInputProfile,
    MultiChannelStructure,
    TestStructure,
    WidthProfile,
)
from .conductances import (
    ElementConductances,
    capacity_rate,
    convective_conductance,
    evaluate_conductances,
    lateral_conductance,
    layer_to_coolant_conductance,
    longitudinal_conductance,
    sidewall_conductance,
    slab_conductance,
)
from .state_space import (
    AUGMENTED_STATE_NAMES,
    REDUCED_STATE_NAMES,
    SingleChannelStateSpace,
)
from .solution import ThermalSolution
from .assembly import (
    AssembledSystem,
    SparsityPattern,
    assemble_system,
    assemble_system_loop,
    clear_pattern_cache,
    pattern_cache_info,
)
from .backends import (
    DEFAULT_BACKEND,
    AutoBackend,
    DenseBackend,
    SolverBackend,
    SparseIterativeBackend,
    SparseLUBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from .bvp import solve_collocation, solve_single_channel, solve_trapezoidal
from .fdm import solve_finite_difference, solve_structure
from .multichannel import build_cavity, cavity_from_flux_maps, cluster_line_densities

__all__ = [
    # properties
    "BEOL",
    "COPPER",
    "COOLANT_LIBRARY",
    "Coolant",
    "MATERIAL_LIBRARY",
    "PaperParameters",
    "SILICON",
    "SILICON_DIOXIDE",
    "SolidMaterial",
    "TABLE_I",
    "WATER",
    "ml_per_min_to_m3_per_s",
    "m3_per_s_to_ml_per_min",
    # correlations
    "ChannelFlowState",
    "aspect_ratio",
    "characterize_flow",
    "friction_factor_times_reynolds",
    "graetz_number",
    "heat_transfer_coefficient",
    "hydraulic_diameter",
    "mean_velocity",
    "nusselt_developing",
    "nusselt_fully_developed_h1",
    "nusselt_fully_developed_t",
    "prandtl_number",
    "reynolds_number",
    # geometry
    "ChannelGeometry",
    "HeatInputProfile",
    "MultiChannelStructure",
    "TestStructure",
    "WidthProfile",
    # conductances
    "ElementConductances",
    "capacity_rate",
    "convective_conductance",
    "evaluate_conductances",
    "lateral_conductance",
    "layer_to_coolant_conductance",
    "longitudinal_conductance",
    "sidewall_conductance",
    "slab_conductance",
    # assembly & backends
    "AssembledSystem",
    "SparsityPattern",
    "assemble_system",
    "assemble_system_loop",
    "clear_pattern_cache",
    "pattern_cache_info",
    "DEFAULT_BACKEND",
    "AutoBackend",
    "DenseBackend",
    "SolverBackend",
    "SparseIterativeBackend",
    "SparseLUBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    # state space & solvers
    "AUGMENTED_STATE_NAMES",
    "REDUCED_STATE_NAMES",
    "SingleChannelStateSpace",
    "ThermalSolution",
    "solve_collocation",
    "solve_single_channel",
    "solve_trapezoidal",
    "solve_finite_difference",
    "solve_structure",
    # multichannel builders
    "build_cavity",
    "cavity_from_flux_maps",
    "cluster_line_densities",
]
