"""Builders for multi-channel cavity models.

The analytical model of the paper describes one channel; Sec. III explains
how it extends to many adjacent channels (two extra nodes per channel,
lateral heat spreading in the y direction) and how several physical channels
can be *combined* under one pair of nodes by scaling the per-unit-length
parameters.  This module builds :class:`MultiChannelStructure` instances
from per-lane heat descriptions, handling the clustering bookkeeping so the
floorplan layer and the optimizer never have to repeat it.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .geometry import (
    ChannelGeometry,
    HeatInputProfile,
    MultiChannelStructure,
    TestStructure,
    WidthProfile,
)
from .properties import Coolant, PaperParameters, SolidMaterial, TABLE_I

__all__ = [
    "build_cavity",
    "cavity_from_flux_maps",
    "cluster_line_densities",
]


def build_cavity(
    geometry: ChannelGeometry,
    heat_top: Sequence[HeatInputProfile],
    heat_bottom: Sequence[HeatInputProfile],
    width_profiles: Optional[Sequence[WidthProfile]] = None,
    *,
    silicon: SolidMaterial = TABLE_I.silicon,
    coolant: Coolant = TABLE_I.coolant,
    flow_rate: float = TABLE_I.flow_rate_per_channel,
    inlet_temperature: float = TABLE_I.inlet_temperature,
    cluster_size: int = 1,
    lateral_coupling: bool = True,
    developing_flow: bool = False,
) -> MultiChannelStructure:
    """Assemble a cavity from per-lane heat inputs and width profiles.

    Parameters
    ----------
    geometry:
        Geometry of one *physical* channel cell.
    heat_top, heat_bottom:
        One heat-input profile per modeled lane for the top and bottom
        active layers.  When ``cluster_size > 1`` the profiles must already
        contain the total power of all physical channels merged into the
        lane (use :func:`cluster_line_densities` to aggregate them).
    width_profiles:
        One width profile per lane; defaults to the maximum channel width
        everywhere (the common design used by prior work, per Sec. V).
    flow_rate:
        Volumetric flow rate per *physical* channel (paper assumption 3).
    cluster_size:
        Number of physical channels per modeled lane.
    """
    if len(heat_top) != len(heat_bottom):
        raise ValueError("heat_top and heat_bottom must have the same lane count")
    n_lanes = len(heat_top)
    if n_lanes == 0:
        raise ValueError("at least one lane is required")
    if width_profiles is None:
        width_profiles = [
            WidthProfile.uniform(geometry.max_width, geometry.length)
            for _ in range(n_lanes)
        ]
    if len(width_profiles) != n_lanes:
        raise ValueError("one width profile per lane is required")

    lanes = []
    for top, bottom, width in zip(heat_top, heat_bottom, width_profiles):
        lanes.append(
            TestStructure(
                geometry=geometry,
                width_profile=width,
                heat_top=top,
                heat_bottom=bottom,
                silicon=silicon,
                coolant=coolant,
                flow_rate=flow_rate,
                inlet_temperature=inlet_temperature,
                developing_flow=developing_flow,
            )
        )
    return MultiChannelStructure(
        geometry=geometry,
        lanes=tuple(lanes),
        cluster_size=cluster_size,
        lateral_coupling=lateral_coupling,
    )


def cluster_line_densities(
    per_channel_densities: np.ndarray, cluster_size: int
) -> np.ndarray:
    """Aggregate per-physical-channel line heat densities into lane totals.

    ``per_channel_densities`` has shape ``(n_channels, n_samples)`` in W/m;
    consecutive groups of ``cluster_size`` channels are summed.  A trailing
    partial group is scaled up to a full cluster so that the total power of
    the cavity is preserved (this mirrors how a designer would pad the last
    cluster with the same average load).
    """
    densities = np.asarray(per_channel_densities, dtype=float)
    if densities.ndim != 2:
        raise ValueError("per_channel_densities must be 2-D")
    if cluster_size < 1:
        raise ValueError("cluster_size must be at least 1")
    n_channels = densities.shape[0]
    n_lanes = int(np.ceil(n_channels / cluster_size))
    lanes = np.zeros((n_lanes, densities.shape[1]))
    for lane in range(n_lanes):
        start = lane * cluster_size
        stop = min(start + cluster_size, n_channels)
        group = densities[start:stop]
        total = group.sum(axis=0)
        if stop - start < cluster_size:
            total = total * (cluster_size / (stop - start))
        lanes[lane] = total
    return lanes


def cavity_from_flux_maps(
    flux_top_w_per_cm2: np.ndarray,
    flux_bottom_w_per_cm2: np.ndarray,
    *,
    params: PaperParameters = TABLE_I,
    die_length: Optional[float] = None,
    die_width: Optional[float] = None,
    cluster_size: int = 1,
    width_profiles: Optional[Sequence[WidthProfile]] = None,
    lateral_coupling: bool = True,
    developing_flow: bool = False,
) -> MultiChannelStructure:
    """Build a cavity model from two areal heat-flux maps (W/cm^2).

    The maps are 2-D arrays with the flow direction along axis 1 (columns,
    inlet at column 0) and the lateral direction along axis 0 (rows); each
    row band of the map is projected onto the physical channels underneath
    it.  This is the bridge between the floorplan/power subsystem (which
    rasterizes block powers onto a grid) and the analytical cavity model.

    Parameters
    ----------
    flux_top_w_per_cm2, flux_bottom_w_per_cm2:
        Heat flux maps of the two active layers, same shape.
    die_length:
        Die extent along the flow direction (meters); defaults to the
        channel length in ``params``.
    die_width:
        Die extent across the flow direction (meters); defaults to
        ``n_channels * W`` for the number of physical channels that fit.
    cluster_size:
        Physical channels merged per modeled lane.
    """
    top = np.asarray(flux_top_w_per_cm2, dtype=float)
    bottom = np.asarray(flux_bottom_w_per_cm2, dtype=float)
    if top.shape != bottom.shape:
        raise ValueError("top and bottom flux maps must have the same shape")
    if top.ndim != 2:
        raise ValueError("flux maps must be 2-D arrays")

    length = params.channel_length if die_length is None else float(die_length)
    geometry = ChannelGeometry.from_parameters(params).__class__(
        pitch=params.channel_pitch,
        channel_height=params.channel_height,
        silicon_height=params.silicon_height,
        length=length,
        min_width=params.min_channel_width,
        max_width=params.max_channel_width,
    )

    n_rows, n_cols = top.shape
    if die_width is None:
        die_width = n_rows * params.channel_pitch
    n_channels = max(int(round(die_width / params.channel_pitch)), 1)

    # Project the flux maps onto per-physical-channel line densities (W/m):
    # each channel integrates the flux over its own pitch-wide band.
    row_edges = np.linspace(0.0, die_width, n_rows + 1)
    channel_edges = np.linspace(0.0, die_width, n_channels + 1)
    densities_top = np.zeros((n_channels, n_cols))
    densities_bottom = np.zeros((n_channels, n_cols))
    for channel in range(n_channels):
        lo, hi = channel_edges[channel], channel_edges[channel + 1]
        overlap = np.clip(
            np.minimum(hi, row_edges[1:]) - np.maximum(lo, row_edges[:-1]),
            0.0,
            None,
        )
        # overlap[r] is the width (m) of map row r covered by this channel.
        densities_top[channel] = (top * 1e4 * overlap[:, None]).sum(axis=0)
        densities_bottom[channel] = (bottom * 1e4 * overlap[:, None]).sum(axis=0)

    lane_top = cluster_line_densities(densities_top, cluster_size)
    lane_bottom = cluster_line_densities(densities_bottom, cluster_size)

    column_centers = (np.arange(n_cols) + 0.5) * length / n_cols
    heat_top_profiles = []
    heat_bottom_profiles = []
    for lane in range(lane_top.shape[0]):
        top_values = lane_top[lane]
        bottom_values = lane_bottom[lane]
        heat_top_profiles.append(
            HeatInputProfile.from_function(
                _step_interpolator(column_centers, top_values, length), length
            )
        )
        heat_bottom_profiles.append(
            HeatInputProfile.from_function(
                _step_interpolator(column_centers, bottom_values, length), length
            )
        )

    return build_cavity(
        geometry,
        heat_top_profiles,
        heat_bottom_profiles,
        width_profiles,
        silicon=params.silicon,
        coolant=params.coolant,
        flow_rate=params.flow_rate_per_channel,
        inlet_temperature=params.inlet_temperature,
        cluster_size=cluster_size,
        lateral_coupling=lateral_coupling,
        developing_flow=developing_flow,
    )


def _step_interpolator(centers: np.ndarray, values: np.ndarray, length: float):
    """Nearest-column (piecewise-constant) interpolation of map columns."""
    centers = np.asarray(centers, dtype=float)
    values = np.asarray(values, dtype=float)
    n = centers.size

    def interpolate(z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=float)
        index = np.clip((z / length * n).astype(int), 0, n - 1)
        return values[index]

    return interpolate
