"""Material and coolant property library.

The paper (assumption 2 in Section IV) treats all fluid and solid properties
as temperature independent, which makes every property in this module a plain
number attached to a named material.  The values used throughout the paper's
experiments are collected in :class:`PaperParameters` (Table I of the paper),
which every other subsystem imports as its default configuration.

Units are SI throughout: W/(m.K) for thermal conductivity, J/(m^3.K) for
volumetric heat capacity, Pa.s for dynamic viscosity, kg/m^3 for density,
meters for lengths, m^3/s for volumetric flow rates, Kelvin for temperatures
and Pascal for pressures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class SolidMaterial:
    """A solid material described by bulk thermal properties.

    Attributes
    ----------
    name:
        Human readable material name.
    thermal_conductivity:
        Bulk thermal conductivity ``k`` in W/(m.K).
    volumetric_heat_capacity:
        Volumetric heat capacity ``rho * c_p`` in J/(m^3.K).  Only used by
        the transient finite-volume solver; the analytical model of the
        paper is a steady-state model.
    """

    name: str
    thermal_conductivity: float
    volumetric_heat_capacity: float

    def __post_init__(self) -> None:
        if self.thermal_conductivity <= 0.0:
            raise ValueError(
                f"thermal conductivity of {self.name!r} must be positive, "
                f"got {self.thermal_conductivity}"
            )
        if self.volumetric_heat_capacity <= 0.0:
            raise ValueError(
                f"volumetric heat capacity of {self.name!r} must be positive, "
                f"got {self.volumetric_heat_capacity}"
            )


@dataclass(frozen=True)
class Coolant:
    """A single-phase liquid coolant with temperature-independent properties.

    Attributes
    ----------
    name:
        Human readable coolant name.
    thermal_conductivity:
        Thermal conductivity ``k_f`` in W/(m.K).
    volumetric_heat_capacity:
        Volumetric heat capacity ``c_v = rho * c_p`` in J/(m^3.K).  Table I
        lists ``4.17e6`` for water.
    dynamic_viscosity:
        Dynamic viscosity ``mu`` in Pa.s.
    density:
        Mass density ``rho`` in kg/m^3.
    prandtl:
        Prandtl number ``Pr = mu * c_p / k_f`` (dimensionless).  Stored
        explicitly so that callers do not need the specific heat separately.
    """

    name: str
    thermal_conductivity: float
    volumetric_heat_capacity: float
    dynamic_viscosity: float
    density: float
    prandtl: float

    def __post_init__(self) -> None:
        for attr in (
            "thermal_conductivity",
            "volumetric_heat_capacity",
            "dynamic_viscosity",
            "density",
            "prandtl",
        ):
            value = getattr(self, attr)
            if value <= 0.0:
                raise ValueError(
                    f"{attr} of coolant {self.name!r} must be positive, got {value}"
                )

    @property
    def specific_heat(self) -> float:
        """Specific heat capacity ``c_p`` in J/(kg.K)."""
        return self.volumetric_heat_capacity / self.density

    @property
    def kinematic_viscosity(self) -> float:
        """Kinematic viscosity ``nu = mu / rho`` in m^2/s."""
        return self.dynamic_viscosity / self.density


# --- Canonical materials -------------------------------------------------

SILICON = SolidMaterial(
    name="silicon",
    thermal_conductivity=130.0,  # W/(m.K), Table I
    volumetric_heat_capacity=1.628e6,  # J/(m^3.K)
)

SILICON_DIOXIDE = SolidMaterial(
    name="silicon dioxide",
    thermal_conductivity=1.4,
    volumetric_heat_capacity=1.65e6,
)

COPPER = SolidMaterial(
    name="copper",
    thermal_conductivity=400.0,
    volumetric_heat_capacity=3.45e6,
)

BEOL = SolidMaterial(
    name="back-end-of-line (Cu/low-k stack)",
    thermal_conductivity=2.25,
    volumetric_heat_capacity=2.175e6,
)

WATER = Coolant(
    name="water",
    thermal_conductivity=0.6,
    volumetric_heat_capacity=4.17e6,  # Table I
    dynamic_viscosity=8.9e-4,
    density=998.0,
    prandtl=6.2,
)

MATERIAL_LIBRARY: Dict[str, SolidMaterial] = {
    material.name: material
    for material in (SILICON, SILICON_DIOXIDE, COPPER, BEOL)
}

COOLANT_LIBRARY: Dict[str, Coolant] = {WATER.name: WATER}


def ml_per_min_to_m3_per_s(ml_per_min: float) -> float:
    """Convert a flow rate from ml/min (as quoted in Table I) to m^3/s."""
    return ml_per_min * 1e-6 / 60.0


def m3_per_s_to_ml_per_min(m3_per_s: float) -> float:
    """Convert a flow rate from m^3/s back to ml/min for reporting."""
    return m3_per_s * 60.0 / 1e-6


@dataclass(frozen=True)
class PaperParameters:
    """The system parameters of Table I of the paper.

    The defaults reproduce Table I exactly.  Instances are immutable; use
    :meth:`with_overrides` to derive a modified configuration (for example
    for the ablation benchmarks that sweep the flow rate or the pressure
    limit).

    Attributes
    ----------
    silicon:
        Solid material of the dies and channel walls (k_Si = 130 W/m.K).
    coolant:
        The coolant (water, c_v = 4.17e6 J/m^3.K).
    channel_pitch:
        ``W`` -- the lateral pitch of one channel cell in meters (100 um).
    silicon_height:
        ``H_Si`` -- silicon slab height above and below the cavity (50 um).
    channel_height:
        ``H_C`` -- microchannel height (100 um).
    flow_rate_per_channel:
        ``V_dot`` -- volumetric flow rate per channel in m^3/s
        (4.8 ml/min/channel in Table I).
    inlet_temperature:
        ``T_C,in`` -- coolant inlet temperature in Kelvin (300 K).
    max_pressure_drop:
        ``dP_max`` -- maximum allowed pressure drop in Pa (10e5 Pa).
    min_channel_width:
        ``w_Cmin`` in meters (10 um).
    max_channel_width:
        ``w_Cmax`` in meters (50 um).
    channel_length:
        ``d`` -- channel length from inlet to outlet in meters.  The single
        channel test structures of the paper use d = 1 cm.
    """

    silicon: SolidMaterial = SILICON
    coolant: Coolant = WATER
    channel_pitch: float = 100e-6
    silicon_height: float = 50e-6
    channel_height: float = 100e-6
    flow_rate_per_channel: float = field(
        default_factory=lambda: ml_per_min_to_m3_per_s(4.8)
    )
    inlet_temperature: float = 300.0
    max_pressure_drop: float = 10e5
    min_channel_width: float = 10e-6
    max_channel_width: float = 50e-6
    channel_length: float = 1e-2

    def __post_init__(self) -> None:
        positive = (
            "channel_pitch",
            "silicon_height",
            "channel_height",
            "flow_rate_per_channel",
            "inlet_temperature",
            "max_pressure_drop",
            "min_channel_width",
            "max_channel_width",
            "channel_length",
        )
        for attr in positive:
            value = getattr(self, attr)
            if value <= 0.0:
                raise ValueError(f"{attr} must be positive, got {value}")
        if self.min_channel_width >= self.max_channel_width:
            raise ValueError(
                "min_channel_width must be strictly smaller than max_channel_width"
            )
        if self.max_channel_width >= self.channel_pitch:
            raise ValueError(
                "max_channel_width must leave a solid wall: it must be smaller "
                "than the channel pitch W"
            )

    def with_overrides(self, **kwargs) -> "PaperParameters":
        """Return a copy with the given attributes replaced."""
        return replace(self, **kwargs)

    @property
    def flow_rate_ml_per_min(self) -> float:
        """Per-channel flow rate expressed in ml/min (for reporting)."""
        return m3_per_s_to_ml_per_min(self.flow_rate_per_channel)

    def as_table(self) -> Dict[str, float]:
        """Return the Table I rows as a plain dictionary (for reporting)."""
        return {
            "k_Si [W/m.K]": self.silicon.thermal_conductivity,
            "W [um]": self.channel_pitch * 1e6,
            "H_Si [um]": self.silicon_height * 1e6,
            "H_C [um]": self.channel_height * 1e6,
            "c_v [J/m^3.K]": self.coolant.volumetric_heat_capacity,
            "V_dot [ml/min/channel]": self.flow_rate_ml_per_min,
            "T_C,in [K]": self.inlet_temperature,
            "dP_max [Pa]": self.max_pressure_drop,
            "w_Cmin [um]": self.min_channel_width * 1e6,
            "w_Cmax [um]": self.max_channel_width * 1e6,
        }


#: Module-level immutable default configuration (Table I).
TABLE_I = PaperParameters()
