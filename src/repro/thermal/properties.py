"""Material and coolant property library.

The paper (assumption 2 in Section IV) treats all fluid and solid properties
as temperature independent, which makes every property in this module a plain
number attached to a named material.  The values used throughout the paper's
experiments are collected in :class:`PaperParameters` (Table I of the paper),
which every other subsystem imports as its default configuration.

Units are SI throughout: W/(m.K) for thermal conductivity, J/(m^3.K) for
volumetric heat capacity, Pa.s for dynamic viscosity, kg/m^3 for density,
meters for lengths, m^3/s for volumetric flow rates, Kelvin for temperatures
and Pascal for pressures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple, Union

import numpy as np


@dataclass(frozen=True)
class SolidMaterial:
    """A solid material described by bulk thermal properties.

    Attributes
    ----------
    name:
        Human readable material name.
    thermal_conductivity:
        Bulk thermal conductivity ``k`` in W/(m.K).
    volumetric_heat_capacity:
        Volumetric heat capacity ``rho * c_p`` in J/(m^3.K).  Only used by
        the transient finite-volume solver; the analytical model of the
        paper is a steady-state model.
    """

    name: str
    thermal_conductivity: float
    volumetric_heat_capacity: float

    def __post_init__(self) -> None:
        if self.thermal_conductivity <= 0.0:
            raise ValueError(
                f"thermal conductivity of {self.name!r} must be positive, "
                f"got {self.thermal_conductivity}"
            )
        if self.volumetric_heat_capacity <= 0.0:
            raise ValueError(
                f"volumetric heat capacity of {self.name!r} must be positive, "
                f"got {self.volumetric_heat_capacity}"
            )


@dataclass(frozen=True)
class Coolant:
    """A single-phase liquid coolant with temperature-independent properties.

    Attributes
    ----------
    name:
        Human readable coolant name.
    thermal_conductivity:
        Thermal conductivity ``k_f`` in W/(m.K).
    volumetric_heat_capacity:
        Volumetric heat capacity ``c_v = rho * c_p`` in J/(m^3.K).  Table I
        lists ``4.17e6`` for water.
    dynamic_viscosity:
        Dynamic viscosity ``mu`` in Pa.s.
    density:
        Mass density ``rho`` in kg/m^3.
    prandtl:
        Prandtl number ``Pr = mu * c_p / k_f`` (dimensionless).  Stored
        explicitly so that callers do not need the specific heat separately.
    """

    name: str
    thermal_conductivity: float
    volumetric_heat_capacity: float
    dynamic_viscosity: float
    density: float
    prandtl: float

    def __post_init__(self) -> None:
        for attr in (
            "thermal_conductivity",
            "volumetric_heat_capacity",
            "dynamic_viscosity",
            "density",
            "prandtl",
        ):
            value = getattr(self, attr)
            if value <= 0.0:
                raise ValueError(
                    f"{attr} of coolant {self.name!r} must be positive, got {value}"
                )

    @property
    def specific_heat(self) -> float:
        """Specific heat capacity ``c_p`` in J/(kg.K)."""
        return self.volumetric_heat_capacity / self.density

    @property
    def kinematic_viscosity(self) -> float:
        """Kinematic viscosity ``nu = mu / rho`` in m^2/s."""
        return self.dynamic_viscosity / self.density


# --- Canonical materials -------------------------------------------------

SILICON = SolidMaterial(
    name="silicon",
    thermal_conductivity=130.0,  # W/(m.K), Table I
    volumetric_heat_capacity=1.628e6,  # J/(m^3.K)
)

SILICON_DIOXIDE = SolidMaterial(
    name="silicon dioxide",
    thermal_conductivity=1.4,
    volumetric_heat_capacity=1.65e6,
)

COPPER = SolidMaterial(
    name="copper",
    thermal_conductivity=400.0,
    volumetric_heat_capacity=3.45e6,
)

BEOL = SolidMaterial(
    name="back-end-of-line (Cu/low-k stack)",
    thermal_conductivity=2.25,
    volumetric_heat_capacity=2.175e6,
)

WATER = Coolant(
    name="water",
    thermal_conductivity=0.6,
    volumetric_heat_capacity=4.17e6,  # Table I
    dynamic_viscosity=8.9e-4,
    density=998.0,
    prandtl=6.2,
)

MATERIAL_LIBRARY: Dict[str, SolidMaterial] = {
    material.name: material
    for material in (SILICON, SILICON_DIOXIDE, COPPER, BEOL)
}

COOLANT_LIBRARY: Dict[str, Coolant] = {WATER.name: WATER}


def ml_per_min_to_m3_per_s(ml_per_min: float) -> float:
    """Convert a flow rate from ml/min (as quoted in Table I) to m^3/s."""
    return ml_per_min * 1e-6 / 60.0


def m3_per_s_to_ml_per_min(m3_per_s: float) -> float:
    """Convert a flow rate from m^3/s back to ml/min for reporting."""
    return m3_per_s * 60.0 / 1e-6


@dataclass(frozen=True)
class PaperParameters:
    """The system parameters of Table I of the paper.

    The defaults reproduce Table I exactly.  Instances are immutable; use
    :meth:`with_overrides` to derive a modified configuration (for example
    for the ablation benchmarks that sweep the flow rate or the pressure
    limit).

    Attributes
    ----------
    silicon:
        Solid material of the dies and channel walls (k_Si = 130 W/m.K).
    coolant:
        The coolant (water, c_v = 4.17e6 J/m^3.K).
    channel_pitch:
        ``W`` -- the lateral pitch of one channel cell in meters (100 um).
    silicon_height:
        ``H_Si`` -- silicon slab height above and below the cavity (50 um).
    channel_height:
        ``H_C`` -- microchannel height (100 um).
    flow_rate_per_channel:
        ``V_dot`` -- volumetric flow rate per channel in m^3/s
        (4.8 ml/min/channel in Table I).
    inlet_temperature:
        ``T_C,in`` -- coolant inlet temperature in Kelvin (300 K).
    max_pressure_drop:
        ``dP_max`` -- maximum allowed pressure drop in Pa (10e5 Pa).
    min_channel_width:
        ``w_Cmin`` in meters (10 um).
    max_channel_width:
        ``w_Cmax`` in meters (50 um).
    channel_length:
        ``d`` -- channel length from inlet to outlet in meters.  The single
        channel test structures of the paper use d = 1 cm.
    """

    silicon: SolidMaterial = SILICON
    coolant: Coolant = WATER
    channel_pitch: float = 100e-6
    silicon_height: float = 50e-6
    channel_height: float = 100e-6
    flow_rate_per_channel: float = field(
        default_factory=lambda: ml_per_min_to_m3_per_s(4.8)
    )
    inlet_temperature: float = 300.0
    max_pressure_drop: float = 10e5
    min_channel_width: float = 10e-6
    max_channel_width: float = 50e-6
    channel_length: float = 1e-2

    def __post_init__(self) -> None:
        positive = (
            "channel_pitch",
            "silicon_height",
            "channel_height",
            "flow_rate_per_channel",
            "inlet_temperature",
            "max_pressure_drop",
            "min_channel_width",
            "max_channel_width",
            "channel_length",
        )
        for attr in positive:
            value = getattr(self, attr)
            if value <= 0.0:
                raise ValueError(f"{attr} must be positive, got {value}")
        if self.min_channel_width >= self.max_channel_width:
            raise ValueError(
                "min_channel_width must be strictly smaller than max_channel_width"
            )
        if self.max_channel_width >= self.channel_pitch:
            raise ValueError(
                "max_channel_width must leave a solid wall: it must be smaller "
                "than the channel pitch W"
            )

    def with_overrides(self, **kwargs) -> "PaperParameters":
        """Return a copy with the given attributes replaced."""
        return replace(self, **kwargs)

    @property
    def flow_rate_ml_per_min(self) -> float:
        """Per-channel flow rate expressed in ml/min (for reporting)."""
        return m3_per_s_to_ml_per_min(self.flow_rate_per_channel)

    def as_table(self) -> Dict[str, float]:
        """Return the Table I rows as a plain dictionary (for reporting)."""
        return {
            "k_Si [W/m.K]": self.silicon.thermal_conductivity,
            "W [um]": self.channel_pitch * 1e6,
            "H_Si [um]": self.silicon_height * 1e6,
            "H_C [um]": self.channel_height * 1e6,
            "c_v [J/m^3.K]": self.coolant.volumetric_heat_capacity,
            "V_dot [ml/min/channel]": self.flow_rate_ml_per_min,
            "T_C,in [K]": self.inlet_temperature,
            "dP_max [Pa]": self.max_pressure_drop,
            "w_Cmin [um]": self.min_channel_width * 1e6,
            "w_Cmax [um]": self.max_channel_width * 1e6,
        }


#: Module-level immutable default configuration (Table I).
TABLE_I = PaperParameters()


# --- Temperature-dependent coolant models ---------------------------------


ArrayLike = Union[float, np.ndarray]


def _polynomial(value: ArrayLike, coefficients: Tuple[float, ...]) -> ArrayLike:
    """Evaluate ``sum(c_i * value**i)`` by Horner's rule.

    Coefficients are in ascending order of power.  Kept local (rather than
    importing :func:`repro.thermal.correlations._polynomial`) so the
    property library stays import-leaf.
    """
    accumulator = np.full_like(np.asarray(value, dtype=float), coefficients[-1])
    for coefficient in reversed(coefficients[:-1]):
        accumulator = accumulator * value + coefficient
    return accumulator


@dataclass(frozen=True)
class CoolantState:
    """Coolant properties evaluated at a film-temperature field.

    Duck-types :class:`Coolant` -- every field may be a per-cell array, so
    the Shah-London correlation helpers in
    :mod:`repro.thermal.correlations` broadcast elementwise through it.
    No positivity validation runs here (arrays are produced by a clamped
    :class:`CoolantModel`, which guarantees positive values over its
    validity range).
    """

    name: str
    thermal_conductivity: ArrayLike
    volumetric_heat_capacity: ArrayLike
    dynamic_viscosity: ArrayLike
    density: ArrayLike
    prandtl: ArrayLike

    @property
    def specific_heat(self) -> ArrayLike:
        """Specific heat capacity ``c_p`` in J/(kg.K)."""
        return self.volumetric_heat_capacity / self.density

    @property
    def kinematic_viscosity(self) -> ArrayLike:
        """Kinematic viscosity ``nu = mu / rho`` in m^2/s."""
        return self.dynamic_viscosity / self.density


#: Polynomial fits of liquid-water properties versus absolute temperature
#: (ascending coefficient order; COMSOL-style piecewise fits, single-branch
#: over the liquid range).  Validity: ~275--370 K at atmospheric pressure.
WATER_MU_COEFFICIENTS: Tuple[float, ...] = (
    1.3799566804,
    -0.021224019151,
    1.3604562827e-4,
    -4.6454090319e-7,
    8.9042735735e-10,
    -9.0790692686e-13,
    3.8457331488e-16,
)
WATER_K_COEFFICIENTS: Tuple[float, ...] = (
    -0.869083936,
    0.00894880345,
    -1.58366345e-5,
    7.97543259e-9,
)
WATER_RHO_COEFFICIENTS: Tuple[float, ...] = (
    838.466135,
    1.40050603,
    -0.0030112376,
    3.71822313e-7,
)
WATER_CP_COEFFICIENTS: Tuple[float, ...] = (
    12010.1471,
    -80.4072879,
    0.309866854,
    -5.38186884e-4,
    3.62536437e-7,
)


@dataclass(frozen=True)
class CoolantModel:
    """A coolant whose properties may depend on the bulk temperature.

    ``mode="constant"`` reproduces the paper's assumption 2 bit-identically:
    :meth:`film` returns the ``base`` :class:`Coolant` object itself, so a
    constant-mode solve evaluates exactly the code path (and floating-point
    stream) it evaluated before this class existed.  ``mode="polynomial"``
    evaluates the fitted property polynomials at the (clamped) film
    temperature and returns an array-valued :class:`CoolantState`.

    Attributes
    ----------
    name:
        Registry name (``"constant"``, ``"water"``).
    mode:
        ``"constant"`` or ``"polynomial"``.
    base:
        The constant-property coolant used for ``mode="constant"``, for
        the initial (first Picard iterate) solve, and as the fallback
        when the outer iteration diverges.
    t_min / t_max:
        Validity range of the fits in Kelvin; film temperatures are
        clamped into it before evaluation (liquid single phase only).
    mu/k/rho/cp_coefficients:
        Ascending polynomial coefficients of each property fit.
    """

    name: str
    mode: str = "constant"
    base: Coolant = WATER
    t_min: float = 275.0
    t_max: float = 370.0
    mu_coefficients: Tuple[float, ...] = ()
    k_coefficients: Tuple[float, ...] = ()
    rho_coefficients: Tuple[float, ...] = ()
    cp_coefficients: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in ("constant", "polynomial"):
            raise ValueError(
                f"coolant model mode must be 'constant' or 'polynomial', "
                f"got {self.mode!r}"
            )
        if self.t_min >= self.t_max:
            raise ValueError("t_min must be strictly smaller than t_max")
        if self.mode == "polynomial":
            for attr in (
                "mu_coefficients",
                "k_coefficients",
                "rho_coefficients",
                "cp_coefficients",
            ):
                if not getattr(self, attr):
                    raise ValueError(
                        f"polynomial coolant model {self.name!r} needs "
                        f"non-empty {attr}"
                    )

    @property
    def is_constant(self) -> bool:
        return self.mode == "constant"

    def clamp(self, temperature: ArrayLike) -> ArrayLike:
        """Clamp a temperature field into the fit's validity range."""
        return np.clip(np.asarray(temperature, dtype=float), self.t_min, self.t_max)

    def mu(self, temperature: ArrayLike) -> ArrayLike:
        """Dynamic viscosity ``mu(T)`` in Pa.s."""
        if self.is_constant:
            return np.full_like(
                np.asarray(temperature, dtype=float), self.base.dynamic_viscosity
            )
        return _polynomial(self.clamp(temperature), self.mu_coefficients)

    def k_f(self, temperature: ArrayLike) -> ArrayLike:
        """Thermal conductivity ``k_f(T)`` in W/(m.K)."""
        if self.is_constant:
            return np.full_like(
                np.asarray(temperature, dtype=float), self.base.thermal_conductivity
            )
        return _polynomial(self.clamp(temperature), self.k_coefficients)

    def rho(self, temperature: ArrayLike) -> ArrayLike:
        """Mass density ``rho(T)`` in kg/m^3."""
        if self.is_constant:
            return np.full_like(
                np.asarray(temperature, dtype=float), self.base.density
            )
        return _polynomial(self.clamp(temperature), self.rho_coefficients)

    def cp(self, temperature: ArrayLike) -> ArrayLike:
        """Specific heat ``c_p(T)`` in J/(kg.K)."""
        if self.is_constant:
            return np.full_like(
                np.asarray(temperature, dtype=float), self.base.specific_heat
            )
        return _polynomial(self.clamp(temperature), self.cp_coefficients)

    def film(self, temperature: ArrayLike):
        """Coolant properties at a film-temperature field.

        ``mode="constant"`` returns the ``base`` :class:`Coolant` object
        itself (not a copy), so downstream conductance evaluations are
        bit-identical to the constant-property code path.  Polynomial mode
        returns an array-valued :class:`CoolantState`.
        """
        if self.is_constant:
            return self.base
        clamped = self.clamp(temperature)
        mu = _polynomial(clamped, self.mu_coefficients)
        k = _polynomial(clamped, self.k_coefficients)
        rho = _polynomial(clamped, self.rho_coefficients)
        cp = _polynomial(clamped, self.cp_coefficients)
        return CoolantState(
            name=f"{self.name} (film)",
            thermal_conductivity=k,
            volumetric_heat_capacity=rho * cp,
            dynamic_viscosity=mu,
            density=rho,
            prandtl=mu * cp / k,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible representation (round-trips via from_dict)."""
        return {
            "name": self.name,
            "mode": self.mode,
            "base": self.base.name,
            "t_min": self.t_min,
            "t_max": self.t_max,
            "mu_coefficients": list(self.mu_coefficients),
            "k_coefficients": list(self.k_coefficients),
            "rho_coefficients": list(self.rho_coefficients),
            "cp_coefficients": list(self.cp_coefficients),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CoolantModel":
        base = COOLANT_LIBRARY[str(data.get("base", WATER.name))]
        return cls(
            name=str(data["name"]),
            mode=str(data.get("mode", "constant")),
            base=base,
            t_min=float(data.get("t_min", 275.0)),
            t_max=float(data.get("t_max", 370.0)),
            mu_coefficients=tuple(data.get("mu_coefficients", ())),
            k_coefficients=tuple(data.get("k_coefficients", ())),
            rho_coefficients=tuple(data.get("rho_coefficients", ())),
            cp_coefficients=tuple(data.get("cp_coefficients", ())),
        )


#: The default model: the paper's constant-property water (assumption 2).
CONSTANT_COOLANT_MODEL = CoolantModel(name="constant", mode="constant", base=WATER)

#: Temperature-dependent water over the liquid range.
WATER_COOLANT_MODEL = CoolantModel(
    name="water",
    mode="polynomial",
    base=WATER,
    mu_coefficients=WATER_MU_COEFFICIENTS,
    k_coefficients=WATER_K_COEFFICIENTS,
    rho_coefficients=WATER_RHO_COEFFICIENTS,
    cp_coefficients=WATER_CP_COEFFICIENTS,
)

COOLANT_MODEL_LIBRARY: Dict[str, CoolantModel] = {
    CONSTANT_COOLANT_MODEL.name: CONSTANT_COOLANT_MODEL,
    WATER_COOLANT_MODEL.name: WATER_COOLANT_MODEL,
}


def get_coolant_model(name: str) -> CoolantModel:
    """Look up a registered coolant model by name."""
    try:
        return COOLANT_MODEL_LIBRARY[name]
    except KeyError:
        raise ValueError(
            f"unknown coolant model {name!r}; "
            f"available: {sorted(COOLANT_MODEL_LIBRARY)}"
        ) from None
