"""Per-unit-length thermal network parameters of the analytical model.

These are the electrical-analogy circuit parameters of Eq. (2) of the paper,
evaluated for a given channel cross-section:

* ``g_l``      -- longitudinal conduction inside one active silicon layer,
                  parallel to the channel (units W.m).
* ``g_w(z)``   -- vertical conduction between the two active layers through
                  the solid silicon side walls of the channel (W/(m.K)).
* ``g_v_si``   -- vertical conduction from an active layer to the wetted
                  channel wall through the silicon slab (W/(m.K)).
* ``h_hat(z)`` -- convective conductance from the channel walls into the
                  coolant bulk, per unit length (W/(m.K)).
* ``g_v(z)``   -- series combination of ``g_v_si`` and ``h_hat`` -- the total
                  active-layer-to-coolant conductance per unit length.
* ``capacity_rate`` -- the coolant capacity rate ``c_v * V_dot`` (W/K) that
                  advects heat downstream.

The paper's Eq. (2) swaps the textual labels of ``g_w`` and ``g_v_si``
relative to its own ``g_v`` definition; we use the physically consistent
reading documented in DESIGN.md (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from . import correlations
from .geometry import ChannelGeometry, TestStructure
from .properties import Coolant, SolidMaterial

__all__ = [
    "ElementConductances",
    "longitudinal_conductance",
    "sidewall_conductance",
    "slab_conductance",
    "convective_conductance",
    "layer_to_coolant_conductance",
    "capacity_rate",
    "evaluate_conductances",
    "lateral_conductance",
]

ArrayLike = Union[float, np.ndarray]


def longitudinal_conductance(geometry: ChannelGeometry, silicon: SolidMaterial) -> float:
    """``g_l = k_Si * W * H_Si`` -- longitudinal conduction, in W.m.

    The heat flowing along one active layer obeys ``q = -g_l * dT/dz``.
    """
    return silicon.thermal_conductivity * geometry.pitch * geometry.silicon_height


def sidewall_conductance(
    geometry: ChannelGeometry, silicon: SolidMaterial, channel_width: ArrayLike
) -> ArrayLike:
    """``g_w(z) = k_Si (W - w_C) / (2 H_Si + H_C)`` in W/(m.K).

    Conduction between the two active layers through the solid side walls
    left beside the channel; narrower channels leave wider walls and couple
    the two layers more strongly.
    """
    wall = geometry.pitch - np.asarray(channel_width, dtype=float)
    path = 2.0 * geometry.silicon_height + geometry.channel_height
    return silicon.thermal_conductivity * wall / path


def slab_conductance(geometry: ChannelGeometry, silicon: SolidMaterial) -> float:
    """``g_v,Si = k_Si W / H_Si`` in W/(m.K).

    Conduction from the active layer through the silicon slab of height
    ``H_Si`` down to the wetted channel wall, over the full cell pitch.
    """
    return (
        silicon.thermal_conductivity * geometry.pitch / geometry.silicon_height
    )


def convective_conductance(
    geometry: ChannelGeometry,
    coolant: Coolant,
    channel_width: ArrayLike,
    flow_rate: float,
    distance: ArrayLike = 0.0,
    developing: bool = False,
) -> ArrayLike:
    """``h_hat(z)`` -- wall-to-coolant convective conductance per unit length.

    The convective exchange area of one active layer, per unit channel
    length, is half of the wetted perimeter: the channel floor (or ceiling)
    of width ``w_C`` plus one channel side wall of height ``H_C``.  The heat
    transfer coefficient comes from the Shah & London correlations
    (:mod:`repro.thermal.correlations`).
    """
    width = np.asarray(channel_width, dtype=float)
    z = np.asarray(distance, dtype=float)
    width_b, z_b = np.broadcast_arrays(width, z)
    h = correlations.heat_transfer_coefficient(
        width_b,
        geometry.channel_height,
        coolant,
        flow_rate=flow_rate,
        distance=z_b,
        developing=developing,
    )
    perimeter = width_b + geometry.channel_height
    result = np.asarray(h, dtype=float) * perimeter
    if np.isscalar(channel_width) and np.isscalar(distance):
        return float(result.ravel()[0])
    return result


def layer_to_coolant_conductance(
    geometry: ChannelGeometry,
    silicon: SolidMaterial,
    coolant: Coolant,
    channel_width: ArrayLike,
    flow_rate: float,
    distance: ArrayLike = 0.0,
    developing: bool = False,
) -> ArrayLike:
    """``g_v(z) = (g_v,Si^-1 + h_hat(z)^-1)^-1`` in W/(m.K)."""
    g_slab = slab_conductance(geometry, silicon)
    h_hat = convective_conductance(
        geometry, coolant, channel_width, flow_rate, distance, developing
    )
    return 1.0 / (1.0 / g_slab + 1.0 / np.asarray(h_hat, dtype=float))


def capacity_rate(coolant: Coolant, flow_rate: float) -> float:
    """Coolant capacity rate ``c_v * V_dot`` in W/K."""
    return coolant.volumetric_heat_capacity * flow_rate


def lateral_conductance(
    geometry: ChannelGeometry, silicon: SolidMaterial, lane_pitch: float = None
) -> float:
    """Lane-to-lane lateral conduction in one active layer, W/(m.K).

    Adjacent channel lanes are coupled laterally (y direction) through the
    active silicon layer: a slab of height ``H_Si`` and unit length along z,
    over a center-to-center distance of one lane pitch.
    """
    pitch = geometry.pitch if lane_pitch is None else lane_pitch
    if pitch <= 0.0:
        raise ValueError("lane pitch must be positive")
    return silicon.thermal_conductivity * geometry.silicon_height / pitch


@dataclass(frozen=True)
class ElementConductances:
    """All per-unit-length parameters evaluated at one position ``z``."""

    g_longitudinal: float
    g_sidewall: float
    g_slab: float
    h_convective: float
    g_layer_to_coolant: float
    capacity_rate: float


def evaluate_conductances(
    structure: TestStructure, z: float
) -> ElementConductances:
    """Evaluate every Eq. (2) parameter of a test structure at position ``z``.

    Convenience wrapper used by tests and reports; the solvers evaluate the
    vectorized functions above directly for speed.
    """
    width = float(np.atleast_1d(structure.width_profile(z))[0])
    geometry = structure.geometry
    silicon = structure.silicon
    coolant = structure.coolant
    h_hat = convective_conductance(
        geometry,
        coolant,
        width,
        structure.flow_rate,
        z,
        structure.developing_flow,
    )
    g_slab = slab_conductance(geometry, silicon)
    return ElementConductances(
        g_longitudinal=longitudinal_conductance(geometry, silicon),
        g_sidewall=float(sidewall_conductance(geometry, silicon, width)),
        g_slab=g_slab,
        h_convective=float(h_hat),
        g_layer_to_coolant=float(1.0 / (1.0 / g_slab + 1.0 / h_hat)),
        capacity_rate=capacity_rate(coolant, structure.flow_rate),
    )
