"""Finite-difference steady-state solver for multi-channel cavities.

This is the numerical workhorse used by the optimizer and by all
multi-channel experiments.  It discretizes the same per-unit-length thermal
network as the analytical state-space model (conduction along the active
layers, layer-to-coolant convection, inter-layer sidewall conduction,
coolant advection) on a uniform z-grid, adds lateral conduction between
adjacent channel lanes, and solves the resulting sparse linear system.

For a single lane the solver reproduces the analytical BVP solution (the
tests check agreement with :func:`repro.thermal.bvp.solve_superposition`),
but it is much faster for cavities with many lanes because all lanes are
solved simultaneously in one sparse solve instead of a high-dimensional
shooting problem.

Discretization summary (lane ``j``, layer ``i``, grid point ``k``):

* silicon energy balance (adiabatic ends -> zero-flux Neumann boundaries)::

      g_l (T[i,j,k-1] - 2 T[i,j,k] + T[i,j,k+1]) / dz^2
        + q_hat[i,j](z_k)
        - g_v[j](z_k) (T[i,j,k] - TC[j,k])
        - g_w[j](z_k) (T[i,j,k] - T[i',j,k])
        - g_lat (2 T[i,j,k] - T[i,j-1,k] - T[i,j+1,k]) = 0

* coolant advection (first-order upwind, inlet Dirichlet)::

      c_v V_dot (TC[j,k] - TC[j,k-1]) / dz
        = sum_i g_v[j](z_k) (T[i,j,k] - TC[j,k])

Channel clustering scales every per-unit-length parameter of a lane by the
number of physical channels it represents, exactly as suggested at the end
of Sec. III of the paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve

from . import conductances
from .geometry import MultiChannelStructure, TestStructure
from .solution import ThermalSolution

__all__ = ["solve_finite_difference", "solve_structure"]


def _lane_parameters(
    structure: MultiChannelStructure,
    lane_index: int,
    lane: TestStructure,
    z_grid: np.ndarray,
):
    """Per-unit-length parameters of one lane evaluated on the grid."""
    widths = np.atleast_1d(lane.width_profile(z_grid))
    g_v = conductances.layer_to_coolant_conductance(
        lane.geometry,
        lane.silicon,
        lane.coolant,
        widths,
        lane.flow_rate,
        z_grid,
        lane.developing_flow,
    )
    g_w = conductances.sidewall_conductance(lane.geometry, lane.silicon, widths)
    q_top = np.atleast_1d(lane.heat_top(z_grid))
    q_bottom = np.atleast_1d(lane.heat_bottom(z_grid))
    g_l = conductances.longitudinal_conductance(lane.geometry, lane.silicon)
    cap = conductances.capacity_rate(lane.coolant, lane.flow_rate)
    scale = float(structure.cluster_size_of_lane(lane_index))
    return (
        np.asarray(g_v, dtype=float) * scale,
        np.asarray(g_w, dtype=float) * scale,
        q_top,
        q_bottom,
        g_l * scale,
        cap * scale,
    )


def solve_finite_difference(
    structure: MultiChannelStructure,
    n_points: int = 201,
    lane_pitch: Optional[float] = None,
) -> ThermalSolution:
    """Solve a multi-channel cavity and return a :class:`ThermalSolution`.

    Parameters
    ----------
    structure:
        The cavity description (lanes, width profiles, heat inputs, flow).
        Heat inputs of each lane must already represent the full power of
        the physical channels merged into that lane when clustering is used.
    n_points:
        Number of grid points along the channel (>= 3).
    lane_pitch:
        Center-to-center distance between adjacent modeled lanes, used for
        the lateral conduction term.  Defaults to ``cluster_size * W``.
    """
    if n_points < 3:
        raise ValueError("n_points must be at least 3")
    n_lanes = structure.n_lanes
    z_grid = np.linspace(0.0, structure.length, n_points)
    dz = z_grid[1] - z_grid[0]

    if lane_pitch is None:
        lane_pitch = structure.cluster_size * structure.geometry.pitch
    if structure.lateral_coupling and n_lanes > 1:
        # Conduction between the centers of two adjacent lane bands: the
        # cross-section is one silicon slab of height H_Si per active layer
        # regardless of how many channels the band clusters, so the
        # conductance only depends on the band pitch.
        g_lat = conductances.lateral_conductance(
            structure.geometry, structure.silicon, lane_pitch
        )
    else:
        g_lat = 0.0

    lane_params = [
        _lane_parameters(structure, index, lane, z_grid)
        for index, lane in enumerate(structure.lanes)
    ]

    # Unknown ordering: variable-major, then lane, then grid point.
    # variable 0 = top-layer temperature, 1 = bottom-layer temperature,
    # variable 2 = coolant temperature.
    def index(variable: int, lane: int, point: int) -> int:
        return (variable * n_lanes + lane) * n_points + point

    n_unknowns = 3 * n_lanes * n_points
    rows, cols, values = [], [], []
    rhs = np.zeros(n_unknowns)

    def add(row: int, col: int, value: float) -> None:
        rows.append(row)
        cols.append(col)
        values.append(value)

    for lane_idx in range(n_lanes):
        g_v, g_w, q_top, q_bottom, g_l, cap = lane_params[lane_idx]
        heat = (q_top, q_bottom)
        conduction = g_l / dz**2
        for layer in range(2):
            other_layer = 1 - layer
            for k in range(n_points):
                row = index(layer, lane_idx, k)
                diagonal = 0.0
                # Longitudinal conduction with zero-flux (adiabatic) ends.
                if k > 0:
                    add(row, index(layer, lane_idx, k - 1), conduction)
                    diagonal -= conduction
                if k < n_points - 1:
                    add(row, index(layer, lane_idx, k + 1), conduction)
                    diagonal -= conduction
                # Layer to coolant.
                diagonal -= g_v[k]
                add(row, index(2, lane_idx, k), g_v[k])
                # Inter-layer sidewall conduction.
                diagonal -= g_w[k]
                add(row, index(other_layer, lane_idx, k), g_w[k])
                # Lateral conduction to the neighbouring lanes.
                if g_lat > 0.0:
                    if lane_idx > 0:
                        add(row, index(layer, lane_idx - 1, k), g_lat)
                        diagonal -= g_lat
                    if lane_idx < n_lanes - 1:
                        add(row, index(layer, lane_idx + 1, k), g_lat)
                        diagonal -= g_lat
                add(row, row, diagonal)
                rhs[row] = -heat[layer][k]

        # Coolant advection, first-order upwind.  For a reversed lane the
        # coolant enters at z = d and flows toward z = 0, so the inlet
        # Dirichlet condition and the upwind neighbour are mirrored.
        reversed_flow = structure.lanes[lane_idx].flow_reversed
        inlet_point = n_points - 1 if reversed_flow else 0
        upstream_offset = 1 if reversed_flow else -1
        for k in range(n_points):
            row = index(2, lane_idx, k)
            if k == inlet_point:
                add(row, row, 1.0)
                rhs[row] = structure.inlet_temperature
                continue
            advection = cap / dz
            add(row, row, -(advection + 2.0 * g_v[k]))
            add(row, index(2, lane_idx, k + upstream_offset), advection)
            add(row, index(0, lane_idx, k), g_v[k])
            add(row, index(1, lane_idx, k), g_v[k])
            rhs[row] = 0.0

    matrix = sparse.csr_matrix(
        (values, (rows, cols)), shape=(n_unknowns, n_unknowns)
    )
    solution_vector = spsolve(matrix, rhs)
    if not np.all(np.isfinite(solution_vector)):
        raise RuntimeError("finite-difference solve produced non-finite values")

    temperatures = np.empty((2, n_lanes, n_points))
    coolant = np.empty((n_lanes, n_points))
    for lane_idx in range(n_lanes):
        for layer in range(2):
            start = index(layer, lane_idx, 0)
            temperatures[layer, lane_idx, :] = solution_vector[
                start : start + n_points
            ]
        start = index(2, lane_idx, 0)
        coolant[lane_idx, :] = solution_vector[start : start + n_points]

    # Longitudinal heat flows recovered from the temperature field.
    heat_flows = np.empty_like(temperatures)
    for lane_idx in range(n_lanes):
        g_l = lane_params[lane_idx][4]
        for layer in range(2):
            gradient = np.gradient(temperatures[layer, lane_idx], z_grid)
            heat_flows[layer, lane_idx] = -g_l * gradient

    return ThermalSolution(
        z=z_grid,
        temperatures=temperatures,
        heat_flows=heat_flows,
        coolant_temperatures=coolant,
        inlet_temperature=structure.inlet_temperature,
        metadata={
            "solver": "finite-difference",
            "n_points": n_points,
            "n_lanes": n_lanes,
            "cluster_size": structure.cluster_size,
            "lateral_conductance": float(g_lat),
        },
    )


def solve_structure(
    structure,
    n_points: int = 201,
    **kwargs,
) -> ThermalSolution:
    """Solve either a single-channel or a multi-channel structure.

    Dispatches :class:`~repro.thermal.geometry.TestStructure` instances to
    the finite-difference solver by wrapping them in a one-lane cavity, so
    that callers (notably the optimizer) do not need to care which kind of
    structure they are optimizing.
    """
    if isinstance(structure, TestStructure):
        structure = MultiChannelStructure.single(structure)
    if not isinstance(structure, MultiChannelStructure):
        raise TypeError(
            "solve_structure expects a TestStructure or MultiChannelStructure"
        )
    return solve_finite_difference(structure, n_points=n_points, **kwargs)
