"""Finite-difference steady-state solver for multi-channel cavities.

This is the numerical workhorse used by the optimizer and by all
multi-channel experiments.  It discretizes the same per-unit-length thermal
network as the analytical state-space model (conduction along the active
layers, layer-to-coolant convection, inter-layer sidewall conduction,
coolant advection) on a uniform z-grid, adds lateral conduction between
adjacent channel lanes, and solves the resulting sparse linear system.

For a single lane the solver reproduces the analytical BVP solution (the
tests check agreement with :func:`repro.thermal.bvp.solve_superposition`),
but it is much faster for cavities with many lanes because all lanes are
solved simultaneously in one sparse solve instead of a high-dimensional
shooting problem.

Discretization summary (lane ``j``, layer ``i``, grid point ``k``):

* silicon energy balance (adiabatic ends -> zero-flux Neumann boundaries)::

      g_l (T[i,j,k-1] - 2 T[i,j,k] + T[i,j,k+1]) / dz^2
        + q_hat[i,j](z_k)
        - g_v[j](z_k) (T[i,j,k] - TC[j,k])
        - g_w[j](z_k) (T[i,j,k] - T[i',j,k])
        - g_lat (2 T[i,j,k] - T[i,j-1,k] - T[i,j+1,k]) = 0

* coolant advection (first-order upwind, inlet Dirichlet)::

      c_v V_dot (TC[j,k] - TC[j,k-1]) / dz
        = sum_i g_v[j](z_k) (T[i,j,k] - TC[j,k])

Channel clustering scales every per-unit-length parameter of a lane by the
number of physical channels it represents, exactly as suggested at the end
of Sec. III of the paper.

The sparse system is produced by :mod:`repro.thermal.assembly` (vectorized
triplet construction over a cached per-shape sparsity pattern) and solved by
a pluggable backend from :mod:`repro.thermal.backends` (``sparse-lu`` with
factorization reuse, ``sparse-iterative``, ``dense``, or ``auto``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Union

import numpy as np

from . import assembly
from .backends import SolverBackend, resolve_backend
from .geometry import MultiChannelStructure, TestStructure
from .properties import CoolantModel
from .solution import ThermalSolution

__all__ = ["solve_finite_difference", "solve_structure"]


def solve_finite_difference(
    structure: MultiChannelStructure,
    n_points: int = 201,
    lane_pitch: Optional[float] = None,
    backend: Union[None, str, SolverBackend] = None,
    assembly_mode: str = "vectorized",
    coolant_model: Optional[CoolantModel] = None,
    picard=None,
) -> ThermalSolution:
    """Solve a multi-channel cavity and return a :class:`ThermalSolution`.

    Parameters
    ----------
    structure:
        The cavity description (lanes, width profiles, heat inputs, flow).
        Heat inputs of each lane must already represent the full power of
        the physical channels merged into that lane when clustering is used.
    n_points:
        Number of grid points along the channel (>= 3).
    lane_pitch:
        Center-to-center distance between adjacent modeled lanes, used for
        the lateral conduction term.  Defaults to ``cluster_size * W``.
    backend:
        Linear-solver backend: a registry name from
        :mod:`repro.thermal.backends` (``"auto"``, ``"sparse-lu"``,
        ``"sparse-iterative"``, ``"dense"``), a backend instance, or None
        for the default (``"auto"``).
    assembly_mode:
        ``"vectorized"`` (default) or ``"loop"`` (the reference Python-loop
        assembly, retained for equivalence testing and benchmarks).
    coolant_model:
        Optional :class:`~repro.thermal.properties.CoolantModel`.  None or
        a constant-mode model leaves this function bit-identical to the
        constant-property path; a polynomial model wraps the solve in a
        Picard outer iteration (:mod:`repro.core.picard`) that refreshes
        the layer-to-coolant conductances from film properties at the bulk
        coolant temperatures.  Requires the vectorized assembly.
    picard:
        Optional :class:`~repro.core.picard.PicardSettings` convergence
        knobs (defaults apply when omitted).  Ignored for constant models.
    """
    if n_points < 3:
        raise ValueError("n_points must be at least 3")
    temperature_dependent = coolant_model is not None and not coolant_model.is_constant
    if temperature_dependent and assembly_mode != "vectorized":
        raise ValueError(
            "temperature-dependent coolant models require the vectorized "
            "assembly (the Picard refresh reuses the cached sparsity pattern)"
        )
    if assembly_mode == "vectorized":
        system = assembly.assemble_system(structure, n_points, lane_pitch)
    elif assembly_mode == "loop":
        system = assembly.assemble_system_loop(structure, n_points, lane_pitch)
    else:
        raise ValueError("assembly_mode must be 'vectorized' or 'loop'")

    solver = resolve_backend(backend)
    solution_vector = solver.solve(system.matrix, system.rhs, system.pattern_token)
    if not np.all(np.isfinite(solution_vector)):
        raise RuntimeError("finite-difference solve produced non-finite values")

    n_lanes = structure.n_lanes
    picard_info = None
    if temperature_dependent:
        from ..core.picard import (
            PicardSettings,
            picard_iterate,
            picard_metadata,
        )

        settings = picard if picard is not None else PicardSettings()
        pattern = system.pattern
        dz = system.z_grid[1] - system.z_grid[0]

        def refresh(coolant_field: np.ndarray):
            # Only the layer-to-coolant conductances g_v depend on the film
            # properties (h = Nu k_f(T) / D_h); the capacity rate keeps the
            # base volumetric heat capacity, so the rhs and the sparsity
            # mask are unchanged and the refresh reuses the cached pattern.
            g_v = np.empty_like(system.params.g_v)
            for lane_index in range(n_lanes):
                film = coolant_model.film(coolant_field[lane_index])
                g_v[lane_index], _ = assembly.lane_conductance_rows(
                    structure, system.z_grid, lane_index, coolant=film
                )
            params = replace(system.params, g_v=g_v)
            values = pattern.values(params, system.lateral_conductance, dz)
            vector = solver.solve(
                pattern.matrix(values), system.rhs, pattern.token
            )
            return vector, vector.reshape(3, n_lanes, n_points)[2]

        outcome = picard_iterate(
            solution_vector,
            solution_vector.reshape(3, n_lanes, n_points)[2],
            refresh,
            settings,
        )
        solution_vector = outcome.solution
        picard_info = picard_metadata(coolant_model.name, settings, outcome)

    fields = solution_vector.reshape(3, n_lanes, n_points)
    temperatures = fields[:2].copy()
    coolant = fields[2].copy()

    # Longitudinal heat flows recovered from the temperature field.
    gradient = np.gradient(temperatures, system.z_grid, axis=2)
    heat_flows = -system.params.g_l[None, :, None] * gradient

    metadata = {
        "solver": "finite-difference",
        "n_points": n_points,
        "n_lanes": n_lanes,
        "cluster_size": structure.cluster_size,
        "lateral_conductance": float(system.lateral_conductance),
        "backend": solver.name,
        "assembly": assembly_mode,
    }
    if picard_info is not None:
        metadata["picard"] = picard_info
    return ThermalSolution(
        z=system.z_grid,
        temperatures=temperatures,
        heat_flows=heat_flows,
        coolant_temperatures=coolant,
        inlet_temperature=structure.inlet_temperature,
        metadata=metadata,
    )


def solve_structure(
    structure,
    n_points: int = 201,
    **kwargs,
) -> ThermalSolution:
    """Solve either a single-channel or a multi-channel structure.

    Dispatches :class:`~repro.thermal.geometry.TestStructure` instances to
    the finite-difference solver by wrapping them in a one-lane cavity, so
    that callers (notably the optimizer) do not need to care which kind of
    structure they are optimizing.  Keyword arguments (``backend``,
    ``lane_pitch``, ...) are forwarded to :func:`solve_finite_difference`.
    """
    if isinstance(structure, TestStructure):
        structure = MultiChannelStructure.single(structure)
    if not isinstance(structure, MultiChannelStructure):
        raise TypeError(
            "solve_structure expects a TestStructure or MultiChannelStructure"
        )
    return solve_finite_difference(structure, n_points=n_points, **kwargs)
