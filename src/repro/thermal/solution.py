"""Solution objects returned by the thermal solvers.

A :class:`ThermalSolution` packages the steady-state fields produced by any
of the solvers (analytical BVP, superposition shooting or the
finite-difference workhorse) on a common z-grid:

* silicon temperatures ``T[layer, lane, k]`` (Kelvin),
* longitudinal heat flows ``q[layer, lane, k]`` (W),
* coolant temperatures ``T_coolant[lane, k]`` (Kelvin),

together with the metrics the paper reports: the thermal gradient
(max - min temperature over the whole structure), the per-node gradient
profiles ``dT/dz`` and the optimal-control cost ``J = \\int ||T'||^2 dz``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from .._compat import trapezoid

__all__ = ["ThermalSolution"]


@dataclass
class ThermalSolution:
    """Steady-state thermal fields of a microchannel-cooled structure.

    Attributes
    ----------
    z:
        Grid of positions from the inlet, shape ``(n_points,)``, meters.
    temperatures:
        Silicon temperatures in Kelvin, shape ``(n_layers, n_lanes,
        n_points)``.  The paper's single-channel test structure has
        ``n_layers = 2`` and ``n_lanes = 1``.
    heat_flows:
        Longitudinal heat flows ``q_i(z)`` in W, same shape as
        ``temperatures``.
    coolant_temperatures:
        Coolant temperatures in Kelvin, shape ``(n_lanes, n_points)``.
    inlet_temperature:
        Coolant inlet temperature in Kelvin.
    metadata:
        Free-form solver metadata (solver name, grid size, residuals, ...).
    """

    z: np.ndarray
    temperatures: np.ndarray
    heat_flows: np.ndarray
    coolant_temperatures: np.ndarray
    inlet_temperature: float
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.z = np.asarray(self.z, dtype=float)
        self.temperatures = np.asarray(self.temperatures, dtype=float)
        self.heat_flows = np.asarray(self.heat_flows, dtype=float)
        self.coolant_temperatures = np.asarray(
            self.coolant_temperatures, dtype=float
        )
        if self.z.ndim != 1 or self.z.size < 2:
            raise ValueError("z must be a 1-D grid with at least two points")
        if self.temperatures.ndim != 3:
            raise ValueError(
                "temperatures must have shape (n_layers, n_lanes, n_points)"
            )
        if self.temperatures.shape != self.heat_flows.shape:
            raise ValueError("temperatures and heat_flows must have equal shapes")
        if self.coolant_temperatures.shape != (
            self.temperatures.shape[1],
            self.z.size,
        ):
            raise ValueError(
                "coolant_temperatures must have shape (n_lanes, n_points)"
            )
        if self.temperatures.shape[2] != self.z.size:
            raise ValueError("field arrays must match the z grid length")

    # -- basic shape queries -------------------------------------------------

    @property
    def n_layers(self) -> int:
        """Number of active silicon layers."""
        return self.temperatures.shape[0]

    @property
    def n_lanes(self) -> int:
        """Number of modeled channel lanes."""
        return self.temperatures.shape[1]

    @property
    def n_points(self) -> int:
        """Number of grid points along the channel."""
        return self.z.size

    @property
    def length(self) -> float:
        """Channel length covered by the grid, meters."""
        return float(self.z[-1] - self.z[0])

    # -- temperatures ----------------------------------------------------------

    @property
    def peak_temperature(self) -> float:
        """Maximum silicon temperature in Kelvin."""
        return float(np.max(self.temperatures))

    @property
    def min_temperature(self) -> float:
        """Minimum silicon temperature in Kelvin."""
        return float(np.min(self.temperatures))

    @property
    def thermal_gradient(self) -> float:
        """The paper's thermal gradient metric: max - min silicon temperature (K).

        The paper defines the thermal gradient of a design as the difference
        between the maximum and minimum temperatures observed anywhere in
        the IC (Section V-A).
        """
        return self.peak_temperature - self.min_temperature

    @property
    def coolant_outlet_temperature(self) -> float:
        """Highest coolant outlet temperature across lanes (K)."""
        return float(np.max(self.coolant_temperatures[:, -1]))

    @property
    def coolant_temperature_rise(self) -> float:
        """Largest coolant temperature rise from inlet to outlet (K)."""
        return self.coolant_outlet_temperature - self.inlet_temperature

    def temperatures_celsius(self) -> np.ndarray:
        """Silicon temperatures converted to degrees Celsius."""
        return self.temperatures - 273.15

    def temperature_change_from_inlet(self) -> np.ndarray:
        """``T(z) - T(0)`` per layer and lane -- the quantity plotted in Fig. 5."""
        return self.temperatures - self.temperatures[:, :, :1]

    # -- gradients & cost ------------------------------------------------------

    def temperature_gradients(self) -> np.ndarray:
        """``dT/dz`` for every layer and lane, shape like ``temperatures`` (K/m)."""
        return np.gradient(self.temperatures, self.z, axis=2)

    def gradient_norm_squared(self) -> np.ndarray:
        """``||T'(z)||^2`` -- squared Euclidean norm over all nodes, per z point."""
        grads = self.temperature_gradients()
        return np.sum(grads**2, axis=(0, 1))

    @property
    def cost(self) -> float:
        """The paper's optimal-control cost ``J = \\int_0^d ||T'||^2 dz``."""
        return float(trapezoid(self.gradient_norm_squared(), self.z))

    @property
    def heat_flow_cost(self) -> float:
        """The equivalent cost expressed with heat flows, ``\\int ||q||^2 dz``.

        Section IV-A notes that ``||T'||^2`` can be replaced by ``||q||^2``
        since ``q_i = -g_l dT_i/dz``; this property exposes that form.
        """
        return float(trapezoid(np.sum(self.heat_flows**2, axis=(0, 1)), self.z))

    # -- energy bookkeeping ----------------------------------------------------

    def absorbed_power(self, capacity_rate: float) -> float:
        """Power carried away by the coolant, summed over lanes (W).

        ``capacity_rate`` is the per-lane coolant capacity rate ``c_v V_dot``
        in W/K (all lanes are assumed to share the same flow rate, as per
        the paper's assumption 3).
        """
        rises = self.coolant_temperatures[:, -1] - self.coolant_temperatures[:, 0]
        return float(capacity_rate * np.sum(rises))

    # -- extraction helpers -----------------------------------------------------

    def layer_profile(self, layer: int, lane: int = 0) -> np.ndarray:
        """Temperature profile of one layer of one lane (K)."""
        return self.temperatures[layer, lane].copy()

    def lane_maximum(self) -> np.ndarray:
        """Per-lane maximum silicon temperature, shape ``(n_lanes,)`` (K)."""
        return np.max(self.temperatures, axis=(0, 2))

    def as_map(self, layer: int) -> np.ndarray:
        """A (n_lanes, n_points) temperature map of one layer, in Kelvin.

        Lanes are rows (the y direction of the die) and grid points are
        columns (the flow direction z); this is the array rendered by
        :mod:`repro.analysis.maps` for Figs. 1 and 9.
        """
        return self.temperatures[layer].copy()

    def summary(self) -> Dict[str, float]:
        """Key scalar metrics, for reports and experiment tables."""
        return {
            "peak_temperature_K": self.peak_temperature,
            "min_temperature_K": self.min_temperature,
            "thermal_gradient_K": self.thermal_gradient,
            "coolant_rise_K": self.coolant_temperature_rise,
            "cost_J": self.cost,
        }
