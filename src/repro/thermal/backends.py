"""Pluggable linear-solver backends for the finite-difference thermal solver.

The FDM solve path is split in two: :mod:`repro.thermal.assembly` produces
the sparse system and this module solves it.  Backends are selected by name
through a small registry so experiments, benchmarks and the evaluation
engine can swap solvers without touching the assembly:

``sparse-lu`` (default workhorse)
    SuperLU factorization via :func:`scipy.sparse.linalg.splu`.  A small
    LRU of factorizations keyed on the (static) sparsity-pattern token and
    a content hash of the coefficient values lets repeated solves of an
    unchanged matrix reuse the factorization and pay only a triangular
    solve (~30x cheaper at Fig. 8/9 problem sizes).

``sparse-iterative``
    ILU-preconditioned GMRES on a row-equilibrated system, for cavities
    with large lane counts where direct factorization fill grows.  Falls
    back to ``sparse-lu`` whenever the iteration does not reach the direct
    solver's accuracy, so results are always within round-off of the
    direct solve.

``dense``
    LAPACK dense solve, fastest for tiny systems (one lane on a coarse
    grid) where sparse bookkeeping dominates.

``auto``
    Picks ``dense`` below :data:`AutoBackend.dense_cutoff` unknowns and
    ``sparse-lu`` above it.

Custom backends register with :func:`register_backend`; anything exposing
``solve(matrix, rhs, pattern_token=None) -> ndarray`` works.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional, Union

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import LinearOperator, gmres, spilu, splu

__all__ = [
    "AutoBackend",
    "DEFAULT_BACKEND",
    "DenseBackend",
    "SolverBackend",
    "SparseIterativeBackend",
    "SparseLUBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
]

#: Name of the backend used when callers do not specify one.
DEFAULT_BACKEND = "auto"


class SolverBackend:
    """Interface of a linear-solver backend.

    Subclasses implement :meth:`solve`; ``pattern_token`` (when provided by
    the assembly layer) identifies the static sparsity structure of the
    matrix so backends can cache factorizations cheaply.
    """

    #: Registry name of the backend.
    name: str = "abstract"

    def solve(
        self,
        matrix: sparse.spmatrix,
        rhs: np.ndarray,
        pattern_token: Optional[tuple] = None,
    ) -> np.ndarray:
        raise NotImplementedError

    def solve_matrix(
        self,
        matrix: sparse.spmatrix,
        rhs_matrix: np.ndarray,
        pattern_token: Optional[tuple] = None,
    ) -> np.ndarray:
        """Solve one matrix against many right-hand sides at once.

        ``rhs_matrix`` has shape ``(n, k)`` -- one column per right-hand
        side -- and the result has the same shape.  The base implementation
        loops over the columns through :meth:`solve`; direct backends
        override it to hash and look up the factorization once for the
        whole block (the batched transient engine's hot path).  Either way
        each column equals the corresponding single-RHS solve bit for bit.
        """
        rhs_matrix = np.asarray(rhs_matrix)
        if rhs_matrix.ndim != 2:
            raise ValueError(
                f"rhs_matrix must be 2-D (n, k), got shape {rhs_matrix.shape}"
            )
        return np.column_stack(
            [
                self.solve(matrix, rhs_matrix[:, column], pattern_token)
                for column in range(rhs_matrix.shape[1])
            ]
        )

    def solve_transpose(
        self,
        matrix: sparse.spmatrix,
        rhs: np.ndarray,
        pattern_token: Optional[tuple] = None,
    ) -> np.ndarray:
        """Solve ``A^T x = rhs`` (the adjoint system of :meth:`solve`).

        The base implementation materializes the transposed matrix and
        solves it like any other system; direct backends override this to
        reuse the *forward* factorization (SuperLU solves both ``A x = b``
        and ``A^T x = b`` from one decomposition), so an adjoint solve
        after a forward solve of the same matrix costs only a triangular
        solve.  The pattern token is wrapped so transposed structures never
        collide with forward ones in structure-keyed caches.
        """
        token = None if pattern_token is None else ("transpose", pattern_token)
        return self.solve(matrix.T.tocsr(), rhs, token)

    def reset(self) -> None:
        """Drop any cached state (factorizations, counters)."""

    def stats(self) -> Dict[str, object]:
        """Backend-specific counters (empty by default)."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} name={self.name!r}>"


class DenseBackend(SolverBackend):
    """LAPACK dense solve; the fastest option for tiny systems."""

    name = "dense"

    def solve(self, matrix, rhs, pattern_token=None):
        return np.linalg.solve(matrix.toarray(), rhs)

    def solve_transpose(self, matrix, rhs, pattern_token=None):
        return np.linalg.solve(matrix.toarray().T, rhs)

    # solve_matrix keeps the base per-column loop: LAPACK's blocked
    # multi-RHS back-substitution reorders additions, so a 2-D
    # ``np.linalg.solve`` would not be bit-identical to the single-RHS
    # solves this backend otherwise produces.


class SparseLUBackend(SolverBackend):
    """SuperLU direct solve with factorization reuse.

    Factorizations are cached in a bounded LRU keyed on the sparsity
    pattern token plus a content hash of the coefficient values, so solving
    the same matrix again (same design, same grid) skips the numeric
    factorization entirely.
    """

    name = "sparse-lu"

    def __init__(self, factorization_cache_size: int = 8) -> None:
        if factorization_cache_size < 0:
            raise ValueError("factorization_cache_size must be non-negative")
        self.factorization_cache_size = int(factorization_cache_size)
        self._factorizations: "OrderedDict[tuple, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.n_factorizations = 0
        self.n_factorization_reuses = 0

    def _matrix_key(self, matrix, pattern_token):
        digest = hashlib.blake2b(matrix.data.tobytes(), digest_size=16)
        if pattern_token is None:
            # Without a pattern token the structure itself must be hashed.
            digest.update(matrix.indices.tobytes())
            digest.update(matrix.indptr.tobytes())
            return (matrix.shape, matrix.nnz, digest.hexdigest())
        return (pattern_token, digest.hexdigest())

    def _factorization_for(self, matrix, pattern_token):
        """The (possibly cached) SuperLU factorization of ``matrix``."""
        key = self._matrix_key(matrix, pattern_token)
        with self._lock:
            factorization = self._factorizations.get(key)
            if factorization is not None:
                self._factorizations.move_to_end(key)
                self.n_factorization_reuses += 1
        if factorization is None:
            factorization = splu(matrix.tocsc())
            with self._lock:
                self.n_factorizations += 1
                if self.factorization_cache_size > 0:
                    self._factorizations[key] = factorization
                    while len(self._factorizations) > self.factorization_cache_size:
                        self._factorizations.popitem(last=False)
        return factorization

    def solve(self, matrix, rhs, pattern_token=None):
        matrix = matrix.tocsr() if not sparse.issparse(matrix) else matrix
        return self._factorization_for(matrix, pattern_token).solve(rhs)

    def solve_transpose(self, matrix, rhs, pattern_token=None):
        # SuperLU solves A^T x = b from the *forward* decomposition
        # (``trans='T'``), so when the adjoint follows a forward solve of
        # the same matrix -- the optimizer's hot path -- the factorization
        # is a cache hit and the adjoint costs one triangular solve.
        matrix = matrix.tocsr() if not sparse.issparse(matrix) else matrix
        return self._factorization_for(matrix, pattern_token).solve(
            rhs, trans="T"
        )

    def solve_matrix(self, matrix, rhs_matrix, pattern_token=None):
        # One content hash + one factorization lookup for the whole block,
        # then per-column back-substitution.  SuperLU *can* take a 2-D
        # right-hand side, but its multi-RHS triangular solves go through
        # blocked BLAS whose summation order differs from the single-RHS
        # kernels -- columns would drift from single solves in the last
        # bits.  Per-column solves over the shared factorization keep the
        # bit-identity guarantee of the base class while still amortizing
        # the hashing/lookup (the per-step cost that dominates batched
        # transient stepping).
        rhs_matrix = np.asarray(rhs_matrix)
        if rhs_matrix.ndim != 2:
            raise ValueError(
                f"rhs_matrix must be 2-D (n, k), got shape {rhs_matrix.shape}"
            )
        matrix = matrix.tocsr() if not sparse.issparse(matrix) else matrix
        factorization = self._factorization_for(matrix, pattern_token)
        return np.column_stack(
            [
                factorization.solve(rhs_matrix[:, column])
                for column in range(rhs_matrix.shape[1])
            ]
        )

    def reset(self):
        with self._lock:
            self._factorizations.clear()
            self.n_factorizations = 0
            self.n_factorization_reuses = 0

    def stats(self):
        with self._lock:
            return {
                "n_factorizations": self.n_factorizations,
                "n_factorization_reuses": self.n_factorization_reuses,
                "cached_factorizations": len(self._factorizations),
            }


class SparseIterativeBackend(SolverBackend):
    """Row-equilibrated ILU + GMRES with a direct-solve safety net.

    The FDM matrix mixes O(1) Dirichlet rows with O(1e4) conduction rows,
    so the system is equilibrated by its row sums before the incomplete
    factorization.  If GMRES does not reach a residual consistent with
    direct-solve accuracy the backend transparently falls back to
    :class:`SparseLUBackend`, keeping the 1e-8 temperature-equivalence
    guarantee of the test suite.
    """

    name = "sparse-iterative"

    def __init__(
        self,
        drop_tol: float = 1e-5,
        fill_factor: float = 15.0,
        rtol: float = 1e-12,
        restart: int = 60,
        maxiter: int = 300,
    ) -> None:
        self.drop_tol = float(drop_tol)
        self.fill_factor = float(fill_factor)
        self.rtol = float(rtol)
        self.restart = int(restart)
        self.maxiter = int(maxiter)
        self._fallback = SparseLUBackend()
        self.n_iterative_solves = 0
        self.n_fallbacks = 0

    def solve(self, matrix, rhs, pattern_token=None):
        try:
            row_scale = np.asarray(abs(matrix).sum(axis=1)).ravel()
            row_scale[row_scale == 0.0] = 1.0
            scaled = sparse.diags(1.0 / row_scale) @ matrix
            scaled_rhs = rhs / row_scale
            preconditioner = spilu(
                scaled.tocsc(),
                drop_tol=self.drop_tol,
                fill_factor=self.fill_factor,
            )
            operator = LinearOperator(matrix.shape, preconditioner.solve)
            solution, info = gmres(
                scaled.tocsr(),
                scaled_rhs,
                M=operator,
                rtol=self.rtol,
                atol=0.0,
                restart=self.restart,
                maxiter=self.maxiter,
            )
        except RuntimeError:
            # Singular incomplete factorization; use the direct solver.
            self.n_fallbacks += 1
            return self._fallback.solve(matrix, rhs, pattern_token)
        if info != 0 or not np.all(np.isfinite(solution)):
            self.n_fallbacks += 1
            return self._fallback.solve(matrix, rhs, pattern_token)
        residual = np.linalg.norm(scaled @ solution - scaled_rhs)
        reference = np.linalg.norm(scaled_rhs)
        if reference > 0.0 and residual > 1e-9 * reference:
            self.n_fallbacks += 1
            return self._fallback.solve(matrix, rhs, pattern_token)
        self.n_iterative_solves += 1
        return solution

    def solve_transpose(self, matrix, rhs, pattern_token=None):
        # Run the same iterative machinery on the transposed system; the
        # quality gates inside :meth:`solve` already fall back to the
        # direct solver (which handles the transpose via ``trans='T'``)
        # whenever the iteration misses direct-solve accuracy.
        token = None if pattern_token is None else ("transpose", pattern_token)
        try:
            return self.solve(matrix.T.tocsr(), rhs, token)
        except RuntimeError:  # pragma: no cover - defensive
            self.n_fallbacks += 1
            return self._fallback.solve_transpose(matrix, rhs, pattern_token)

    def reset(self):
        self._fallback.reset()
        self.n_iterative_solves = 0
        self.n_fallbacks = 0

    def stats(self):
        return {
            "n_iterative_solves": self.n_iterative_solves,
            "n_fallbacks": self.n_fallbacks,
            "fallback": self._fallback.stats(),
        }


class AutoBackend(SolverBackend):
    """Size-based dispatch: dense for tiny systems, sparse LU otherwise."""

    name = "auto"

    #: Systems with at most this many unknowns go to the dense backend
    #: (measured crossover vs SuperLU on the FDM systems is ~120 unknowns).
    dense_cutoff = 120

    def solve(self, matrix, rhs, pattern_token=None):
        if matrix.shape[0] <= self.dense_cutoff:
            return get_backend("dense").solve(matrix, rhs, pattern_token)
        return get_backend("sparse-lu").solve(matrix, rhs, pattern_token)

    def solve_matrix(self, matrix, rhs_matrix, pattern_token=None):
        if matrix.shape[0] <= self.dense_cutoff:
            return get_backend("dense").solve_matrix(
                matrix, rhs_matrix, pattern_token
            )
        return get_backend("sparse-lu").solve_matrix(
            matrix, rhs_matrix, pattern_token
        )

    def solve_transpose(self, matrix, rhs, pattern_token=None):
        if matrix.shape[0] <= self.dense_cutoff:
            return get_backend("dense").solve_transpose(
                matrix, rhs, pattern_token
            )
        return get_backend("sparse-lu").solve_transpose(
            matrix, rhs, pattern_token
        )

    def stats(self):
        return {"dense_cutoff": self.dense_cutoff}


_REGISTRY: Dict[str, SolverBackend] = {}
_REGISTRY_LOCK = threading.Lock()


def register_backend(backend: SolverBackend, overwrite: bool = False) -> SolverBackend:
    """Register a backend instance under its ``name``.

    Raises ``ValueError`` when the name is taken and ``overwrite`` is False.
    Returns the backend to allow use as a decorator-style one-liner.
    """
    name = getattr(backend, "name", None)
    if not name or not isinstance(name, str):
        raise ValueError("backend must define a non-empty string 'name'")
    if not hasattr(backend, "solve"):
        raise TypeError("backend must implement solve(matrix, rhs, pattern_token)")
    with _REGISTRY_LOCK:
        if name in _REGISTRY and not overwrite:
            raise ValueError(
                f"solver backend {name!r} is already registered "
                "(pass overwrite=True to replace it)"
            )
        _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> SolverBackend:
    """Look up a backend by registry name."""
    with _REGISTRY_LOCK:
        backend = _REGISTRY.get(name)
    if backend is None:
        raise KeyError(
            f"unknown solver backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        )
    return backend


def available_backends() -> tuple:
    """Sorted names of every registered backend."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


def resolve_backend(
    backend: Union[None, str, SolverBackend]
) -> SolverBackend:
    """Normalize a backend specification (None / name / instance)."""
    if backend is None:
        return get_backend(DEFAULT_BACKEND)
    if isinstance(backend, str):
        return get_backend(backend)
    if hasattr(backend, "solve"):
        return backend
    raise TypeError(
        "backend must be None, a registered backend name, or an object "
        "with a solve(matrix, rhs, pattern_token) method"
    )


register_backend(DenseBackend())
register_backend(SparseLUBackend())
register_backend(SparseIterativeBackend())
register_backend(AutoBackend())
