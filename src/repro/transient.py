"""Transient workload specifications: power traces, schedules and policies.

Everything batch-facing in the library describes *what to run* as frozen,
JSON-round-trippable specs (:mod:`repro.scenarios`); this module extends
that vocabulary to time-varying workloads:

* :class:`TraceSpec` -- one per-block (per solid layer) power trace:
  piecewise-constant flux segments, a periodic duty cycle, or a trace
  loaded from a CSV/JSON file (:meth:`TraceSpec.from_file`, stored inline
  so the spec stays self-contained);
* :class:`PolicySpec` -- the serializable description of a runtime
  coolant flow-control policy (built into a live
  :class:`~repro.policies.FlowPolicy` by
  :func:`repro.policies.policy_from_spec`);
* :class:`TransientSpec` -- the full time axis of a scenario: duration,
  backward-Euler step, traces, control policy, history subsampling and
  the threshold used by the time-above-threshold metric.

A :class:`~repro.scenarios.ScenarioSpec` carries an optional
``transient`` field of this type; scenarios with one run through the
finite-volume transient engine (:mod:`repro.transient_engine`) instead of
the steady solvers.  All specs validate on construction and round-trip
losslessly through ``to_dict``/``from_dict`` (and JSON), so transient
scenarios serialize, hash, sweep and resume exactly like steady ones.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, fields, replace
from typing import Dict, Mapping, Optional, Tuple, Union

import numpy as np

__all__ = [
    "TRACE_KINDS",
    "POLICY_KINDS",
    "ROM_MODES",
    "ROM_AUTO_MIN_STEPS",
    "TraceSpec",
    "PolicySpec",
    "RomSpec",
    "TransientSpec",
    "load_trace_file",
]

#: Trace shapes a spec can describe.
TRACE_KINDS: Tuple[str, ...] = ("piecewise", "periodic")

#: Built-in flow-control policy kinds (see :mod:`repro.policies`).
POLICY_KINDS: Tuple[str, ...] = ("constant", "bang-bang", "proportional", "mpc")

#: Reduced-order-model dispatch modes (see :class:`RomSpec`).
ROM_MODES: Tuple[str, ...] = ("off", "rom", "auto")

#: ``mode="auto"`` picks the reduced integrator for traces at least this
#: many steps long (shorter traces cannot amortize the basis build).
ROM_AUTO_MIN_STEPS = 32


def _set(instance, **values) -> None:
    """Assign coerced values on a frozen dataclass instance."""
    for name, value in values.items():
        object.__setattr__(instance, name, value)


def _check_keys(cls, data: Mapping, context: str) -> None:
    """Reject unknown keys with a message listing the allowed ones."""
    allowed = {field.name for field in fields(cls)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ValueError(
            f"{context}: unknown field(s) {unknown}; allowed fields are "
            f"{sorted(allowed)}"
        )


def load_trace_file(path: Union[str, os.PathLike]) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    """Read ``(times, values)`` from a CSV or JSON trace file.

    Two formats are accepted:

    * CSV: two columns ``time,value`` per line; a non-numeric first line
      is treated as a header and skipped;
    * JSON: either ``{"times": [...], "values": [...]}`` or a list of
      ``[time, value]`` pairs.

    The times must start at 0 and increase strictly; the returned pair is
    ready for :class:`TraceSpec` (``kind="piecewise"``), which stores the
    samples inline so the resulting spec is self-contained.
    """
    name = os.fspath(path)
    with open(name, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("{") or stripped.startswith("["):
        data = json.loads(text)
        if isinstance(data, Mapping):
            if "times" not in data or "values" not in data:
                raise ValueError(
                    f"{name}: a JSON trace object needs 'times' and 'values'"
                )
            times, values = data["times"], data["values"]
        else:
            try:
                times = [pair[0] for pair in data]
                values = [pair[1] for pair in data]
            except (TypeError, IndexError):
                raise ValueError(
                    f"{name}: a JSON trace list must hold [time, value] pairs"
                ) from None
    else:
        times, values = [], []
        for number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            parts = [part.strip() for part in line.split(",")]
            if len(parts) < 2:
                raise ValueError(
                    f"{name}:{number}: expected 'time,value', got {line!r}"
                )
            try:
                time, value = float(parts[0]), float(parts[1])
            except ValueError:
                if number == 1:  # header line
                    continue
                raise ValueError(
                    f"{name}:{number}: non-numeric trace sample {line!r}"
                ) from None
            times.append(time)
            values.append(value)
    if not times:
        raise ValueError(f"{name}: the trace file holds no samples")
    return (
        tuple(float(time) for time in times),
        tuple(float(value) for value in values),
    )


@dataclass(frozen=True)
class TraceSpec:
    """A time-varying heat-flux trace for one solid layer of the stack.

    Attributes
    ----------
    layer:
        Name of the solid layer the trace drives (``"top_die"``, ...).
    kind:
        ``"piecewise"`` (explicit breakpoints) or ``"periodic"`` (duty
        cycle).
    times / values:
        Piecewise-constant samples: ``values[i]`` (W/cm^2) holds from
        ``times[i]`` until ``times[i+1]`` (the last value holds to the end
        of the run).  ``times`` must start at 0 and increase strictly.
    period_s / duty / high / low:
        Periodic traces: flux is ``high`` (W/cm^2) for the first
        ``duty`` fraction of every ``period_s`` seconds and ``low``
        otherwise.
    """

    layer: str
    kind: str = "piecewise"
    times: Tuple[float, ...] = ()
    values: Tuple[float, ...] = ()
    period_s: float = 0.0
    duty: float = 0.5
    high: float = 0.0
    low: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.layer, str) or not self.layer:
            raise ValueError(
                f"trace.layer must be a non-empty layer name, got {self.layer!r}"
            )
        if self.kind not in TRACE_KINDS:
            raise ValueError(
                f"trace.kind must be one of {list(TRACE_KINDS)}, got {self.kind!r}"
            )
        _set(
            self,
            times=tuple(float(time) for time in self.times),
            values=tuple(float(value) for value in self.values),
            period_s=float(self.period_s),
            duty=float(self.duty),
            high=float(self.high),
            low=float(self.low),
        )
        if self.kind == "piecewise":
            if not self.times or len(self.times) != len(self.values):
                raise ValueError(
                    f"trace {self.layer!r}: piecewise traces need matching, "
                    f"non-empty times/values, got {len(self.times)} times and "
                    f"{len(self.values)} values"
                )
            if self.times[0] != 0.0:
                raise ValueError(
                    f"trace {self.layer!r}: times must start at 0, "
                    f"got {self.times[0]}"
                )
            if any(b <= a for a, b in zip(self.times, self.times[1:])):
                raise ValueError(
                    f"trace {self.layer!r}: times must increase strictly, "
                    f"got {self.times}"
                )
            if any(not np.isfinite(v) or v < 0.0 for v in self.values):
                raise ValueError(
                    f"trace {self.layer!r}: flux values must be finite and "
                    f"non-negative, got {self.values}"
                )
        else:  # periodic
            if self.period_s <= 0.0:
                raise ValueError(
                    f"trace {self.layer!r}: period_s must be positive, "
                    f"got {self.period_s}"
                )
            if not 0.0 < self.duty <= 1.0:
                raise ValueError(
                    f"trace {self.layer!r}: duty must be in (0, 1], got {self.duty}"
                )
            if self.high < 0.0 or self.low < 0.0:
                raise ValueError(
                    f"trace {self.layer!r}: high/low fluxes must be "
                    f"non-negative, got ({self.high}, {self.low})"
                )

    @classmethod
    def from_file(cls, layer: str, path: Union[str, os.PathLike]) -> "TraceSpec":
        """Load a CSV/JSON trace file into a self-contained piecewise trace."""
        times, values = load_trace_file(path)
        return cls(layer=layer, kind="piecewise", times=times, values=values)

    def flux_at(self, time_s: float) -> float:
        """The trace's areal heat flux (W/cm^2) at ``time_s``."""
        if self.kind == "periodic":
            phase = time_s % self.period_s
            return self.high if phase < self.duty * self.period_s else self.low
        index = int(np.searchsorted(self.times, time_s, side="right")) - 1
        return self.values[max(index, 0)]

    def to_dict(self) -> Dict[str, object]:
        """Plain-data (JSON-compatible) representation of the trace."""
        return {
            "layer": self.layer,
            "kind": self.kind,
            "times": list(self.times),
            "values": list(self.values),
            "period_s": self.period_s,
            "duty": self.duty,
            "high": self.high,
            "low": self.low,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TraceSpec":
        """Rebuild a trace from :meth:`to_dict` output (with validation)."""
        if not isinstance(data, Mapping):
            raise ValueError(f"a trace must be a mapping, got {type(data).__name__}")
        _check_keys(cls, data, "trace")
        if "layer" not in data:
            raise ValueError("trace: the 'layer' field is required")
        return cls(**data)


@dataclass(frozen=True)
class PolicySpec:
    """Serializable description of a runtime flow-control policy.

    The ``kind`` selects the policy family (see :mod:`repro.policies`);
    only the fields that family reads are meaningful, the rest keep their
    defaults so any spec round-trips losslessly.

    Attributes
    ----------
    kind:
        ``"constant"``, ``"bang-bang"``, ``"proportional"``, ``"mpc"`` or
        a custom registered policy name.
    control_interval_s:
        How often the policy observes the peak temperature and may change
        the flow (seconds).  ``0`` disables runtime control entirely (the
        initial scale applies for the whole run); threshold, proportional
        and model-predictive policies require a positive interval.
    scale:
        The fixed flow scale of ``"constant"`` policies.
    threshold_K / low_scale / high_scale:
        Bang-bang trigger temperature and its two flow levels.
    setpoint_K / gain_per_K / min_scale / max_scale:
        Proportional setpoint, gain and clip range.  ``"mpc"`` reuses
        ``threshold_K`` as the planning constraint and
        ``min_scale``/``max_scale`` as the candidate range.
    horizon_s / n_candidates:
        Model-predictive planning: each control interval the policy rolls
        a reduced model ``horizon_s`` seconds forward for each of
        ``n_candidates`` flow scales between ``min_scale`` and
        ``max_scale`` and commits the cheapest scale whose predicted peak
        stays under ``threshold_K``.
    """

    kind: str = "constant"
    control_interval_s: float = 0.0
    scale: float = 1.0
    threshold_K: float = 350.0
    low_scale: float = 1.0
    high_scale: float = 1.5
    setpoint_K: float = 345.0
    gain_per_K: float = 0.05
    min_scale: float = 0.25
    max_scale: float = 2.0
    horizon_s: float = 0.0
    n_candidates: int = 4

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str) or not self.kind:
            raise ValueError(
                f"policy.kind must be a non-empty policy name, got {self.kind!r}"
            )
        _set(
            self,
            control_interval_s=float(self.control_interval_s),
            scale=float(self.scale),
            threshold_K=float(self.threshold_K),
            low_scale=float(self.low_scale),
            high_scale=float(self.high_scale),
            setpoint_K=float(self.setpoint_K),
            gain_per_K=float(self.gain_per_K),
            min_scale=float(self.min_scale),
            max_scale=float(self.max_scale),
            horizon_s=float(self.horizon_s),
            n_candidates=int(self.n_candidates),
        )
        if self.control_interval_s < 0.0:
            raise ValueError(
                f"policy.control_interval_s must be non-negative, "
                f"got {self.control_interval_s}"
            )
        for name in ("scale", "low_scale", "high_scale", "min_scale", "max_scale"):
            if getattr(self, name) <= 0.0:
                raise ValueError(
                    f"policy.{name} must be positive, got {getattr(self, name)}"
                )
        if self.min_scale > self.max_scale:
            raise ValueError(
                f"policy.min_scale must not exceed policy.max_scale, "
                f"got ({self.min_scale}, {self.max_scale})"
            )
        if self.threshold_K <= 0.0 or self.setpoint_K <= 0.0:
            raise ValueError("policy temperatures must be positive (Kelvin)")
        if self.horizon_s < 0.0:
            raise ValueError(
                f"policy.horizon_s must be non-negative, got {self.horizon_s}"
            )
        if self.n_candidates < 2:
            raise ValueError(
                f"policy.n_candidates must be at least 2, got {self.n_candidates}"
            )
        if self.kind in ("bang-bang", "proportional", "mpc") and self.control_interval_s <= 0.0:
            raise ValueError(
                f"policy.kind {self.kind!r} reacts to observed temperatures "
                "and needs a positive control_interval_s"
            )
        if self.kind == "mpc" and self.horizon_s <= 0.0:
            raise ValueError(
                "policy.kind 'mpc' plans over a horizon and needs a "
                f"positive horizon_s, got {self.horizon_s}"
            )

    @property
    def is_reactive(self) -> bool:
        """True when the policy can change the flow during the run."""
        return self.control_interval_s > 0.0 and self.kind != "constant"

    def to_dict(self) -> Dict[str, object]:
        """Plain-data (JSON-compatible) representation of the policy."""
        return {
            "kind": self.kind,
            "control_interval_s": self.control_interval_s,
            "scale": self.scale,
            "threshold_K": self.threshold_K,
            "low_scale": self.low_scale,
            "high_scale": self.high_scale,
            "setpoint_K": self.setpoint_K,
            "gain_per_K": self.gain_per_K,
            "min_scale": self.min_scale,
            "max_scale": self.max_scale,
            "horizon_s": self.horizon_s,
            "n_candidates": self.n_candidates,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PolicySpec":
        """Rebuild a policy spec from :meth:`to_dict` output."""
        if not isinstance(data, Mapping):
            raise ValueError(f"a policy must be a mapping, got {type(data).__name__}")
        _check_keys(cls, data, "policy")
        return cls(**data)


@dataclass(frozen=True)
class RomSpec:
    """Reduced-order-model settings for the transient integrator.

    Attributes
    ----------
    mode:
        ``"off"`` (default; the full finite-volume integrator, bit-
        identical to earlier releases), ``"rom"`` (always use the Krylov
        reduced integrator of :mod:`repro.core.rom`) or ``"auto"``
        (reduced for traces of at least ``ROM_AUTO_MIN_STEPS`` steps,
        full otherwise).
    order:
        Maximum Krylov basis size; the realized order may be smaller when
        the subspace closes or ``tolerance`` deflates directions, and is
        reported as ``rom_order`` in the transient metrics.
    tolerance:
        Relative deflation threshold of the block-Arnoldi recurrence:
        candidate directions whose orthogonal remainder falls below this
        fraction of their norm are dropped.
    check_every:
        Stride (in steps) of the error checkpoints: at every checkpoint
        one *full* backward-Euler step is taken from the lifted reduced
        state and the peak-temperature discrepancy is folded into the
        reported ``rom_peak_abs_err_K``.  ``0`` picks ``n_steps // 4``
        (at least 1); the final step is always checked.
    """

    mode: str = "off"
    order: int = 48
    tolerance: float = 1e-9
    check_every: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ROM_MODES:
            raise ValueError(
                f"rom.mode must be one of {list(ROM_MODES)}, got {self.mode!r}"
            )
        _set(
            self,
            order=int(self.order),
            tolerance=float(self.tolerance),
            check_every=int(self.check_every),
        )
        if self.order < 1:
            raise ValueError(f"rom.order must be at least 1, got {self.order}")
        if not 0.0 < self.tolerance < 1.0:
            raise ValueError(
                f"rom.tolerance must be in (0, 1), got {self.tolerance}"
            )
        if self.check_every < 0:
            raise ValueError(
                f"rom.check_every must be non-negative, got {self.check_every}"
            )

    def to_dict(self) -> Dict[str, object]:
        """Plain-data (JSON-compatible) representation of the settings."""
        return {
            "mode": self.mode,
            "order": self.order,
            "tolerance": self.tolerance,
            "check_every": self.check_every,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RomSpec":
        """Rebuild ROM settings from :meth:`to_dict` output."""
        if not isinstance(data, Mapping):
            raise ValueError(
                f"a rom block must be a mapping, got {type(data).__name__}"
            )
        _check_keys(cls, data, "rom")
        return cls(**data)


@dataclass(frozen=True)
class TransientSpec:
    """The time axis of a scenario: traces, integration and control.

    Attributes
    ----------
    duration_s / time_step_s:
        Total simulated time and the backward-Euler step (seconds).  The
        scheme is unconditionally stable, so the step only controls
        accuracy.
    traces:
        Per-layer power traces (at most one per layer); layers without a
        trace keep the scenario's static heat maps.
    policy:
        The runtime flow-control policy (constant scale 1 by default,
        i.e. the uncontrolled scenario).
    store_every:
        Keep every ``store_every``-th field snapshot (plus the initial
        and final states), bounding memory for long traces.  Scalar
        observables (peak temperature, coolant rise) are tracked at every
        step regardless.
    initial_temperature_K:
        Uniform initial temperature; ``None`` starts from the stack's
        ambient (inlet) temperature.
    threshold_K:
        Temperature used by the time-above-threshold transient metric
        (85 C by default).
    rom:
        Reduced-order-model settings (:class:`RomSpec`); ``mode="off"``
        by default, keeping trajectories bit-identical to the full
        integrator.
    """

    duration_s: float = 1.0
    time_step_s: float = 0.01
    traces: Tuple[TraceSpec, ...] = ()
    policy: PolicySpec = PolicySpec()
    store_every: int = 1
    initial_temperature_K: Optional[float] = None
    threshold_K: float = 358.15
    rom: RomSpec = RomSpec()

    def __post_init__(self) -> None:
        _set(
            self,
            duration_s=float(self.duration_s),
            time_step_s=float(self.time_step_s),
            store_every=int(self.store_every),
            threshold_K=float(self.threshold_K),
        )
        if self.duration_s <= 0.0 or self.time_step_s <= 0.0:
            raise ValueError(
                "transient.duration_s and transient.time_step_s must be "
                f"positive, got ({self.duration_s}, {self.time_step_s})"
            )
        if self.store_every < 1:
            raise ValueError(
                f"transient.store_every must be at least 1, got {self.store_every}"
            )
        if self.threshold_K <= 0.0:
            raise ValueError(
                f"transient.threshold_K must be positive (Kelvin), "
                f"got {self.threshold_K}"
            )
        if self.initial_temperature_K is not None:
            _set(self, initial_temperature_K=float(self.initial_temperature_K))
            if self.initial_temperature_K <= 0.0:
                raise ValueError(
                    "transient.initial_temperature_K must be positive "
                    f"(Kelvin), got {self.initial_temperature_K}"
                )
        traces = []
        for trace in self.traces:
            if isinstance(trace, Mapping):
                trace = TraceSpec.from_dict(trace)
            if not isinstance(trace, TraceSpec):
                raise ValueError(
                    "transient.traces entries must be TraceSpec (or "
                    f"mappings), got {type(trace).__name__}"
                )
            traces.append(trace)
        layers = [trace.layer for trace in traces]
        duplicates = sorted({layer for layer in layers if layers.count(layer) > 1})
        if duplicates:
            raise ValueError(
                f"transient.traces repeat layer(s) {duplicates}; at most one "
                "trace per layer"
            )
        _set(self, traces=tuple(traces))
        policy = self.policy
        if isinstance(policy, Mapping):
            policy = PolicySpec.from_dict(policy)
        if not isinstance(policy, PolicySpec):
            raise ValueError(
                f"transient.policy must be a PolicySpec (or mapping), "
                f"got {type(policy).__name__}"
            )
        _set(self, policy=policy)
        rom = self.rom
        if isinstance(rom, Mapping):
            rom = RomSpec.from_dict(rom)
        if not isinstance(rom, RomSpec):
            raise ValueError(
                f"transient.rom must be a RomSpec (or mapping), "
                f"got {type(rom).__name__}"
            )
        _set(self, rom=rom)
        if policy.control_interval_s > 0.0:
            steps = policy.control_interval_s / self.time_step_s
            if abs(steps - round(steps)) > 1e-9 or round(steps) < 1:
                raise ValueError(
                    "policy.control_interval_s must be a positive whole "
                    f"multiple of transient.time_step_s, got "
                    f"{policy.control_interval_s} vs {self.time_step_s}"
                )

    # -- derived integration parameters ------------------------------------

    @property
    def n_steps(self) -> int:
        """Number of backward-Euler steps of the run."""
        return max(int(round(self.duration_s / self.time_step_s)), 1)

    @property
    def control_steps(self) -> int:
        """Steps per control interval (``n_steps`` when control is off)."""
        if self.policy.control_interval_s <= 0.0:
            return self.n_steps
        return int(round(self.policy.control_interval_s / self.time_step_s))

    @property
    def rom_active(self) -> bool:
        """Whether the reduced integrator should run this trajectory."""
        if self.rom.mode == "rom":
            return True
        if self.rom.mode == "auto":
            return self.n_steps >= ROM_AUTO_MIN_STEPS
        return False

    def schedule(self):
        """A ``time -> {layer: flux}`` callable over the traces (or None).

        This is exactly the ``power_schedule`` shape consumed by
        :class:`repro.ice.transient.TransientSolver`.
        """
        if not self.traces:
            return None
        traces = self.traces

        def power_schedule(time_s: float) -> Dict[str, float]:
            return {trace.layer: trace.flux_at(time_s) for trace in traces}

        return power_schedule

    # -- functional updates -------------------------------------------------

    def with_policy(self, policy: Union[PolicySpec, Mapping]) -> "TransientSpec":
        """Return a copy with the flow-control policy replaced."""
        return replace(self, policy=policy)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-data (JSON-compatible) representation of the spec.

        This form feeds :meth:`repro.scenarios.ScenarioSpec.spec_hash`, so
        the fields below are frozen: they serialize unconditionally, byte
        for byte.  Any optional field added in the future must be omitted
        while it holds its default (see
        :func:`repro.scenarios._non_default_fields`) so stored hashes of
        existing transient scenarios keep resolving.
        """
        return {
            "duration_s": self.duration_s,
            "time_step_s": self.time_step_s,
            "traces": [trace.to_dict() for trace in self.traces],
            "policy": self.policy.to_dict(),
            "store_every": self.store_every,
            "initial_temperature_K": self.initial_temperature_K,
            "threshold_K": self.threshold_K,
            "rom": self.rom.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TransientSpec":
        """Rebuild a transient spec from :meth:`to_dict` output."""
        if not isinstance(data, Mapping):
            raise ValueError(
                f"a transient spec must be a mapping, got {type(data).__name__}"
            )
        _check_keys(cls, data, "transient")
        payload = dict(data)
        payload["traces"] = tuple(payload.get("traces", ()))
        return cls(**payload)
