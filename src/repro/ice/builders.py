"""Convenience builders for common layer stacks.

The experiments of the paper all use the same packaging template: two
active silicon dies facing a single inter-tier microchannel cavity (Fig. 2
at channel scale, Figs. 1 and 9 at die scale).  These helpers build that
stack from heat-flux maps, floorplans or architecture objects so that the
benchmarks and examples stay short.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from ..config import DEFAULT_EXPERIMENT, ExperimentConfig
from ..floorplan.architectures import Architecture
from ..floorplan.blocks import Floorplan, PowerScenario
from ..thermal.geometry import WidthProfile
from .stack import CavityLayer, LayerStack, SolidLayer

__all__ = [
    "two_die_stack_from_maps",
    "two_die_stack_from_floorplans",
    "two_die_stack_from_architecture",
    "multi_die_stack_from_maps",
    "multi_die_stack_from_architecture",
]


def two_die_stack_from_maps(
    top_flux_w_per_cm2: Union[float, np.ndarray],
    bottom_flux_w_per_cm2: Union[float, np.ndarray],
    die_length: float,
    die_width: float,
    *,
    config: ExperimentConfig = DEFAULT_EXPERIMENT,
    n_cols: int = 50,
    n_rows: int = 55,
    width_profile: Union[WidthProfile, Sequence[WidthProfile], None] = None,
) -> LayerStack:
    """Two active dies around one cavity, driven by heat-flux maps (W/cm^2).

    The default channel geometry, coolant and flow rate come from the
    experiment configuration; ``width_profile`` selects the channel design
    (uniform maximum width when omitted).
    """
    params = config.params
    top_die = SolidLayer(
        name="top_die",
        material=params.silicon,
        thickness=params.silicon_height,
        heat_source=top_flux_w_per_cm2,
    )
    bottom_die = SolidLayer(
        name="bottom_die",
        material=params.silicon,
        thickness=params.silicon_height,
        heat_source=bottom_flux_w_per_cm2,
    )
    cavity = CavityLayer(
        name="cavity",
        channel_height=params.channel_height,
        channel_pitch=params.channel_pitch,
        width_profile=width_profile,
        flow_rate_per_channel=params.flow_rate_per_channel,
        coolant=params.coolant,
        inlet_temperature=params.inlet_temperature,
        wall_material=params.silicon,
    )
    return LayerStack(
        die_length=die_length,
        die_width=die_width,
        layers=[bottom_die, cavity, top_die],
        n_cols=n_cols,
        n_rows=n_rows,
        ambient_temperature=params.inlet_temperature,
    )


def multi_die_stack_from_maps(
    flux_maps_w_per_cm2: Sequence[Union[float, np.ndarray]],
    die_length: float,
    die_width: float,
    *,
    config: ExperimentConfig = DEFAULT_EXPERIMENT,
    n_cols: int = 50,
    n_rows: int = 55,
    width_profile: Union[WidthProfile, Sequence[WidthProfile], None] = None,
) -> LayerStack:
    """A stack of N active dies with a microchannel cavity between each pair.

    ``flux_maps_w_per_cm2`` lists one heat-flux map (or uniform scalar) per
    die, bottom-up; a 4-entry list produces the 4-die / 3-cavity stacks of
    the Fig. 7 Niagara experiments.  Every cavity shares the channel
    geometry, coolant, flow rate and (optional) width profile.
    """
    if len(flux_maps_w_per_cm2) < 2:
        raise ValueError("a multi-die stack needs at least two dies")
    params = config.params
    layers: list = []
    for die_index, flux in enumerate(flux_maps_w_per_cm2):
        if die_index > 0:
            layers.append(
                CavityLayer(
                    name=f"cavity_{die_index - 1}",
                    channel_height=params.channel_height,
                    channel_pitch=params.channel_pitch,
                    width_profile=width_profile,
                    flow_rate_per_channel=params.flow_rate_per_channel,
                    coolant=params.coolant,
                    inlet_temperature=params.inlet_temperature,
                    wall_material=params.silicon,
                )
            )
        layers.append(
            SolidLayer(
                name=f"die_{die_index}",
                material=params.silicon,
                thickness=params.silicon_height,
                heat_source=flux,
            )
        )
    return LayerStack(
        die_length=die_length,
        die_width=die_width,
        layers=layers,
        n_cols=n_cols,
        n_rows=n_rows,
        ambient_temperature=params.inlet_temperature,
    )


def multi_die_stack_from_architecture(
    architecture: Architecture,
    n_dies: int = 4,
    scenario: PowerScenario = "peak",
    *,
    config: ExperimentConfig = DEFAULT_EXPERIMENT,
    n_cols: int = 50,
    n_rows: int = 55,
    width_profile: Union[WidthProfile, Sequence[WidthProfile], None] = None,
) -> LayerStack:
    """An N-die stacking that alternates an architecture's two die maps.

    Extends the paper's two-die template (Fig. 7) to taller stacks by
    repeating the bottom/top die floorplans bottom-up, with one cavity
    between every pair of dies -- the shape used by the finite-volume
    scaling benchmarks and the 4-die equivalence tests.
    """
    if n_dies < 2:
        raise ValueError("a multi-die stack needs at least two dies")
    maps = [
        (architecture.bottom_die if die % 2 == 0 else architecture.top_die)
        .power_density_map(n_cols, n_rows, scenario)
        for die in range(n_dies)
    ]
    return multi_die_stack_from_maps(
        maps,
        architecture.bottom_die.die_length,
        architecture.bottom_die.die_width,
        config=config,
        n_cols=n_cols,
        n_rows=n_rows,
        width_profile=width_profile,
    )


def two_die_stack_from_floorplans(
    top: Floorplan,
    bottom: Floorplan,
    scenario: PowerScenario = "peak",
    *,
    config: ExperimentConfig = DEFAULT_EXPERIMENT,
    n_cols: int = 50,
    n_rows: int = 55,
    width_profile: Union[WidthProfile, Sequence[WidthProfile], None] = None,
) -> LayerStack:
    """Two-die stack whose heat sources are rasterized floorplans."""
    if (
        abs(top.die_length - bottom.die_length) > 1e-12
        or abs(top.die_width - bottom.die_width) > 1e-12
    ):
        raise ValueError("the two dies must have identical extents")
    top_map = top.power_density_map(n_cols, n_rows, scenario)
    bottom_map = bottom.power_density_map(n_cols, n_rows, scenario)
    return two_die_stack_from_maps(
        top_map,
        bottom_map,
        top.die_length,
        top.die_width,
        config=config,
        n_cols=n_cols,
        n_rows=n_rows,
        width_profile=width_profile,
    )


def two_die_stack_from_architecture(
    architecture: Architecture,
    scenario: PowerScenario = "peak",
    *,
    config: ExperimentConfig = DEFAULT_EXPERIMENT,
    n_cols: int = 50,
    n_rows: int = 55,
    width_profile: Union[WidthProfile, Sequence[WidthProfile], None] = None,
) -> LayerStack:
    """Two-die stack of one of the Fig. 7 architectures."""
    return two_die_stack_from_floorplans(
        architecture.top_die,
        architecture.bottom_die,
        scenario,
        config=config,
        n_cols=n_cols,
        n_rows=n_rows,
        width_profile=width_profile,
    )
