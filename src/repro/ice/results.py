"""Result containers of the finite-volume thermal simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["ThermalMapResult", "TransientResult"]


@dataclass
class ThermalMapResult:
    """Steady-state temperature maps of a layer stack.

    Attributes
    ----------
    layer_maps:
        Temperature map (Kelvin) per solid layer, keyed by layer name; each
        map has shape ``(n_rows, n_cols)`` with columns along the coolant
        flow direction.
    coolant_maps:
        Coolant temperature map (Kelvin) per cavity layer, keyed by name.
    metadata:
        Solver metadata (grid size, unknown count, residual norm, ...).
    """

    layer_maps: Dict[str, np.ndarray]
    coolant_maps: Dict[str, np.ndarray] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.layer_maps:
            raise ValueError("at least one layer map is required")
        shapes = {name: m.shape for name, m in self.layer_maps.items()}
        first = next(iter(shapes.values()))
        for name, shape in shapes.items():
            if shape != first:
                raise ValueError(
                    f"layer map {name!r} has shape {shape}, expected {first}"
                )

    # -- per-layer metrics -----------------------------------------------------

    def layer(self, name: str) -> np.ndarray:
        """Temperature map of one solid layer (K)."""
        return self.layer_maps[name]

    def layer_names(self) -> List[str]:
        """Names of the solid layers."""
        return list(self.layer_maps)

    def peak_temperature(self, layer: Optional[str] = None) -> float:
        """Maximum temperature of one layer, or of the whole stack (K)."""
        if layer is not None:
            return float(np.max(self.layer_maps[layer]))
        return float(max(np.max(m) for m in self.layer_maps.values()))

    def min_temperature(self, layer: Optional[str] = None) -> float:
        """Minimum temperature of one layer, or of the whole stack (K)."""
        if layer is not None:
            return float(np.min(self.layer_maps[layer]))
        return float(min(np.min(m) for m in self.layer_maps.values()))

    def thermal_gradient(self, layer: Optional[str] = None) -> float:
        """Max - min temperature of one layer or of the whole stack (K)."""
        return self.peak_temperature(layer) - self.min_temperature(layer)

    def gradient_along_flow(self, layer: str) -> np.ndarray:
        """Column-mean temperature profile along the flow direction (K)."""
        return np.mean(self.layer_maps[layer], axis=0)

    def summary(self) -> Dict[str, float]:
        """Scalar metrics for reports."""
        result: Dict[str, float] = {
            "peak_temperature_K": self.peak_temperature(),
            "thermal_gradient_K": self.thermal_gradient(),
        }
        for name in self.layer_maps:
            result[f"{name}_gradient_K"] = self.thermal_gradient(name)
            result[f"{name}_peak_K"] = self.peak_temperature(name)
        return result


@dataclass
class TransientResult:
    """Transient simulation output: a time series of thermal maps.

    Attributes
    ----------
    times:
        Simulation times in seconds, shape ``(n_steps + 1,)`` (including the
        initial condition at ``t = 0``).
    layer_histories:
        Per-layer temperature history, keyed by layer name, each of shape
        ``(n_steps + 1, n_rows, n_cols)`` in Kelvin.
    metadata:
        Solver metadata (time step, grid size, ...).
    """

    times: np.ndarray
    layer_histories: Dict[str, np.ndarray]
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        for name, history in self.layer_histories.items():
            if history.shape[0] != self.times.size:
                raise ValueError(
                    f"history of layer {name!r} does not match the time grid"
                )

    @property
    def n_steps(self) -> int:
        """Number of time steps taken."""
        return self.times.size - 1

    def final_maps(self) -> ThermalMapResult:
        """The last snapshot wrapped as a steady-style result."""
        return ThermalMapResult(
            layer_maps={
                name: history[-1] for name, history in self.layer_histories.items()
            },
            metadata=dict(self.metadata),
        )

    def peak_history(self, layer: str) -> np.ndarray:
        """Peak temperature of one layer over time (K)."""
        return np.max(self.layer_histories[layer], axis=(1, 2))
