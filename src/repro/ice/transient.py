"""Transient finite-volume solver (backward Euler).

The paper's analytical model is steady-state, but the 3D-ICE simulator it
validates against is a transient compact model; a transient capability is
therefore part of the substrate.  The transient solver reuses the steady
assembly of :class:`~repro.ice.solver.AssembledSystem` (conduction,
convection, advection and sources) and integrates

    C dT/dt = -(A T - b)

with the unconditionally stable backward Euler scheme::

    (C / dt + A) T_{n+1} = (C / dt) T_n + b

Power maps may change between steps by supplying a schedule of heat-source
maps, which enables simple dynamic-thermal-management style experiments on
top of the reproduction.

The implicit step is solved through the pluggable backends of
:mod:`repro.thermal.backends`: the default sparse-LU backend factorizes
``C/dt + A`` once and reuses the factorization for every step -- and, via
its keyed factorization cache, across repeated runs of the same stack and
time step (re-running a transient after a parameter sweep pays only
triangular solves).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

import numpy as np
from scipy import sparse

from ..thermal.backends import SolverBackend, resolve_backend
from .results import TransientResult
from .solver import AssembledSystem
from .stack import LayerStack

__all__ = ["TransientSolver", "result_from_snapshots"]

PowerSchedule = Callable[[float], Dict[str, Union[float, np.ndarray]]]


def result_from_snapshots(
    system: AssembledSystem,
    stack: LayerStack,
    times,
    snapshots,
    metadata: Dict[str, object],
) -> TransientResult:
    """Fold full-state snapshots into a per-solid-layer TransientResult.

    Shared by :meth:`TransientSolver.run` and the transient engine
    (:mod:`repro.transient_engine`), so both paths assemble histories --
    and hence compare bit for bit -- through exactly one implementation.
    """
    layer_histories: Dict[str, np.ndarray] = {}
    for layer_idx, layer in enumerate(stack.layers):
        if layer.is_cavity:
            continue
        start = system.index(layer_idx, 0, 0)
        stop = start + system.n_cells_per_layer
        layer_histories[layer.name] = np.stack(
            [
                snapshot[start:stop].reshape(stack.n_rows, stack.n_cols)
                for snapshot in snapshots
            ]
        )
    return TransientResult(
        times=np.asarray(times),
        layer_histories=layer_histories,
        metadata=metadata,
    )


class TransientSolver:
    """Backward-Euler transient integration of a layer stack.

    Parameters
    ----------
    stack:
        The layer stack to simulate.  Heat-source maps attached to the
        stack's layers define the default (time-invariant) power input.
    power_schedule:
        Optional callable mapping the simulation time (s) to a dictionary
        ``{layer name: heat-flux map in W/cm^2}``; layers not present in the
        dictionary keep their default sources.  Evaluated once per step.
    backend:
        Linear-solver backend for the implicit steps (a registry name from
        :mod:`repro.thermal.backends`, a backend instance, or None for the
        default ``"auto"``).
    assembly_mode:
        ``"vectorized"`` (default) or ``"loop"`` (the reference assembly,
        retained for equivalence testing and benchmarks).
    """

    def __init__(
        self,
        stack: LayerStack,
        power_schedule: Optional[PowerSchedule] = None,
        backend: Union[None, str, SolverBackend] = None,
        assembly_mode: str = "vectorized",
    ) -> None:
        self.stack = stack
        self.system = AssembledSystem(stack, method=assembly_mode)
        self.power_schedule = power_schedule
        self.backend = resolve_backend(backend)
        self._matrix = self.system.matrix().tocsr()
        self._base_rhs = self.system.rhs.copy()
        self._implicit: Dict[float, tuple] = {}

    # -- source updates -----------------------------------------------------------

    def rhs_at(self, time: float) -> np.ndarray:
        """Right-hand side with the power schedule applied at ``time``."""
        if self.power_schedule is None:
            return self._base_rhs
        overrides = self.power_schedule(time)
        if not overrides:
            return self._base_rhs
        rhs = self._base_rhs.copy()
        stack = self.stack
        for name, heat_map in overrides.items():
            layer_idx = stack.layer_index(name)
            layer = stack.layers[layer_idx]
            if layer.is_cavity:
                raise ValueError("power schedules apply to solid layers only")
            default = layer.heat_map(stack.n_rows, stack.n_cols)
            if np.isscalar(heat_map):
                new_map = np.full_like(default, float(heat_map))
            else:
                new_map = np.asarray(heat_map, dtype=float)
                if new_map.shape != default.shape:
                    raise ValueError(
                        f"schedule map for layer {name!r} has shape "
                        f"{new_map.shape}, expected {default.shape}"
                    )
            delta = (new_map - default) * 1e4 * stack.cell_area
            start = self.system.index(layer_idx, 0, 0)
            rhs[start : start + self.system.n_cells_per_layer] += delta.ravel()
        return rhs

    # -- integration --------------------------------------------------------------------

    def implicit_system(self, time_step: float) -> tuple:
        """The backward-Euler system ``(implicit, C/dt, pattern_token)``.

        Cached per time step, so chunked integrations (the transient
        engine's policy-in-the-loop path) rebuild nothing between chunks.
        The token identifies the implicit system's structure to the solver
        backend, whose keyed factorization cache then recognizes the
        unchanged matrix across steps, chunks and repeated runs.
        """
        time_step = float(time_step)
        cached = self._implicit.get(time_step)
        if cached is not None:
            return cached
        capacitances = self.system.capacitances.copy()
        # Guard against zero capacitance (should not happen, but keeps the
        # implicit matrix non-singular for degenerate stacks).
        capacitances[capacitances <= 0.0] = np.min(
            capacitances[capacitances > 0.0]
        )
        c_over_dt = sparse.diags(capacitances / time_step)
        implicit = (c_over_dt + self._matrix).tocsr()
        base_token = self.system.pattern_token
        implicit_token = (
            None if base_token is None else ("ice-implicit",) + base_token
        )
        cached = (implicit, c_over_dt, implicit_token)
        self._implicit[time_step] = cached
        return cached

    def integrate(
        self,
        state: np.ndarray,
        *,
        step_offset: int,
        n_steps: int,
        time_step: float,
        on_step: Callable[[int, float, np.ndarray], None],
    ) -> np.ndarray:
        """Advance a full state vector ``n_steps`` backward-Euler steps.

        The absolute time of each step is ``(step_offset + step) *
        time_step`` -- computed exactly as one unchunked run would, so an
        integration split into chunks (the transient engine's
        policy-in-the-loop path) evaluates power schedules at bit-identical
        times.  ``on_step(step, time, state)`` is invoked after every step
        with the 1-based step number *relative to this call*, the absolute
        time and the new state vector (not a copy -- callbacks that keep it
        must copy).  Returns the final state.  :meth:`run` is a convenience
        wrapper over this primitive.
        """
        implicit, c_over_dt, implicit_token = self.implicit_system(time_step)
        temperature = state
        for step in range(1, int(n_steps) + 1):
            time = (step_offset + step) * time_step
            rhs = self.rhs_at(time) + c_over_dt @ temperature
            temperature = self.backend.solve(implicit, rhs, implicit_token)
            on_step(step, time, temperature)
        return temperature

    def run(
        self,
        duration: float,
        time_step: float,
        initial_temperature: Optional[float] = None,
        store_every: int = 1,
    ) -> TransientResult:
        """Integrate for ``duration`` seconds with fixed ``time_step``.

        Parameters
        ----------
        duration:
            Total simulated time (s).
        time_step:
            Backward-Euler step (s); the scheme is unconditionally stable so
            the step only controls accuracy.
        initial_temperature:
            Uniform initial temperature (K); defaults to the stack's ambient
            temperature.
        store_every:
            Keep every ``store_every``-th snapshot (plus the initial and
            final states) to bound memory for long runs.
        """
        if duration <= 0.0 or time_step <= 0.0:
            raise ValueError("duration and time_step must be positive")
        if store_every < 1:
            raise ValueError("store_every must be at least 1")
        n_steps = max(int(round(duration / time_step)), 1)
        start_temperature = (
            self.stack.ambient_temperature
            if initial_temperature is None
            else float(initial_temperature)
        )

        temperature = np.full(self.system.n_unknowns, start_temperature)
        times = [0.0]
        snapshots = [temperature.copy()]

        def keep(step: int, time: float, state: np.ndarray) -> None:
            if step % store_every == 0 or step == n_steps:
                times.append(time)
                snapshots.append(state.copy())

        self.integrate(
            temperature,
            step_offset=0,
            n_steps=n_steps,
            time_step=time_step,
            on_step=keep,
        )

        return result_from_snapshots(
            self.system,
            self.stack,
            times,
            snapshots,
            metadata={
                "solver": "ice-transient-backward-euler",
                "backend": self.backend.name,
                "assembly": self.system.method,
                "time_step": time_step,
                "n_steps": n_steps,
                "store_every": store_every,
            },
        )
