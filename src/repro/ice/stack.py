"""Layer-stack descriptions for the finite-volume 3D thermal simulator.

The simulator (`repro.ice`) plays the role that the 3D-ICE compact thermal
simulator plays in the paper: an independent, grid-based model used to
validate the analytical formulation and to render full-die thermal maps
(Figs. 1 and 9).  A 3D IC is described as an ordered stack of layers, each
either

* a :class:`SolidLayer` -- a slab of a homogeneous solid material, optionally
  carrying a heat-source map (an *active* layer), or
* a :class:`CavityLayer` -- a microchannel cavity with coolant flowing along
  the ``x`` direction, characterized by the channel pitch, the channel
  height, a (possibly position-dependent) channel width and the per-channel
  volumetric flow rate.

Layers are listed bottom-up.  The lateral cell grid is shared by all layers
(``n_cols`` cells along the flow direction ``x``, ``n_rows`` across it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from ..thermal.geometry import WidthProfile
from ..thermal.properties import Coolant, SolidMaterial, TABLE_I

__all__ = ["SolidLayer", "CavityLayer", "LayerStack"]


@dataclass
class SolidLayer:
    """A homogeneous solid layer of the stack.

    Attributes
    ----------
    name:
        Layer name (used to retrieve the layer's thermal map from results).
    material:
        Solid material of the layer.
    thickness:
        Layer thickness in meters.
    heat_source:
        Optional areal heat-flux map in W/cm^2 with shape
        ``(n_rows, n_cols)`` (or a scalar applied uniformly); an active
        silicon layer carries the power of the die attached to it.
    """

    name: str
    material: SolidMaterial
    thickness: float
    heat_source: Optional[Union[float, np.ndarray]] = None

    def __post_init__(self) -> None:
        if self.thickness <= 0.0:
            raise ValueError(f"layer {self.name!r} thickness must be positive")

    @property
    def is_cavity(self) -> bool:
        """False for solid layers."""
        return False

    def heat_map(self, n_rows: int, n_cols: int) -> np.ndarray:
        """The heat-source map resampled/broadcast to the cell grid (W/cm^2)."""
        if self.heat_source is None:
            return np.zeros((n_rows, n_cols))
        if np.isscalar(self.heat_source):
            return np.full((n_rows, n_cols), float(self.heat_source))
        source = np.asarray(self.heat_source, dtype=float)
        if source.shape == (n_rows, n_cols):
            return source.copy()
        return _resample_map(source, n_rows, n_cols)


@dataclass
class CavityLayer:
    """A microchannel cavity layer with coolant flowing along ``x``.

    Attributes
    ----------
    name:
        Layer name.
    channel_height:
        Cavity (channel) height ``H_C`` in meters.
    channel_pitch:
        Lateral pitch ``W`` of the physical channels in meters.
    width_profile:
        Channel width as a function of the distance from the inlet.  A
        single profile applies to every channel; per-channel profiles can be
        supplied as a list with one entry per physical channel.
    flow_rate_per_channel:
        Volumetric flow rate per physical channel in m^3/s.
    coolant:
        Coolant properties.
    inlet_temperature:
        Coolant temperature at the inlet (x = 0) in Kelvin.
    wall_material:
        Material of the solid channel side walls (silicon by default).
    """

    name: str
    channel_height: float = TABLE_I.channel_height
    channel_pitch: float = TABLE_I.channel_pitch
    width_profile: Union[WidthProfile, Sequence[WidthProfile], None] = None
    flow_rate_per_channel: float = TABLE_I.flow_rate_per_channel
    coolant: Coolant = TABLE_I.coolant
    inlet_temperature: float = TABLE_I.inlet_temperature
    wall_material: SolidMaterial = TABLE_I.silicon

    def __post_init__(self) -> None:
        if self.channel_height <= 0.0 or self.channel_pitch <= 0.0:
            raise ValueError("channel height and pitch must be positive")
        if self.flow_rate_per_channel <= 0.0:
            raise ValueError("flow rate must be positive")
        if self.inlet_temperature <= 0.0:
            raise ValueError("inlet temperature must be positive (Kelvin)")

    @property
    def is_cavity(self) -> bool:
        """True for cavity layers."""
        return True

    @property
    def thickness(self) -> float:
        """The cavity occupies the channel height."""
        return self.channel_height

    def default_width_profile(self, die_length: float) -> WidthProfile:
        """The width profile used when none is supplied (uniform maximum width)."""
        return WidthProfile.uniform(TABLE_I.max_channel_width, die_length)

    def widths_for_channels(
        self, n_channels: int, die_length: float, x_centers: np.ndarray
    ) -> np.ndarray:
        """Channel widths per (channel, x-cell), shape ``(n_channels, n_x)``."""
        profile = self.width_profile
        if profile is None:
            profile = self.default_width_profile(die_length)
        if isinstance(profile, WidthProfile):
            row = np.atleast_1d(profile(x_centers))
            return np.tile(row, (n_channels, 1))
        profiles = list(profile)
        if len(profiles) != n_channels:
            raise ValueError(
                f"expected {n_channels} per-channel width profiles, "
                f"got {len(profiles)}"
            )
        return np.vstack([np.atleast_1d(p(x_centers)) for p in profiles])


@dataclass
class LayerStack:
    """A complete 3D stack: die extents, cell grid and ordered layers.

    Attributes
    ----------
    die_length:
        Die extent along the flow direction ``x`` in meters.
    die_width:
        Die extent across the flow direction ``y`` in meters.
    layers:
        Layers listed bottom-up.
    n_cols, n_rows:
        Lateral cell grid (columns along ``x``, rows along ``y``).
    ambient_temperature:
        Reference temperature (K) used as the initial condition by the
        transient solver.  The steady-state solver treats all outer surfaces
        as adiabatic (as in the paper), so the ambient value does not affect
        steady results.
    """

    die_length: float
    die_width: float
    layers: List[Union[SolidLayer, CavityLayer]] = field(default_factory=list)
    n_cols: int = 50
    n_rows: int = 55
    ambient_temperature: float = 300.0

    def __post_init__(self) -> None:
        if self.die_length <= 0.0 or self.die_width <= 0.0:
            raise ValueError("die extents must be positive")
        if self.n_cols < 2 or self.n_rows < 1:
            raise ValueError(
                "the cell grid needs at least 2 columns and 1 row"
            )
        if not self.layers:
            raise ValueError("a stack needs at least one layer")
        if self.layers[0].is_cavity or self.layers[-1].is_cavity:
            raise ValueError("the bottom and top layers must be solid")
        for below, above in zip(self.layers, self.layers[1:]):
            if below.is_cavity and above.is_cavity:
                raise ValueError("two cavity layers cannot be adjacent")
        names = [layer.name for layer in self.layers]
        if len(names) != len(set(names)):
            raise ValueError("layer names must be unique")

    # -- geometry helpers -----------------------------------------------------

    @property
    def n_layers(self) -> int:
        """Number of layers in the stack."""
        return len(self.layers)

    @property
    def cell_length(self) -> float:
        """Cell extent along the flow direction (m)."""
        return self.die_length / self.n_cols

    @property
    def cell_width(self) -> float:
        """Cell extent across the flow direction (m)."""
        return self.die_width / self.n_rows

    @property
    def cell_area(self) -> float:
        """Plan-view area of one cell (m^2)."""
        return self.cell_length * self.cell_width

    def x_centers(self) -> np.ndarray:
        """x coordinates of the cell centers (m), shape ``(n_cols,)``."""
        return (np.arange(self.n_cols) + 0.5) * self.cell_length

    def y_centers(self) -> np.ndarray:
        """y coordinates of the cell centers (m), shape ``(n_rows,)``."""
        return (np.arange(self.n_rows) + 0.5) * self.cell_width

    def layer_index(self, name: str) -> int:
        """Index of the layer with the given name."""
        for index, layer in enumerate(self.layers):
            if layer.name == name:
                return index
        raise KeyError(f"no layer named {name!r}")

    def layer(self, name: str) -> Union[SolidLayer, CavityLayer]:
        """The layer with the given name."""
        return self.layers[self.layer_index(name)]

    def solid_layer_names(self) -> List[str]:
        """Names of the solid layers, bottom-up."""
        return [layer.name for layer in self.layers if not layer.is_cavity]

    def cavity_layer_names(self) -> List[str]:
        """Names of the cavity layers, bottom-up."""
        return [layer.name for layer in self.layers if layer.is_cavity]

    def channels_per_cavity(self) -> int:
        """Number of physical channels spanning the die width."""
        cavities = [layer for layer in self.layers if layer.is_cavity]
        if not cavities:
            return 0
        pitch = cavities[0].channel_pitch
        return max(int(round(self.die_width / pitch)), 1)


def _resample_map(source: np.ndarray, n_rows: int, n_cols: int) -> np.ndarray:
    """Nearest-neighbour resampling of a heat map onto the cell grid."""
    rows = np.clip(
        (np.arange(n_rows) + 0.5) / n_rows * source.shape[0], 0, source.shape[0] - 1
    ).astype(int)
    cols = np.clip(
        (np.arange(n_cols) + 0.5) / n_cols * source.shape[1], 0, source.shape[1] - 1
    ).astype(int)
    return source[np.ix_(rows, cols)]
