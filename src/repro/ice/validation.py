"""Cross-validation between the finite-volume simulator and the analytical model.

The paper states that its analytical state-space model was validated against
the 3D-ICE numerical simulator.  This module reproduces that step inside the
library: a narrow strip of the finite-volume model (one channel pitch wide)
is compared against the single-channel analytical BVP solution for the same
heat input, geometry and flow settings.  The comparison is exposed both as a
callable (used by the integration tests) and as a small report structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..config import DEFAULT_EXPERIMENT, ExperimentConfig
from ..thermal.bvp import solve_trapezoidal
from ..thermal.geometry import (
    ChannelGeometry,
    HeatInputProfile,
    TestStructure,
    WidthProfile,
)
from .builders import two_die_stack_from_maps
from .solver import SteadyStateSolver

__all__ = ["ValidationReport", "validate_against_analytical"]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one analytical-vs-finite-volume comparison.

    Attributes
    ----------
    max_abs_error:
        Maximum absolute difference between the column-mean finite-volume
        die temperature and the analytical layer temperature (K).
    rms_error:
        Root-mean-square of the same difference (K).
    analytical_gradient / simulator_gradient:
        The max-min thermal gradients of the two models (K).
    coolant_rise_error:
        Difference in the coolant inlet-to-outlet temperature rise (K).
    """

    max_abs_error: float
    rms_error: float
    analytical_gradient: float
    simulator_gradient: float
    coolant_rise_error: float

    def as_dict(self) -> Dict[str, float]:
        """Plain dictionary (for reports and EXPERIMENTS.md tables)."""
        return {
            "max_abs_error_K": self.max_abs_error,
            "rms_error_K": self.rms_error,
            "analytical_gradient_K": self.analytical_gradient,
            "simulator_gradient_K": self.simulator_gradient,
            "coolant_rise_error_K": self.coolant_rise_error,
        }


def validate_against_analytical(
    flux_w_per_cm2: float = 50.0,
    channel_width: float = None,
    config: ExperimentConfig = DEFAULT_EXPERIMENT,
    n_cols: int = 80,
) -> ValidationReport:
    """Compare the finite-volume and analytical models on a uniform strip.

    A strip one channel pitch wide with a uniform areal heat flux on both
    dies is solved with (a) the analytical single-channel BVP and (b) the
    finite-volume simulator restricted to a single row of cells.  Because
    the strip has no lateral variation, the two models describe exactly the
    same physics and should agree closely; the report quantifies how
    closely.
    """
    params = config.params
    if channel_width is None:
        channel_width = params.max_channel_width
    geometry = ChannelGeometry.from_parameters(params)
    width_profile = WidthProfile.uniform(channel_width, geometry.length)
    heat = HeatInputProfile.from_areal_flux(
        flux_w_per_cm2, geometry.pitch, geometry.length
    )
    structure = TestStructure(
        geometry=geometry,
        width_profile=width_profile,
        heat_top=heat,
        heat_bottom=heat,
        silicon=params.silicon,
        coolant=params.coolant,
        flow_rate=params.flow_rate_per_channel,
        inlet_temperature=params.inlet_temperature,
    )
    analytical = solve_trapezoidal(structure, n_points=max(n_cols * 4 + 1, 201))

    stack = two_die_stack_from_maps(
        flux_w_per_cm2,
        flux_w_per_cm2,
        die_length=geometry.length,
        die_width=geometry.pitch,
        config=config,
        n_cols=n_cols,
        n_rows=1,
        width_profile=width_profile,
    )
    simulator = SteadyStateSolver(stack).solve()

    x_centers = stack.x_centers()
    analytical_top = np.interp(
        x_centers, analytical.z, analytical.temperatures[0, 0]
    )
    simulated_top = simulator.layer("top_die")[0]
    error = simulated_top - analytical_top

    coolant_map = simulator.coolant_maps["cavity"][0]
    simulator_rise = float(coolant_map[-1] - params.inlet_temperature)

    return ValidationReport(
        max_abs_error=float(np.max(np.abs(error))),
        rms_error=float(np.sqrt(np.mean(error**2))),
        analytical_gradient=analytical.thermal_gradient,
        simulator_gradient=simulator.thermal_gradient("top_die"),
        coolant_rise_error=float(
            simulator_rise - analytical.coolant_temperature_rise
        ),
    )
