"""Finite-volume compact thermal simulator (3D-ICE-like substrate).

A grid-based steady-state and transient thermal simulator for liquid-cooled
3D stacks: solid layers with conduction and heat sources, microchannel
cavity layers with convection and coolant advection, adiabatic outer
surfaces.  It plays the role 3D-ICE plays in the paper -- validating the
analytical model and rendering the full-die thermal maps of Figs. 1 and 9.
"""

from .stack import CavityLayer, LayerStack, SolidLayer
from .results import ThermalMapResult, TransientResult
from .solver import (
    AssembledSystem,
    StackPattern,
    SteadyStateSolver,
    assemble_system,
    assemble_system_loop,
    clear_stack_pattern_cache,
    stack_pattern_cache_info,
)
from .transient import TransientSolver
from .builders import (
    multi_die_stack_from_architecture,
    multi_die_stack_from_maps,
    two_die_stack_from_architecture,
    two_die_stack_from_floorplans,
    two_die_stack_from_maps,
)
from .validation import ValidationReport, validate_against_analytical

__all__ = [
    "CavityLayer",
    "LayerStack",
    "SolidLayer",
    "ThermalMapResult",
    "TransientResult",
    "AssembledSystem",
    "StackPattern",
    "SteadyStateSolver",
    "TransientSolver",
    "assemble_system",
    "assemble_system_loop",
    "clear_stack_pattern_cache",
    "stack_pattern_cache_info",
    "multi_die_stack_from_architecture",
    "multi_die_stack_from_maps",
    "two_die_stack_from_architecture",
    "two_die_stack_from_floorplans",
    "two_die_stack_from_maps",
    "ValidationReport",
    "validate_against_analytical",
]
