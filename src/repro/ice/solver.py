"""Steady-state finite-volume solver for layer stacks.

The solver discretizes each layer of a :class:`~repro.ice.stack.LayerStack`
into ``n_rows x n_cols`` cells and assembles one energy balance per cell:

* solid cells exchange heat by conduction with their four lateral
  neighbours and with the cells directly above/below (series combination of
  the half-layer resistances), and receive the layer's heat-source map;
* cavity cells contain both the solid channel walls (vertical conduction
  between the neighbouring dies through the wall fraction ``1 - w_C/W``)
  and a coolant node.  The coolant node exchanges heat by convection with
  the die cells above and below (heat-transfer coefficient from the Shah &
  London correlations, wetted area of the channels crossing the cell) and
  advects enthalpy downstream along ``x`` with the capacity rate of the
  channels crossing the cell;
* all outer surfaces are adiabatic, exactly as in the analytical model, so
  the coolant is the only heat sink.

This mirrors the structure of the 3D-ICE compact model used by the paper
for validation and map rendering while remaining a few hundred lines of
Python.  The resulting sparse linear system is solved with SuperLU.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve

from ..thermal import correlations
from .results import ThermalMapResult
from .stack import CavityLayer, LayerStack, SolidLayer

__all__ = ["SteadyStateSolver", "AssembledSystem"]


class AssembledSystem:
    """The assembled sparse system ``A T = b`` plus the cell bookkeeping.

    Exposed separately so that the transient solver can reuse the exact same
    conduction/convection/advection matrix and only add capacitances.
    """

    def __init__(self, stack: LayerStack) -> None:
        self.stack = stack
        self.n_cells_per_layer = stack.n_rows * stack.n_cols
        self.n_unknowns = stack.n_layers * self.n_cells_per_layer
        self._rows: List[int] = []
        self._cols: List[int] = []
        self._values: List[float] = []
        self.rhs = np.zeros(self.n_unknowns)
        self.capacitances = np.zeros(self.n_unknowns)
        self._assemble()

    # -- indexing ----------------------------------------------------------------

    def index(self, layer: int, row: int, col: int) -> int:
        """Flat unknown index of cell ``(row, col)`` of ``layer``."""
        return (layer * self.stack.n_rows + row) * self.stack.n_cols + col

    def _add(self, row: int, col: int, value: float) -> None:
        if value != 0.0:
            self._rows.append(row)
            self._cols.append(col)
            self._values.append(value)

    # -- conductance helpers ---------------------------------------------------------

    def _vertical_conductance_between(
        self, lower: Union[SolidLayer, CavityLayer], upper: Union[SolidLayer, CavityLayer]
    ) -> float:
        """Solid-solid vertical conductance per cell between adjacent layers (W/K)."""
        area = self.stack.cell_area
        resistance = 0.0
        for layer in (lower, upper):
            if layer.is_cavity:
                raise ValueError("use the cavity coupling for cavity layers")
            resistance += layer.thickness / (
                2.0 * layer.material.thermal_conductivity * area
            )
        return 1.0 / resistance

    def _lateral_conductances(self, layer: SolidLayer) -> Tuple[float, float]:
        """(x-direction, y-direction) lateral conductances per cell face (W/K)."""
        k = layer.material.thermal_conductivity
        t = layer.thickness
        g_x = k * t * self.stack.cell_width / self.stack.cell_length
        g_y = k * t * self.stack.cell_length / self.stack.cell_width
        return g_x, g_y

    # -- assembly -------------------------------------------------------------------------

    def _assemble(self) -> None:
        stack = self.stack
        n_rows, n_cols = stack.n_rows, stack.n_cols
        cell_area = stack.cell_area
        x_centers = stack.x_centers()

        for layer_idx, layer in enumerate(stack.layers):
            if layer.is_cavity:
                self._assemble_cavity_layer(layer_idx, layer, x_centers)
            else:
                self._assemble_solid_layer(layer_idx, layer)

        # Vertical coupling between directly adjacent solid layers (no cavity
        # in between).
        for lower_idx in range(stack.n_layers - 1):
            lower = stack.layers[lower_idx]
            upper = stack.layers[lower_idx + 1]
            if lower.is_cavity or upper.is_cavity:
                continue
            g_vertical = self._vertical_conductance_between(lower, upper)
            for row in range(n_rows):
                for col in range(n_cols):
                    a = self.index(lower_idx, row, col)
                    b = self.index(lower_idx + 1, row, col)
                    self._add(a, a, g_vertical)
                    self._add(a, b, -g_vertical)
                    self._add(b, b, g_vertical)
                    self._add(b, a, -g_vertical)

    def _assemble_solid_layer(self, layer_idx: int, layer: SolidLayer) -> None:
        stack = self.stack
        n_rows, n_cols = stack.n_rows, stack.n_cols
        g_x, g_y = self._lateral_conductances(layer)
        heat = layer.heat_map(n_rows, n_cols) * 1e4 * stack.cell_area  # W per cell
        capacitance = (
            layer.material.volumetric_heat_capacity
            * layer.thickness
            * stack.cell_area
        )
        for row in range(n_rows):
            for col in range(n_cols):
                here = self.index(layer_idx, row, col)
                self.rhs[here] += heat[row, col]
                self.capacitances[here] = capacitance
                if col + 1 < n_cols:
                    neighbour = self.index(layer_idx, row, col + 1)
                    self._add(here, here, g_x)
                    self._add(here, neighbour, -g_x)
                    self._add(neighbour, neighbour, g_x)
                    self._add(neighbour, here, -g_x)
                if row + 1 < n_rows:
                    neighbour = self.index(layer_idx, row + 1, col)
                    self._add(here, here, g_y)
                    self._add(here, neighbour, -g_y)
                    self._add(neighbour, neighbour, g_y)
                    self._add(neighbour, here, -g_y)

    def _assemble_cavity_layer(
        self, layer_idx: int, layer: CavityLayer, x_centers: np.ndarray
    ) -> None:
        stack = self.stack
        n_rows, n_cols = stack.n_rows, stack.n_cols
        lower_idx, upper_idx = layer_idx - 1, layer_idx + 1
        lower = stack.layers[lower_idx]
        upper = stack.layers[upper_idx]
        if lower.is_cavity or upper.is_cavity:
            raise ValueError("a cavity layer must sit between two solid layers")

        n_channels = stack.channels_per_cavity()
        channels_per_row = n_channels / n_rows
        widths = layer.widths_for_channels(n_channels, stack.die_length, x_centers)
        # Average channel width seen by each cell row (channels are grouped
        # uniformly onto the rows of the cell grid).
        row_of_channel = np.minimum(
            (np.arange(n_channels) * n_rows) // max(n_channels, 1), n_rows - 1
        )
        row_widths = np.zeros((n_rows, n_cols))
        counts = np.zeros(n_rows)
        for channel in range(n_channels):
            row_widths[row_of_channel[channel]] += widths[channel]
            counts[row_of_channel[channel]] += 1
        counts[counts == 0] = 1.0
        row_widths /= counts[:, None]

        capacity_rate_cell = (
            layer.coolant.volumetric_heat_capacity
            * layer.flow_rate_per_channel
            * channels_per_row
        )
        fluid_capacitance = (
            layer.coolant.volumetric_heat_capacity
            * layer.channel_height
            * stack.cell_area
        )

        for row in range(n_rows):
            for col in range(n_cols):
                width = float(row_widths[row, col])
                coolant_node = self.index(layer_idx, row, col)
                below_node = self.index(lower_idx, row, col)
                above_node = self.index(upper_idx, row, col)
                self.capacitances[coolant_node] = fluid_capacitance

                # Convective conductance channel->coolant for the channels
                # crossing this cell, per adjacent die (half of the wetted
                # perimeter each), in series with the half-thickness
                # conduction of the adjacent solid layer.
                h = correlations.heat_transfer_coefficient(
                    width, layer.channel_height, layer.coolant
                )
                wetted_per_layer = (width + layer.channel_height) * (
                    stack.cell_length * channels_per_row
                )
                g_convection = h * wetted_per_layer
                for solid_idx, solid_node in (
                    (lower_idx, below_node),
                    (upper_idx, above_node),
                ):
                    solid = stack.layers[solid_idx]
                    half_resistance = solid.thickness / (
                        2.0
                        * solid.material.thermal_conductivity
                        * stack.cell_area
                    )
                    g_total = 1.0 / (half_resistance + 1.0 / g_convection)
                    self._add(solid_node, solid_node, g_total)
                    self._add(solid_node, coolant_node, -g_total)
                    self._add(coolant_node, coolant_node, g_total)
                    self._add(coolant_node, solid_node, -g_total)

                # Vertical conduction through the solid channel walls
                # (fraction 1 - w/W of the cell footprint), connecting the
                # two dies directly.
                wall_fraction = max(1.0 - width / layer.channel_pitch, 0.0)
                if wall_fraction > 0.0:
                    wall_area = wall_fraction * stack.cell_area
                    resistance = (
                        lower.thickness
                        / (2.0 * lower.material.thermal_conductivity * wall_area)
                        + layer.channel_height
                        / (layer.wall_material.thermal_conductivity * wall_area)
                        + upper.thickness
                        / (2.0 * upper.material.thermal_conductivity * wall_area)
                    )
                    g_wall = 1.0 / resistance
                    self._add(below_node, below_node, g_wall)
                    self._add(below_node, above_node, -g_wall)
                    self._add(above_node, above_node, g_wall)
                    self._add(above_node, below_node, -g_wall)

                # Coolant advection (upwind along +x).
                self._add(coolant_node, coolant_node, capacity_rate_cell)
                if col == 0:
                    self.rhs[coolant_node] += (
                        capacity_rate_cell * layer.inlet_temperature
                    )
                else:
                    upstream = self.index(layer_idx, row, col - 1)
                    self._add(coolant_node, upstream, -capacity_rate_cell)

    # -- matrix access -----------------------------------------------------------------------

    def matrix(self) -> sparse.csr_matrix:
        """The assembled steady-state matrix ``A`` (CSR)."""
        return sparse.csr_matrix(
            (self._values, (self._rows, self._cols)),
            shape=(self.n_unknowns, self.n_unknowns),
        )

    def split_solution(self, vector: np.ndarray) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
        """Split a flat solution vector into per-layer maps."""
        stack = self.stack
        layer_maps: Dict[str, np.ndarray] = {}
        coolant_maps: Dict[str, np.ndarray] = {}
        for layer_idx, layer in enumerate(stack.layers):
            start = self.index(layer_idx, 0, 0)
            stop = start + self.n_cells_per_layer
            grid = vector[start:stop].reshape(stack.n_rows, stack.n_cols)
            if layer.is_cavity:
                coolant_maps[layer.name] = grid
            else:
                layer_maps[layer.name] = grid
        return layer_maps, coolant_maps


class SteadyStateSolver:
    """Solve the steady-state temperature field of a layer stack."""

    def __init__(self, stack: LayerStack) -> None:
        self.stack = stack
        self.system = AssembledSystem(stack)

    def solve(self) -> ThermalMapResult:
        """Assemble and solve ``A T = b``; return per-layer thermal maps."""
        matrix = self.system.matrix()
        solution = spsolve(matrix.tocsc(), self.system.rhs)
        if not np.all(np.isfinite(solution)):
            raise RuntimeError("steady-state solve produced non-finite values")
        residual = matrix @ solution - self.system.rhs
        layer_maps, coolant_maps = self.system.split_solution(solution)
        return ThermalMapResult(
            layer_maps=layer_maps,
            coolant_maps=coolant_maps,
            metadata={
                "solver": "ice-steady",
                "n_unknowns": self.system.n_unknowns,
                "grid": (self.stack.n_rows, self.stack.n_cols),
                "residual_norm": float(np.max(np.abs(residual))),
            },
        )
