"""Steady-state finite-volume solver for layer stacks.

The solver discretizes each layer of a :class:`~repro.ice.stack.LayerStack`
into ``n_rows x n_cols`` cells and assembles one energy balance per cell:

* solid cells exchange heat by conduction with their four lateral
  neighbours and with the cells directly above/below (series combination of
  the half-layer resistances), and receive the layer's heat-source map;
* cavity cells contain both the solid channel walls (vertical conduction
  between the neighbouring dies through the wall fraction ``1 - w_C/W``)
  and a coolant node.  The coolant node exchanges heat by convection with
  the die cells above and below (heat-transfer coefficient from the Shah &
  London correlations, wetted area of the channels crossing the cell) and
  advects enthalpy downstream along ``x`` with the capacity rate of the
  channels crossing the cell;
* all outer surfaces are adiabatic, exactly as in the analytical model, so
  the coolant is the only heat sink.

This mirrors the structure of the 3D-ICE compact model used by the paper
for validation and map rendering.

Two assembly routes are provided, mirroring :mod:`repro.thermal.assembly`:

* :func:`assemble_system` (the default ``AssembledSystem(stack)``) -- the
  production path.  All coefficient (COO) triplets are produced with
  vectorized NumPy operations in the exact emission order of the reference
  loop (including the vectorized Shah & London ``heat_transfer_coefficient``
  over the per-cell channel widths), and the sparsity structure -- which
  depends only on the stack shape, the layer kinds and the zero-coefficient
  mask -- is folded once per shape and cached as a :class:`StackPattern`.
  Repeated assemblies of the same stack shape (width sweeps, an optimizer
  in the loop, transient re-runs) only recompute the coefficient values.
* :func:`assemble_system_loop` -- the original triple-nested Python-loop
  assembly, kept verbatim as the reference implementation for the
  equivalence test suite and the scaling benchmark.

Both routes produce bit-identical matrices, right-hand sides and
capacitance vectors (the equivalence suite asserts exact equality).  The
linear systems are solved through the pluggable backends of
:mod:`repro.thermal.backends` (SuperLU with factorization reuse by
default), selected per solver via the ``backend`` argument.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple, Union

import numpy as np
from scipy import sparse

from ..core.linear_system import PatternCache, SparsityFold
from ..thermal import correlations
from ..thermal.backends import SolverBackend, resolve_backend
from .results import ThermalMapResult
from .stack import CavityLayer, LayerStack, SolidLayer

__all__ = [
    "AssembledSystem",
    "StackPattern",
    "SteadyStateSolver",
    "assemble_system",
    "assemble_system_loop",
    "clear_stack_pattern_cache",
    "stack_pattern_cache_info",
]

#: Assembly routes accepted by :class:`AssembledSystem`.
ASSEMBLY_MODES: Tuple[str, ...] = ("vectorized", "loop")


class StackPattern:
    """Precomputed sparsity fold of the finite-volume system for one shape.

    The pattern owns the canonical CSR index arrays and the scatter map
    from raw COO entry order to CSR data slots, so refreshing a system for
    new channel widths or heat maps is a single :func:`numpy.add.at` into a
    preallocated data array -- no sorting, no duplicate folding, and a
    bit-identical structure across solves (which the solver backends use to
    recognize repeated matrices and reuse factorizations).
    """

    def __init__(
        self, token: tuple, rows: np.ndarray, cols: np.ndarray, n_unknowns: int
    ) -> None:
        #: Hashable identity of this pattern (stack shape + layer kinds +
        #: a digest of the zero-coefficient mask).
        self.token = token
        self.n_unknowns = int(n_unknowns)
        #: Canonical fold of the raw triplet stream (shared machinery with
        #: the finite-difference cavity model).
        self.fold = SparsityFold(rows, cols, self.n_unknowns)
        self.n_entries = self.fold.n_entries
        self.nnz = self.fold.nnz

    def matrix(self, values: np.ndarray) -> sparse.csr_matrix:
        """Fold raw COO values into a CSR matrix with the static structure."""
        return self.fold.matrix(values)


_PATTERN_CACHE_SIZE = 32
_PATTERN_CACHE = PatternCache(_PATTERN_CACHE_SIZE)


def _get_stack_pattern(
    token: tuple, rows: np.ndarray, cols: np.ndarray, n_unknowns: int
) -> StackPattern:
    """Fetch (or build and cache) the fold for one stack shape."""
    return _PATTERN_CACHE.get_or_build(
        token, lambda: StackPattern(token, rows, cols, n_unknowns)
    )


def clear_stack_pattern_cache() -> None:
    """Drop every cached stack pattern (used by tests and benchmarks)."""
    _PATTERN_CACHE.clear()


def stack_pattern_cache_info() -> dict:
    """Current size and keys of the stack-pattern cache."""
    return _PATTERN_CACHE.info()


class AssembledSystem:
    """The assembled sparse system ``A T = b`` plus the cell bookkeeping.

    Exposed separately so that the transient solver can reuse the exact same
    conduction/convection/advection matrix and only add capacitances.

    Parameters
    ----------
    stack:
        The layer stack to assemble.
    method:
        ``"vectorized"`` (default, NumPy whole-array triplet construction
        over the cached :class:`StackPattern`) or ``"loop"`` (the original
        triple-nested reference loops).  Both produce bit-identical
        systems.
    coolant_films:
        Optional mapping of cavity layer index to a film coolant record
        (an array-valued :class:`~repro.thermal.properties.CoolantState`)
        used *only* for the Shah & London heat-transfer-coefficient
        evaluation of that cavity.  The capacity rate, inlet enthalpy rhs
        and fluid capacitance keep the layer's own constant coolant, so
        the sparsity mask -- and hence the cached pattern token -- is
        unchanged and each Picard iteration is a pure value refresh.
        Vectorized assembly only.
    """

    def __init__(
        self,
        stack: LayerStack,
        method: str = "vectorized",
        coolant_films: Optional[Dict[int, object]] = None,
    ) -> None:
        if method not in ASSEMBLY_MODES:
            raise ValueError(
                f"method must be one of {list(ASSEMBLY_MODES)}, got {method!r}"
            )
        if coolant_films and method != "vectorized":
            raise ValueError(
                "coolant film overrides require the vectorized assembly"
            )
        self.stack = stack
        self.method = method
        self.coolant_films = coolant_films or {}
        self.n_cells_per_layer = stack.n_rows * stack.n_cols
        self.n_unknowns = stack.n_layers * self.n_cells_per_layer
        self._rows: List[int] = []
        self._cols: List[int] = []
        self._values: List[float] = []
        self.rhs = np.zeros(self.n_unknowns)
        self.capacitances = np.zeros(self.n_unknowns)
        self._pattern: Optional[StackPattern] = None
        self._raw_values: Optional[np.ndarray] = None
        if method == "vectorized":
            self._assemble_vectorized()
        else:
            self._assemble_loop()

    # -- indexing ----------------------------------------------------------------

    def index(self, layer: int, row: int, col: int) -> int:
        """Flat unknown index of cell ``(row, col)`` of ``layer``."""
        return (layer * self.stack.n_rows + row) * self.stack.n_cols + col

    def _add(self, row: int, col: int, value: float) -> None:
        if value != 0.0:
            self._rows.append(row)
            self._cols.append(col)
            self._values.append(value)

    # -- conductance helpers ---------------------------------------------------------

    def _vertical_conductance_between(
        self, lower: Union[SolidLayer, CavityLayer], upper: Union[SolidLayer, CavityLayer]
    ) -> float:
        """Solid-solid vertical conductance per cell between adjacent layers (W/K)."""
        area = self.stack.cell_area
        resistance = 0.0
        for layer in (lower, upper):
            if layer.is_cavity:
                raise ValueError("use the cavity coupling for cavity layers")
            resistance += layer.thickness / (
                2.0 * layer.material.thermal_conductivity * area
            )
        return 1.0 / resistance

    def _lateral_conductances(self, layer: SolidLayer) -> Tuple[float, float]:
        """(x-direction, y-direction) lateral conductances per cell face (W/K)."""
        k = layer.material.thermal_conductivity
        t = layer.thickness
        g_x = k * t * self.stack.cell_width / self.stack.cell_length
        g_y = k * t * self.stack.cell_length / self.stack.cell_width
        return g_x, g_y

    def _cavity_row_widths(
        self, layer: CavityLayer, x_centers: np.ndarray
    ) -> Tuple[np.ndarray, float]:
        """Average channel width per cell and channels crossing each row.

        Channels are grouped uniformly onto the rows of the cell grid; each
        cell sees the mean width of the channels assigned to its row.
        """
        stack = self.stack
        n_rows, n_cols = stack.n_rows, stack.n_cols
        n_channels = stack.channels_per_cavity()
        channels_per_row = n_channels / n_rows
        widths = layer.widths_for_channels(n_channels, stack.die_length, x_centers)
        row_of_channel = np.minimum(
            (np.arange(n_channels) * n_rows) // max(n_channels, 1), n_rows - 1
        )
        row_widths = np.zeros((n_rows, n_cols))
        counts = np.zeros(n_rows)
        for channel in range(n_channels):
            row_widths[row_of_channel[channel]] += widths[channel]
            counts[row_of_channel[channel]] += 1
        counts[counts == 0] = 1.0
        row_widths /= counts[:, None]
        return row_widths, channels_per_row

    # -- vectorized assembly -----------------------------------------------------

    def _assemble_vectorized(self) -> None:
        """Whole-array triplet construction in the loop's emission order.

        Every layer contributes a ``(n_rows, n_cols, n_slots)`` block of
        row/column/value candidates whose C-order ravel reproduces the
        per-cell emission order of the reference loop exactly; structurally
        absent entries (last-column/last-row neighbours, the inlet upstream
        slot, zero wall fractions) are removed by a boolean mask, as is any
        exactly-zero coefficient (matching ``_add``'s skip).  The surviving
        entries are therefore element-for-element identical to the loop's
        triplet stream, which makes the folded matrix bit-identical to the
        loop-assembled one.
        """
        stack = self.stack
        x_centers = stack.x_centers()
        kinds: List[str] = []
        rows_parts: List[np.ndarray] = []
        cols_parts: List[np.ndarray] = []
        vals_parts: List[np.ndarray] = []
        mask_parts: List[np.ndarray] = []

        def emit(rows, cols, vals, mask):
            rows_parts.append(rows.reshape(-1))
            cols_parts.append(cols.reshape(-1))
            vals_parts.append(vals.reshape(-1))
            mask_parts.append(mask.reshape(-1))

        for layer_idx, layer in enumerate(stack.layers):
            if layer.is_cavity:
                kinds.append("cavity")
                emit(*self._cavity_triplets(layer_idx, layer, x_centers))
            else:
                kinds.append("solid")
                emit(*self._solid_triplets(layer_idx, layer))

        # Vertical coupling between directly adjacent solid layers (no cavity
        # in between).
        for lower_idx in range(stack.n_layers - 1):
            lower = stack.layers[lower_idx]
            upper = stack.layers[lower_idx + 1]
            if lower.is_cavity or upper.is_cavity:
                continue
            emit(*self._vertical_triplets(lower_idx, lower, upper))

        rows = np.concatenate(rows_parts)
        cols = np.concatenate(cols_parts)
        values = np.concatenate(vals_parts)
        mask = np.concatenate(mask_parts)
        mask &= values != 0.0
        digest = hashlib.blake2b(
            np.packbits(mask).tobytes(), digest_size=16
        ).hexdigest()
        token = ("ice", stack.n_rows, stack.n_cols, tuple(kinds), digest)
        self._pattern = _get_stack_pattern(
            token, rows[mask], cols[mask], self.n_unknowns
        )
        self._raw_values = values[mask]

    def _cell_indices(self, layer_idx: int) -> np.ndarray:
        """Flat unknown indices of one layer's cells, shape ``(n_rows, n_cols)``."""
        stack = self.stack
        offset = layer_idx * self.n_cells_per_layer
        return offset + np.arange(self.n_cells_per_layer).reshape(
            stack.n_rows, stack.n_cols
        )

    def _solid_triplets(self, layer_idx: int, layer: SolidLayer):
        """Lateral-conduction triplet block of one solid layer (8 slots/cell)."""
        stack = self.stack
        n_rows, n_cols = stack.n_rows, stack.n_cols
        g_x, g_y = self._lateral_conductances(layer)
        heat = layer.heat_map(n_rows, n_cols) * 1e4 * stack.cell_area  # W per cell
        capacitance = (
            layer.material.volumetric_heat_capacity
            * layer.thickness
            * stack.cell_area
        )
        start = layer_idx * self.n_cells_per_layer
        stop = start + self.n_cells_per_layer
        self.rhs[start:stop] += heat.reshape(-1)
        self.capacitances[start:stop] = capacitance

        here = self._cell_indices(layer_idx)
        east = here + 1
        south = here + n_cols
        rows = np.stack(
            [here, here, east, east, here, here, south, south], axis=-1
        )
        cols = np.stack(
            [here, east, east, here, here, south, south, here], axis=-1
        )
        vals = np.empty((n_rows, n_cols, 8))
        vals[..., 0] = g_x
        vals[..., 1] = -g_x
        vals[..., 2] = g_x
        vals[..., 3] = -g_x
        vals[..., 4] = g_y
        vals[..., 5] = -g_y
        vals[..., 6] = g_y
        vals[..., 7] = -g_y
        has_east = np.arange(n_cols)[None, :, None] + 1 < n_cols
        has_south = np.arange(n_rows)[:, None, None] + 1 < n_rows
        mask = np.empty((n_rows, n_cols, 8), dtype=bool)
        mask[..., :4] = has_east
        mask[..., 4:] = has_south
        return rows, cols, vals, mask

    def _cavity_triplets(
        self, layer_idx: int, layer: CavityLayer, x_centers: np.ndarray
    ):
        """Convection/wall/advection triplet block of one cavity (14 slots/cell)."""
        stack = self.stack
        n_rows, n_cols = stack.n_rows, stack.n_cols
        lower_idx, upper_idx = layer_idx - 1, layer_idx + 1
        lower = stack.layers[lower_idx]
        upper = stack.layers[upper_idx]
        if lower.is_cavity or upper.is_cavity:
            raise ValueError("a cavity layer must sit between two solid layers")

        row_widths, channels_per_row = self._cavity_row_widths(layer, x_centers)
        capacity_rate_cell = (
            layer.coolant.volumetric_heat_capacity
            * layer.flow_rate_per_channel
            * channels_per_row
        )
        fluid_capacitance = (
            layer.coolant.volumetric_heat_capacity
            * layer.channel_height
            * stack.cell_area
        )
        start = layer_idx * self.n_cells_per_layer
        self.capacitances[start : start + self.n_cells_per_layer] = fluid_capacitance

        coolant = self._cell_indices(layer_idx)
        below = coolant - self.n_cells_per_layer
        above = coolant + self.n_cells_per_layer
        self.rhs[coolant[:, 0]] += capacity_rate_cell * layer.inlet_temperature

        # Convective conductance channel->coolant for the channels crossing
        # each cell, per adjacent die (half of the wetted perimeter each), in
        # series with the half-thickness conduction of the adjacent solid
        # layer.  The Shah & London correlation is evaluated once over the
        # whole per-cell width grid -- against the per-cell film properties
        # when a Picard iteration supplied an override for this cavity.
        h = correlations.heat_transfer_coefficient(
            row_widths,
            layer.channel_height,
            self.coolant_films.get(layer_idx, layer.coolant),
        )
        wetted_per_layer = (row_widths + layer.channel_height) * (
            stack.cell_length * channels_per_row
        )
        g_convection = h * wetted_per_layer
        g_solid = []
        for solid in (lower, upper):
            half_resistance = solid.thickness / (
                2.0 * solid.material.thermal_conductivity * stack.cell_area
            )
            g_solid.append(1.0 / (half_resistance + 1.0 / g_convection))
        g_lower, g_upper = g_solid

        # Vertical conduction through the solid channel walls (fraction
        # 1 - w/W of the cell footprint), connecting the two dies directly.
        wall_fraction = np.maximum(1.0 - row_widths / layer.channel_pitch, 0.0)
        wall_area = wall_fraction * stack.cell_area
        with np.errstate(divide="ignore"):
            resistance = (
                lower.thickness
                / (2.0 * lower.material.thermal_conductivity * wall_area)
                + layer.channel_height
                / (layer.wall_material.thermal_conductivity * wall_area)
                + upper.thickness
                / (2.0 * upper.material.thermal_conductivity * wall_area)
            )
            g_wall = 1.0 / resistance

        upstream = coolant - 1
        rows = np.stack(
            [
                below, below, coolant, coolant,       # convection to the lower die
                above, above, coolant, coolant,       # convection to the upper die
                below, below, above, above,           # wall conduction
                coolant,                              # advection diagonal
                coolant,                              # upwind neighbour
            ],
            axis=-1,
        )
        cols = np.stack(
            [
                below, coolant, coolant, below,
                above, coolant, coolant, above,
                below, above, above, below,
                coolant,
                upstream,
            ],
            axis=-1,
        )
        vals = np.empty((n_rows, n_cols, 14))
        vals[..., 0] = g_lower
        vals[..., 1] = -g_lower
        vals[..., 2] = g_lower
        vals[..., 3] = -g_lower
        vals[..., 4] = g_upper
        vals[..., 5] = -g_upper
        vals[..., 6] = g_upper
        vals[..., 7] = -g_upper
        vals[..., 8] = g_wall
        vals[..., 9] = -g_wall
        vals[..., 10] = g_wall
        vals[..., 11] = -g_wall
        vals[..., 12] = capacity_rate_cell
        vals[..., 13] = -capacity_rate_cell
        mask = np.ones((n_rows, n_cols, 14), dtype=bool)
        mask[..., 8:12] = (wall_fraction > 0.0)[..., None]
        mask[:, 0, 13] = False  # the inlet column has no upstream neighbour
        return rows, cols, vals, mask

    def _vertical_triplets(
        self, lower_idx: int, lower: SolidLayer, upper: SolidLayer
    ):
        """Solid-solid vertical coupling triplet block (4 slots/cell)."""
        stack = self.stack
        g_vertical = self._vertical_conductance_between(lower, upper)
        a = self._cell_indices(lower_idx)
        b = a + self.n_cells_per_layer
        rows = np.stack([a, a, b, b], axis=-1)
        cols = np.stack([a, b, b, a], axis=-1)
        vals = np.empty((stack.n_rows, stack.n_cols, 4))
        vals[..., 0] = g_vertical
        vals[..., 1] = -g_vertical
        vals[..., 2] = g_vertical
        vals[..., 3] = -g_vertical
        mask = np.ones((stack.n_rows, stack.n_cols, 4), dtype=bool)
        return rows, cols, vals, mask

    # -- reference loop assembly --------------------------------------------------

    def _assemble_loop(self) -> None:
        stack = self.stack
        n_rows, n_cols = stack.n_rows, stack.n_cols
        x_centers = stack.x_centers()

        for layer_idx, layer in enumerate(stack.layers):
            if layer.is_cavity:
                self._assemble_cavity_layer(layer_idx, layer, x_centers)
            else:
                self._assemble_solid_layer(layer_idx, layer)

        # Vertical coupling between directly adjacent solid layers (no cavity
        # in between).
        for lower_idx in range(stack.n_layers - 1):
            lower = stack.layers[lower_idx]
            upper = stack.layers[lower_idx + 1]
            if lower.is_cavity or upper.is_cavity:
                continue
            g_vertical = self._vertical_conductance_between(lower, upper)
            for row in range(n_rows):
                for col in range(n_cols):
                    a = self.index(lower_idx, row, col)
                    b = self.index(lower_idx + 1, row, col)
                    self._add(a, a, g_vertical)
                    self._add(a, b, -g_vertical)
                    self._add(b, b, g_vertical)
                    self._add(b, a, -g_vertical)

    def _assemble_solid_layer(self, layer_idx: int, layer: SolidLayer) -> None:
        stack = self.stack
        n_rows, n_cols = stack.n_rows, stack.n_cols
        g_x, g_y = self._lateral_conductances(layer)
        heat = layer.heat_map(n_rows, n_cols) * 1e4 * stack.cell_area  # W per cell
        capacitance = (
            layer.material.volumetric_heat_capacity
            * layer.thickness
            * stack.cell_area
        )
        for row in range(n_rows):
            for col in range(n_cols):
                here = self.index(layer_idx, row, col)
                self.rhs[here] += heat[row, col]
                self.capacitances[here] = capacitance
                if col + 1 < n_cols:
                    neighbour = self.index(layer_idx, row, col + 1)
                    self._add(here, here, g_x)
                    self._add(here, neighbour, -g_x)
                    self._add(neighbour, neighbour, g_x)
                    self._add(neighbour, here, -g_x)
                if row + 1 < n_rows:
                    neighbour = self.index(layer_idx, row + 1, col)
                    self._add(here, here, g_y)
                    self._add(here, neighbour, -g_y)
                    self._add(neighbour, neighbour, g_y)
                    self._add(neighbour, here, -g_y)

    def _assemble_cavity_layer(
        self, layer_idx: int, layer: CavityLayer, x_centers: np.ndarray
    ) -> None:
        stack = self.stack
        n_rows, n_cols = stack.n_rows, stack.n_cols
        lower_idx, upper_idx = layer_idx - 1, layer_idx + 1
        lower = stack.layers[lower_idx]
        upper = stack.layers[upper_idx]
        if lower.is_cavity or upper.is_cavity:
            raise ValueError("a cavity layer must sit between two solid layers")

        row_widths, channels_per_row = self._cavity_row_widths(layer, x_centers)
        capacity_rate_cell = (
            layer.coolant.volumetric_heat_capacity
            * layer.flow_rate_per_channel
            * channels_per_row
        )
        fluid_capacitance = (
            layer.coolant.volumetric_heat_capacity
            * layer.channel_height
            * stack.cell_area
        )

        for row in range(n_rows):
            for col in range(n_cols):
                width = float(row_widths[row, col])
                coolant_node = self.index(layer_idx, row, col)
                below_node = self.index(lower_idx, row, col)
                above_node = self.index(upper_idx, row, col)
                self.capacitances[coolant_node] = fluid_capacitance

                # Convective conductance channel->coolant for the channels
                # crossing this cell, per adjacent die (half of the wetted
                # perimeter each), in series with the half-thickness
                # conduction of the adjacent solid layer.
                h = correlations.heat_transfer_coefficient(
                    width, layer.channel_height, layer.coolant
                )
                wetted_per_layer = (width + layer.channel_height) * (
                    stack.cell_length * channels_per_row
                )
                g_convection = h * wetted_per_layer
                for solid_idx, solid_node in (
                    (lower_idx, below_node),
                    (upper_idx, above_node),
                ):
                    solid = stack.layers[solid_idx]
                    half_resistance = solid.thickness / (
                        2.0
                        * solid.material.thermal_conductivity
                        * stack.cell_area
                    )
                    g_total = 1.0 / (half_resistance + 1.0 / g_convection)
                    self._add(solid_node, solid_node, g_total)
                    self._add(solid_node, coolant_node, -g_total)
                    self._add(coolant_node, coolant_node, g_total)
                    self._add(coolant_node, solid_node, -g_total)

                # Vertical conduction through the solid channel walls
                # (fraction 1 - w/W of the cell footprint), connecting the
                # two dies directly.
                wall_fraction = max(1.0 - width / layer.channel_pitch, 0.0)
                if wall_fraction > 0.0:
                    wall_area = wall_fraction * stack.cell_area
                    resistance = (
                        lower.thickness
                        / (2.0 * lower.material.thermal_conductivity * wall_area)
                        + layer.channel_height
                        / (layer.wall_material.thermal_conductivity * wall_area)
                        + upper.thickness
                        / (2.0 * upper.material.thermal_conductivity * wall_area)
                    )
                    g_wall = 1.0 / resistance
                    self._add(below_node, below_node, g_wall)
                    self._add(below_node, above_node, -g_wall)
                    self._add(above_node, above_node, g_wall)
                    self._add(above_node, below_node, -g_wall)

                # Coolant advection (upwind along +x).
                self._add(coolant_node, coolant_node, capacity_rate_cell)
                if col == 0:
                    self.rhs[coolant_node] += (
                        capacity_rate_cell * layer.inlet_temperature
                    )
                else:
                    upstream = self.index(layer_idx, row, col - 1)
                    self._add(coolant_node, upstream, -capacity_rate_cell)

    # -- matrix access -----------------------------------------------------------------------

    @property
    def pattern_token(self) -> Optional[tuple]:
        """Identity of the sparsity structure (None for loop assembly)."""
        return None if self._pattern is None else self._pattern.token

    @property
    def pattern(self) -> Optional[StackPattern]:
        """The cached sparsity fold (None for loop assembly)."""
        return self._pattern

    def matrix(self) -> sparse.csr_matrix:
        """The assembled steady-state matrix ``A`` (CSR, canonical form)."""
        if self._pattern is not None:
            return self._pattern.matrix(self._raw_values)
        return sparse.csr_matrix(
            (self._values, (self._rows, self._cols)),
            shape=(self.n_unknowns, self.n_unknowns),
        )

    def split_solution(self, vector: np.ndarray) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
        """Split a flat solution vector into per-layer maps."""
        stack = self.stack
        layer_maps: Dict[str, np.ndarray] = {}
        coolant_maps: Dict[str, np.ndarray] = {}
        for layer_idx, layer in enumerate(stack.layers):
            start = self.index(layer_idx, 0, 0)
            stop = start + self.n_cells_per_layer
            grid = vector[start:stop].reshape(stack.n_rows, stack.n_cols)
            if layer.is_cavity:
                coolant_maps[layer.name] = grid
            else:
                layer_maps[layer.name] = grid
        return layer_maps, coolant_maps


def assemble_system(stack: LayerStack) -> AssembledSystem:
    """Vectorized assembly of the finite-volume system (the production path)."""
    return AssembledSystem(stack, method="vectorized")


def assemble_system_loop(stack: LayerStack) -> AssembledSystem:
    """Reference triple-nested-loop assembly (the original implementation).

    Kept verbatim for the equivalence tests and as the baseline of the
    scaling benchmark; production code uses :func:`assemble_system`.
    """
    return AssembledSystem(stack, method="loop")


class SteadyStateSolver:
    """Solve the steady-state temperature field of a layer stack.

    Parameters
    ----------
    stack:
        The layer stack to solve.
    backend:
        Linear-solver backend: a registry name from
        :mod:`repro.thermal.backends` (``"auto"``, ``"sparse-lu"``,
        ``"sparse-iterative"``, ``"dense"``), a backend instance, or None
        for the default (``"auto"``).  The sparse-LU backend reuses its
        cached factorization across repeated solves of an unchanged stack.
    assembly_mode:
        ``"vectorized"`` (default) or ``"loop"`` (the reference assembly,
        retained for equivalence testing and benchmarks).
    coolant_model:
        Optional :class:`~repro.thermal.properties.CoolantModel`.  None or
        a constant-mode model leaves the solve bit-identical to the
        constant-property path; a polynomial model wraps it in a Picard
        outer iteration (:mod:`repro.core.picard`) that refreshes the
        convective conductances from film properties at the per-cell bulk
        coolant temperatures.  Requires the vectorized assembly.
    picard:
        Optional :class:`~repro.core.picard.PicardSettings` convergence
        knobs (defaults apply when omitted).  Ignored for constant models.
    """

    def __init__(
        self,
        stack: LayerStack,
        backend: Union[None, str, SolverBackend] = None,
        assembly_mode: str = "vectorized",
        coolant_model=None,
        picard=None,
    ) -> None:
        self.stack = stack
        self.system = AssembledSystem(stack, method=assembly_mode)
        self.backend = resolve_backend(backend)
        temperature_dependent = (
            coolant_model is not None and not coolant_model.is_constant
        )
        if temperature_dependent and assembly_mode != "vectorized":
            raise ValueError(
                "temperature-dependent coolant models require the vectorized "
                "assembly (the Picard refresh reuses the cached pattern)"
            )
        self.coolant_model = coolant_model if temperature_dependent else None
        self.picard = picard

    def _cavity_slices(self) -> List[Tuple[int, int, int]]:
        """``(layer_idx, start, stop)`` of every cavity layer's cells."""
        slices = []
        for layer_idx, layer in enumerate(self.stack.layers):
            if layer.is_cavity:
                start = self.system.index(layer_idx, 0, 0)
                slices.append(
                    (layer_idx, start, start + self.system.n_cells_per_layer)
                )
        return slices

    def solve(self, compute_residual: bool = True) -> ThermalMapResult:
        """Assemble and solve ``A T = b``; return per-layer thermal maps.

        Parameters
        ----------
        compute_residual:
            Report the max-norm residual of the solve in the result
            metadata.  The residual costs one extra sparse matrix-vector
            product per solve, so hot paths that solve the same stack shape
            repeatedly (width sweeps, benchmarks) pass False; the default
            keeps the diagnostic on for tests and one-off runs.
        """
        matrix = self.system.matrix()
        solution = self.backend.solve(
            matrix, self.system.rhs, self.system.pattern_token
        )
        if not np.all(np.isfinite(solution)):
            raise RuntimeError("steady-state solve produced non-finite values")
        picard_info = None
        if self.coolant_model is not None:
            solution, matrix, picard_info = self._solve_picard(solution)
        metadata = {
            "solver": "ice-steady",
            "backend": self.backend.name,
            "assembly": self.system.method,
            "n_unknowns": self.system.n_unknowns,
            "grid": (self.stack.n_rows, self.stack.n_cols),
        }
        if picard_info is not None:
            metadata["picard"] = picard_info
        if compute_residual:
            residual = matrix @ solution - self.system.rhs
            metadata["residual_norm"] = float(np.max(np.abs(residual)))
        layer_maps, coolant_maps = self.system.split_solution(solution)
        return ThermalMapResult(
            layer_maps=layer_maps,
            coolant_maps=coolant_maps,
            metadata=metadata,
        )

    def _solve_picard(self, base_solution: np.ndarray):
        """Picard outer iteration over the cavity coolant temperatures.

        Each iteration builds a *fresh* :class:`AssembledSystem` with the
        film-property overrides (the rhs is accumulated with ``+=`` during
        assembly, so refreshing an existing system in place would
        double-count it); the sparsity mask is unchanged by construction
        (``h > 0``), so the pattern comes straight from the cache and only
        the value fold plus one backend factorization are paid.
        """
        from ..core.picard import (
            PicardSettings,
            picard_iterate,
            picard_metadata,
        )

        model = self.coolant_model
        settings = (
            self.picard if self.picard is not None else PicardSettings()
        )
        slices = self._cavity_slices()
        stack = self.stack
        shape = (stack.n_rows, stack.n_cols)
        last = {"matrix": None}

        def field_of(vector: np.ndarray) -> np.ndarray:
            return np.concatenate(
                [vector[start:stop] for _, start, stop in slices]
            )

        def refresh(field: np.ndarray):
            films = {}
            offset = 0
            for layer_idx, start, stop in slices:
                cells = field[offset : offset + (stop - start)]
                films[layer_idx] = model.film(cells.reshape(shape))
                offset += stop - start
            refreshed = AssembledSystem(
                stack, method=self.system.method, coolant_films=films
            )
            matrix = refreshed.matrix()
            last["matrix"] = matrix
            vector = self.backend.solve(
                matrix, refreshed.rhs, refreshed.pattern_token
            )
            return vector, field_of(vector)

        outcome = picard_iterate(
            base_solution, field_of(base_solution), refresh, settings
        )
        if outcome.fell_back or last["matrix"] is None:
            matrix = self.system.matrix()
        else:
            matrix = last["matrix"]
        info = picard_metadata(model.name, settings, outcome)
        return outcome.solution, matrix, info
