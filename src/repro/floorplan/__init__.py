"""Floorplans, power models and synthetic workloads.

Provides the block-level UltraSPARC T1 (Niagara-1) floorplan and power
model, the three two-die 3D-MPSoC stackings of Fig. 7, and the Test A /
Test B synthetic workloads of Fig. 4.
"""

from .blocks import Block, Floorplan
from .niagara import (
    DIE_LENGTH,
    DIE_WIDTH,
    compute_die,
    full_niagara_die,
    memory_die,
    mixed_die,
)
from .architectures import (
    ARCHITECTURES,
    Architecture,
    architecture_names,
    get_architecture,
)
from .workloads import (
    TEST_A_FLUX,
    random_die_maps,
    test_a_structure,
    test_b_fluxes,
    test_b_structure,
    uniform_die_maps,
)

__all__ = [
    "Block",
    "Floorplan",
    "DIE_LENGTH",
    "DIE_WIDTH",
    "compute_die",
    "full_niagara_die",
    "memory_die",
    "mixed_die",
    "ARCHITECTURES",
    "Architecture",
    "architecture_names",
    "get_architecture",
    "TEST_A_FLUX",
    "random_die_maps",
    "test_a_structure",
    "test_b_fluxes",
    "test_b_structure",
    "uniform_die_maps",
]
