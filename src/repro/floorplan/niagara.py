"""Approximate UltraSPARC T1 (Niagara-1) floorplan and power model.

The paper builds its 3D-MPSoC case studies (Fig. 7) from the 90 nm
UltraSPARC T1 processor: eight SPARC cores, a banked shared L2 cache, a
crossbar connecting cores and cache banks, a floating-point unit and the
usual I/O and memory-controller periphery.  We do not have the authors'
measured per-block power traces, so this module provides a *behavioural
equivalent*: a block-level floorplan scaled to the paper's die size
(1.0 cm along the coolant flow, 1.1 cm across it) with peak and average
heat-flux densities spanning the 8-64 W/cm^2 range quoted in Sec. V-B.
The qualitative structure that drives the thermal results is preserved:

* compute blocks (SPARC cores) are small, hot (64 W/cm^2 peak) and grouped,
* cache banks are large and cool (~8-10 W/cm^2),
* the crossbar/FPU sit in between (~20-35 W/cm^2),
* the two power scenarios scale the hot blocks by roughly 2x while leaving
  the cool blocks nearly unchanged, which reproduces the peak-vs-average
  contrast of Fig. 8.

The module exposes the individual block groups so the three stacking
architectures of Fig. 7 can shuffle cores and cache banks between the two
dies of the stack.
"""

from __future__ import annotations

from typing import List

from .blocks import Block, Floorplan

__all__ = [
    "DIE_LENGTH",
    "DIE_WIDTH",
    "core_blocks",
    "cache_blocks",
    "interconnect_blocks",
    "periphery_blocks",
    "compute_die",
    "memory_die",
    "mixed_die",
    "full_niagara_die",
]

#: Die extent along the coolant-flow direction (meters) -- 1.0 cm in Sec. V-B.
DIE_LENGTH: float = 1.0e-2
#: Die extent across the flow direction (meters) -- 1.1 cm in Sec. V-B.
DIE_WIDTH: float = 1.1e-2

# Peak / average heat-flux densities (W/cm^2) per block category.  The span
# matches the 8-64 W/cm^2 range given in the paper for the two dies.
_CORE_PEAK, _CORE_AVG = 64.0, 30.0
_CROSSBAR_PEAK, _CROSSBAR_AVG = 36.0, 22.0
_FPU_PEAK, _FPU_AVG = 30.0, 14.0
_CACHE_PEAK, _CACHE_AVG = 10.0, 8.0
_PERIPHERY_PEAK, _PERIPHERY_AVG = 8.0, 6.0
_BACKGROUND = 5.0


def core_blocks(
    count: int = 8,
    x0: float = 0.0,
    y0: float = 0.0,
    region_length: float = DIE_LENGTH,
    region_width: float = DIE_WIDTH,
    prefix: str = "sparc",
) -> List[Block]:
    """SPARC core blocks tiled into a rectangular region.

    Cores are laid out in two rows of ``count / 2`` (matching the Niagara
    die photo where four cores sit along each long edge); for odd counts the
    extra core goes to the first row.
    """
    if count < 1:
        raise ValueError("at least one core is required")
    rows = 2 if count > 1 else 1
    per_row = (count + rows - 1) // rows
    core_width = region_length / per_row
    core_height = region_width / rows
    blocks = []
    for index in range(count):
        row, col = divmod(index, per_row)
        blocks.append(
            Block(
                name=f"{prefix}{index}",
                x=x0 + col * core_width,
                y=y0 + row * core_height,
                width=core_width,
                height=core_height,
                peak_power_density=_CORE_PEAK,
                average_power_density=_CORE_AVG,
                kind="core",
            )
        )
    return blocks


def cache_blocks(
    count: int = 4,
    x0: float = 0.0,
    y0: float = 0.0,
    region_length: float = DIE_LENGTH,
    region_width: float = DIE_WIDTH,
    prefix: str = "l2_bank",
) -> List[Block]:
    """L2 cache bank blocks tiled into a rectangular region (single row)."""
    if count < 1:
        raise ValueError("at least one cache bank is required")
    bank_width = region_length / count
    blocks = []
    for index in range(count):
        blocks.append(
            Block(
                name=f"{prefix}{index}",
                x=x0 + index * bank_width,
                y=y0,
                width=bank_width,
                height=region_width,
                peak_power_density=_CACHE_PEAK,
                average_power_density=_CACHE_AVG,
                kind="cache",
            )
        )
    return blocks


def interconnect_blocks(
    x0: float,
    y0: float,
    region_length: float,
    region_width: float,
) -> List[Block]:
    """Crossbar and FPU blocks filling a central strip."""
    crossbar_length = region_length * 0.7
    return [
        Block(
            name="crossbar",
            x=x0,
            y=y0,
            width=crossbar_length,
            height=region_width,
            peak_power_density=_CROSSBAR_PEAK,
            average_power_density=_CROSSBAR_AVG,
            kind="interconnect",
        ),
        Block(
            name="fpu",
            x=x0 + crossbar_length,
            y=y0,
            width=region_length - crossbar_length,
            height=region_width,
            peak_power_density=_FPU_PEAK,
            average_power_density=_FPU_AVG,
            kind="interconnect",
        ),
    ]


def periphery_blocks(
    x0: float,
    y0: float,
    region_length: float,
    region_width: float,
    prefix: str = "io",
) -> List[Block]:
    """I/O pads, DRAM controllers and miscellaneous periphery."""
    half = region_length / 2.0
    return [
        Block(
            name=f"{prefix}_dram",
            x=x0,
            y=y0,
            width=half,
            height=region_width,
            peak_power_density=_PERIPHERY_PEAK,
            average_power_density=_PERIPHERY_AVG,
            kind="other",
        ),
        Block(
            name=f"{prefix}_misc",
            x=x0 + half,
            y=y0,
            width=region_length - half,
            height=region_width,
            peak_power_density=_PERIPHERY_PEAK,
            average_power_density=_PERIPHERY_AVG,
            kind="other",
        ),
    ]


def compute_die(name: str = "niagara-compute") -> Floorplan:
    """A die holding all eight SPARC cores plus the crossbar and FPU.

    This is die ``A`` of Arch. 1 in Fig. 7: the hottest die of the stack,
    with the cores occupying the two outer bands and the interconnect in the
    central strip.
    """
    core_band = 0.4 * DIE_WIDTH
    middle = DIE_WIDTH - 2.0 * core_band
    blocks = []
    blocks += core_blocks(
        4, x0=0.0, y0=0.0, region_length=DIE_LENGTH, region_width=core_band,
        prefix="sparc_bottom",
    )
    blocks += interconnect_blocks(
        x0=0.0, y0=core_band, region_length=DIE_LENGTH, region_width=middle
    )
    blocks += core_blocks(
        4,
        x0=0.0,
        y0=core_band + middle,
        region_length=DIE_LENGTH,
        region_width=core_band,
        prefix="sparc_top",
    )
    return Floorplan(
        name=name,
        die_length=DIE_LENGTH,
        die_width=DIE_WIDTH,
        blocks=tuple(blocks),
        background_power_density=_BACKGROUND,
    )


def memory_die(name: str = "niagara-memory") -> Floorplan:
    """A die holding the L2 cache banks and the periphery (die ``B`` of Arch. 1)."""
    cache_band = 0.75 * DIE_WIDTH
    blocks = []
    blocks += cache_blocks(
        4, x0=0.0, y0=0.0, region_length=DIE_LENGTH, region_width=cache_band
    )
    blocks += periphery_blocks(
        x0=0.0,
        y0=cache_band,
        region_length=DIE_LENGTH,
        region_width=DIE_WIDTH - cache_band,
    )
    return Floorplan(
        name=name,
        die_length=DIE_LENGTH,
        die_width=DIE_WIDTH,
        blocks=tuple(blocks),
        background_power_density=_BACKGROUND,
    )


def mixed_die(name: str = "niagara-mixed", cores_at_bottom: bool = True) -> Floorplan:
    """A die holding four cores and half of the L2 cache.

    ``cores_at_bottom`` selects which half of the die the core band occupies
    (the lateral ``y`` direction); combining one die of each orientation
    gives the complementary stacking of Arch. 2, while two identical copies
    give the aligned stacking of Arch. 3.
    """
    core_band = 0.45 * DIE_WIDTH
    cache_band = DIE_WIDTH - core_band
    blocks = []
    if cores_at_bottom:
        blocks += core_blocks(
            4, x0=0.0, y0=0.0, region_length=DIE_LENGTH, region_width=core_band,
            prefix="sparc",
        )
        blocks += cache_blocks(
            2,
            x0=0.0,
            y0=core_band,
            region_length=DIE_LENGTH,
            region_width=cache_band,
        )
    else:
        blocks += cache_blocks(
            2, x0=0.0, y0=0.0, region_length=DIE_LENGTH, region_width=cache_band
        )
        blocks += core_blocks(
            4,
            x0=0.0,
            y0=cache_band,
            region_length=DIE_LENGTH,
            region_width=core_band,
            prefix="sparc",
        )
    return Floorplan(
        name=name,
        die_length=DIE_LENGTH,
        die_width=DIE_WIDTH,
        blocks=tuple(blocks),
        background_power_density=_BACKGROUND,
    )


def full_niagara_die(name: str = "niagara-2d") -> Floorplan:
    """A single-die (2D) Niagara floorplan: cores, crossbar, L2 and periphery.

    Used by the Fig. 1(b) benchmark, which shows the thermal map of the
    UltraSPARC T1 power distribution on a liquid-cooled stack.
    """
    core_band = 0.28 * DIE_WIDTH
    interconnect_band = 0.12 * DIE_WIDTH
    cache_band = DIE_WIDTH - 2.0 * core_band - interconnect_band
    y_cursor = 0.0
    blocks = []
    blocks += core_blocks(
        4, x0=0.0, y0=y_cursor, region_length=DIE_LENGTH, region_width=core_band,
        prefix="sparc_bottom",
    )
    y_cursor += core_band
    blocks += cache_blocks(
        4, x0=0.0, y0=y_cursor, region_length=DIE_LENGTH, region_width=cache_band
    )
    y_cursor += cache_band
    blocks += interconnect_blocks(
        x0=0.0, y0=y_cursor, region_length=DIE_LENGTH, region_width=interconnect_band
    )
    y_cursor += interconnect_band
    blocks += core_blocks(
        4, x0=0.0, y0=y_cursor, region_length=DIE_LENGTH, region_width=core_band,
        prefix="sparc_top",
    )
    return Floorplan(
        name=name,
        die_length=DIE_LENGTH,
        die_width=DIE_WIDTH,
        blocks=tuple(blocks),
        background_power_density=_BACKGROUND,
    )
