"""Synthetic heat-flux workloads of the paper's evaluation section.

Three workload families are provided:

* **Test A** (Fig. 4a): a uniform 50 W/cm^2 heat flux applied to both
  active layers of the single-channel test structure.
* **Test B** (Fig. 4b): the strip along the channel is split into equal
  segments and each segment draws a random heat flux in [50, 250] W/cm^2,
  independently for the top and bottom layers.  The paper uses this
  deliberately unrealistic map to stress the optimizer with hotspots placed
  *along* the flow path.
* **Uniform die maps** (Fig. 1a): a whole-die uniform heat flux (the 14 mm
  x 15 mm illustration die with 50 W/cm^2 combined flux), used by the
  finite-volume simulator benchmark.

All generators are deterministic given the seed stored in the experiment
configuration so that tests and benchmarks are reproducible.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..config import DEFAULT_EXPERIMENT, ExperimentConfig
from ..thermal.geometry import (
    ChannelGeometry,
    HeatInputProfile,
    TestStructure,
    WidthProfile,
)

__all__ = [
    "test_a_structure",
    "test_b_structure",
    "test_b_fluxes",
    "uniform_die_maps",
    "random_die_maps",
]

#: Heat flux (W/cm^2) applied to each active layer in Test A.
TEST_A_FLUX: float = 50.0


def _geometry(config: ExperimentConfig) -> ChannelGeometry:
    return ChannelGeometry.from_parameters(config.params)


def test_a_structure(
    config: ExperimentConfig = DEFAULT_EXPERIMENT,
    width_profile: Optional[WidthProfile] = None,
) -> TestStructure:
    """The Test A single-channel structure: uniform 50 W/cm^2 on both layers."""
    geometry = _geometry(config)
    if width_profile is None:
        width_profile = WidthProfile.uniform(geometry.max_width, geometry.length)
    heat = HeatInputProfile.from_areal_flux(
        TEST_A_FLUX, geometry.pitch, geometry.length
    )
    return TestStructure(
        geometry=geometry,
        width_profile=width_profile,
        heat_top=heat,
        heat_bottom=heat,
        silicon=config.params.silicon,
        coolant=config.params.coolant,
        flow_rate=config.params.flow_rate_per_channel,
        inlet_temperature=config.params.inlet_temperature,
    )


def test_b_fluxes(
    config: ExperimentConfig = DEFAULT_EXPERIMENT,
    seed: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Random per-segment heat fluxes (W/cm^2) of Test B, for both layers.

    Returns ``(top, bottom)`` arrays of length ``config.test_b_segments``
    drawn uniformly from ``config.test_b_flux_range``.
    """
    rng = np.random.default_rng(config.random_seed if seed is None else seed)
    low, high = config.test_b_flux_range
    if low > high:
        raise ValueError("test_b_flux_range must be (low, high) with low <= high")
    shape = (2, config.test_b_segments)
    fluxes = rng.uniform(low, high, size=shape)
    return fluxes[0], fluxes[1]


def test_b_structure(
    config: ExperimentConfig = DEFAULT_EXPERIMENT,
    seed: Optional[int] = None,
    width_profile: Optional[WidthProfile] = None,
) -> TestStructure:
    """The Test B single-channel structure: random segment fluxes in [50, 250]."""
    geometry = _geometry(config)
    if width_profile is None:
        width_profile = WidthProfile.uniform(geometry.max_width, geometry.length)
    top_fluxes, bottom_fluxes = test_b_fluxes(config, seed)
    heat_top = HeatInputProfile.from_segment_fluxes(
        top_fluxes, geometry.pitch, geometry.length
    )
    heat_bottom = HeatInputProfile.from_segment_fluxes(
        bottom_fluxes, geometry.pitch, geometry.length
    )
    return TestStructure(
        geometry=geometry,
        width_profile=width_profile,
        heat_top=heat_top,
        heat_bottom=heat_bottom,
        silicon=config.params.silicon,
        coolant=config.params.coolant,
        flow_rate=config.params.flow_rate_per_channel,
        inlet_temperature=config.params.inlet_temperature,
    )


def uniform_die_maps(
    combined_flux_w_per_cm2: float = 50.0,
    n_cols: int = 56,
    n_rows: int = 60,
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniform (top, bottom) heat-flux maps splitting a combined flux equally.

    Fig. 1(a) of the paper shows a two-die IC with a *combined* heat flux of
    50 W/cm^2; the two returned maps each carry half of it.
    """
    if combined_flux_w_per_cm2 < 0.0:
        raise ValueError("heat flux must be non-negative")
    per_layer = combined_flux_w_per_cm2 / 2.0
    top = np.full((n_rows, n_cols), per_layer)
    return top, top.copy()


def random_die_maps(
    n_cols: int = 56,
    n_rows: int = 60,
    flux_range: Tuple[float, float] = (50.0, 250.0),
    block_size: int = 8,
    seed: int = 2012,
) -> Tuple[np.ndarray, np.ndarray]:
    """Random blocky (top, bottom) heat-flux maps for stress experiments.

    The die is tiled with ``block_size x block_size``-cell patches, each
    drawing a flux uniformly from ``flux_range``; this is the 2-D analogue
    of the Test B strips and is used by the ablation benchmarks.
    """
    low, high = flux_range
    if low > high:
        raise ValueError("flux_range must be (low, high) with low <= high")
    rng = np.random.default_rng(seed)
    maps = []
    for _ in range(2):
        coarse_rows = int(np.ceil(n_rows / block_size))
        coarse_cols = int(np.ceil(n_cols / block_size))
        coarse = rng.uniform(low, high, size=(coarse_rows, coarse_cols))
        fine = np.kron(coarse, np.ones((block_size, block_size)))
        maps.append(fine[:n_rows, :n_cols])
    return maps[0], maps[1]
