"""Two-die 3D-MPSoC stackings of the Niagara blocks (Fig. 7 of the paper).

The paper evaluates the channel-modulation technique on three two-die
3D-MPSoC configurations built out of UltraSPARC T1 components.  Fig. 7 only
shows the layouts schematically (dies A/B for Arch. 1, C/D for Arch. 2 and
two identical dies E for Arch. 3), so the reproduction encodes the three
qualitatively distinct stacking strategies they represent:

* **Arch. 1** -- *segregated* stack: one die carries all eight cores plus
  the crossbar (hot die), the other die carries the L2 cache and periphery
  (cool die).  This concentrates power in one tier.
* **Arch. 2** -- *complementary mixed* stack: each die carries four cores
  and half the cache, with the core bands on opposite sides of the die so
  that no core sits directly above another.
* **Arch. 3** -- *aligned mixed* stack: both dies are identical (four cores
  plus half the cache), so the core bands overlap vertically, producing the
  strongest localized hotspots.

Each architecture exposes the top/bottom die floorplans and helpers to build
the cavity model (for the analytical solver) or the layer stack (for the
finite-volume simulator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import ExperimentConfig, DEFAULT_EXPERIMENT
from ..thermal.geometry import MultiChannelStructure, WidthProfile
from ..thermal.multichannel import cavity_from_flux_maps
from .blocks import Floorplan, PowerScenario
from .niagara import compute_die, memory_die, mixed_die

__all__ = ["Architecture", "ARCHITECTURES", "get_architecture", "architecture_names"]


@dataclass(frozen=True)
class Architecture:
    """A two-die liquid-cooled 3D-MPSoC configuration.

    Attributes
    ----------
    name:
        Architecture name (``"arch1"``, ``"arch2"``, ``"arch3"``).
    description:
        One-line description of the stacking strategy.
    top_die / bottom_die:
        Floorplans of the two active dies facing the inter-tier cavity.
    """

    name: str
    description: str
    top_die: Floorplan
    bottom_die: Floorplan

    @property
    def die_length(self) -> float:
        """Die extent along the flow direction (meters)."""
        return self.top_die.die_length

    @property
    def die_width(self) -> float:
        """Die extent across the flow direction (meters)."""
        return self.top_die.die_width

    def total_power(self, scenario: PowerScenario = "peak") -> float:
        """Total stack power (W) in the requested scenario."""
        return self.top_die.total_power(scenario) + self.bottom_die.total_power(
            scenario
        )

    def flux_maps(
        self, n_cols: int, n_rows: int, scenario: PowerScenario = "peak"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Rasterized (top, bottom) heat-flux maps in W/cm^2."""
        return (
            self.top_die.power_density_map(n_cols, n_rows, scenario),
            self.bottom_die.power_density_map(n_cols, n_rows, scenario),
        )

    def cavity(
        self,
        scenario: PowerScenario = "peak",
        config: ExperimentConfig = DEFAULT_EXPERIMENT,
        n_lanes: Optional[int] = None,
        n_cols: int = 50,
        width_profiles: Optional[Sequence[WidthProfile]] = None,
    ) -> MultiChannelStructure:
        """Build the analytical multi-channel cavity model of this stack.

        The die is spanned by ``die_width / W`` physical channels; they are
        clustered into ``n_lanes`` modeled lanes (defaulting to the
        experiment configuration) as permitted by the multi-channel
        extension of Sec. III.
        """
        lanes = config.n_lanes if n_lanes is None else int(n_lanes)
        if lanes < 1:
            raise ValueError("n_lanes must be at least 1")
        n_channels = int(round(self.die_width / config.params.channel_pitch))
        cluster_size = max(int(np.ceil(n_channels / lanes)), 1)
        n_rows = max(lanes * 4, 40)
        top, bottom = self.flux_maps(n_cols, n_rows, scenario)
        return cavity_from_flux_maps(
            top,
            bottom,
            params=config.params.with_overrides(channel_length=self.die_length),
            die_length=self.die_length,
            die_width=self.die_width,
            cluster_size=cluster_size,
            width_profiles=width_profiles,
        )

    def per_channel_width_profiles(
        self,
        lane_profiles: Sequence[WidthProfile],
        config: ExperimentConfig = DEFAULT_EXPERIMENT,
    ) -> List[WidthProfile]:
        """Expand per-lane width profiles onto the physical channels.

        The analytical cavity clusters the ``die_width / W`` physical
        channels into a few modeled lanes; the finite-volume simulator
        instead wants one profile per physical channel.  Each channel
        inherits the profile of the lane it belongs to -- using the same
        sequential ``ceil(n_channels / n_lanes)``-sized clusters as
        :meth:`cavity` -- so a design optimized on the clustered model is
        rendered (or re-validated) on exactly the geometry it describes.
        """
        profiles = list(lane_profiles)
        if not profiles:
            raise ValueError("at least one lane profile is required")
        n_channels = int(round(self.die_width / config.params.channel_pitch))
        cluster_size = max(int(np.ceil(n_channels / len(profiles))), 1)
        return [
            profiles[min(i // cluster_size, len(profiles) - 1)]
            for i in range(n_channels)
        ]

    def summary(self) -> Dict[str, float]:
        """Scalar metrics for reports."""
        return {
            "name": self.name,
            "peak_power_W": self.total_power("peak"),
            "average_power_W": self.total_power("average"),
            "die_length_mm": self.die_length * 1e3,
            "die_width_mm": self.die_width * 1e3,
        }


def _arch1() -> Architecture:
    return Architecture(
        name="arch1",
        description="segregated stack: compute die over memory die",
        top_die=compute_die("arch1-top-compute"),
        bottom_die=memory_die("arch1-bottom-memory"),
    )


def _arch2() -> Architecture:
    return Architecture(
        name="arch2",
        description="complementary mixed dies: core bands on opposite sides",
        top_die=mixed_die("arch2-top-mixed", cores_at_bottom=True),
        bottom_die=mixed_die("arch2-bottom-mixed", cores_at_bottom=False),
    )


def _arch3() -> Architecture:
    return Architecture(
        name="arch3",
        description="aligned mixed dies: identical dies, cores stacked",
        top_die=mixed_die("arch3-top-mixed", cores_at_bottom=True),
        bottom_die=mixed_die("arch3-bottom-mixed", cores_at_bottom=True),
    )


ARCHITECTURES: Dict[str, Architecture] = {
    "arch1": _arch1(),
    "arch2": _arch2(),
    "arch3": _arch3(),
}


def architecture_names() -> List[str]:
    """Names of the available architectures, in the paper's order."""
    return list(ARCHITECTURES)


def get_architecture(name: str) -> Architecture:
    """Look up an architecture by name (``"arch1"``, ``"arch2"``, ``"arch3"``)."""
    try:
        return ARCHITECTURES[name]
    except KeyError as error:
        raise ValueError(
            f"unknown architecture {name!r}; available: {architecture_names()}"
        ) from error
