"""Block-level floorplans and power models.

A :class:`Block` is an axis-aligned rectangle of a die with a peak and an
average power dissipation; a :class:`Floorplan` is a set of non-overlapping
blocks covering (part of) a die.  Floorplans rasterize themselves into areal
heat-flux maps (W/cm^2) on an arbitrary grid -- these maps feed both the
analytical multi-channel model (via
:func:`repro.thermal.multichannel.cavity_from_flux_maps`) and the
finite-volume simulator (:mod:`repro.ice`).

Coordinate convention: ``x`` is the coolant-flow direction (inlet at
``x = 0``), ``y`` is the lateral direction across the channels.  Rasterized
maps have shape ``(n_rows, n_cols) = (n_y, n_x)`` with row 0 at ``y = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Tuple

import numpy as np

__all__ = ["Block", "Floorplan", "PowerScenario"]

#: The two power scenarios evaluated in Fig. 8 of the paper.
PowerScenario = str
PEAK: PowerScenario = "peak"
AVERAGE: PowerScenario = "average"


@dataclass(frozen=True)
class Block:
    """One functional block of a die.

    Attributes
    ----------
    name:
        Block name (e.g. ``"sparc0"``, ``"l2_bank1"``, ``"crossbar"``).
    x, y:
        Lower-left corner in meters (x along the flow direction).
    width, height:
        Extents along x and y in meters.
    peak_power_density:
        Worst-case heat flux in W/cm^2 (the paper's peak scenario).
    average_power_density:
        Average heat flux in W/cm^2 (the paper's average scenario).
    kind:
        Free-form category tag (``"core"``, ``"cache"``, ``"interconnect"``,
        ``"other"``), used by reports and layout re-arrangement helpers.
    """

    name: str
    x: float
    y: float
    width: float
    height: float
    peak_power_density: float
    average_power_density: float
    kind: str = "other"

    def __post_init__(self) -> None:
        if self.width <= 0.0 or self.height <= 0.0:
            raise ValueError(f"block {self.name!r} must have positive extents")
        if self.x < 0.0 or self.y < 0.0:
            raise ValueError(f"block {self.name!r} must lie in the first quadrant")
        if self.peak_power_density < 0.0 or self.average_power_density < 0.0:
            raise ValueError(f"block {self.name!r} power densities must be >= 0")
        if self.average_power_density > self.peak_power_density + 1e-12:
            raise ValueError(
                f"block {self.name!r}: average power density exceeds the peak"
            )

    @property
    def area(self) -> float:
        """Block area in m^2."""
        return self.width * self.height

    @property
    def bounds(self) -> Tuple[float, float, float, float]:
        """``(x_min, y_min, x_max, y_max)`` in meters."""
        return (self.x, self.y, self.x + self.width, self.y + self.height)

    def power(self, scenario: PowerScenario = PEAK) -> float:
        """Total block power (W) in the requested scenario."""
        return self.power_density(scenario) * 1e4 * self.area

    def power_density(self, scenario: PowerScenario = PEAK) -> float:
        """Heat flux (W/cm^2) in the requested scenario."""
        if scenario == PEAK:
            return self.peak_power_density
        if scenario == AVERAGE:
            return self.average_power_density
        raise ValueError(f"unknown power scenario {scenario!r}")

    def translated(self, dx: float, dy: float) -> "Block":
        """A copy of the block shifted by ``(dx, dy)`` meters."""
        return replace(self, x=self.x + dx, y=self.y + dy)

    def overlaps(self, other: "Block") -> bool:
        """True if the two block rectangles overlap with positive area."""
        ax0, ay0, ax1, ay1 = self.bounds
        bx0, by0, bx1, by1 = other.bounds
        return (ax0 < bx1 and bx0 < ax1) and (ay0 < by1 and by0 < ay1)


@dataclass(frozen=True)
class Floorplan:
    """A die floorplan: die extents plus a list of non-overlapping blocks.

    Attributes
    ----------
    name:
        Floorplan name (e.g. ``"niagara-compute"``).
    die_length:
        Die extent along the flow direction ``x`` (meters).
    die_width:
        Die extent across the flow direction ``y`` (meters).
    blocks:
        The functional blocks.  Blocks must fit inside the die and must not
        overlap; regions not covered by any block dissipate
        ``background_power_density``.
    background_power_density:
        Heat flux (W/cm^2) of the un-allocated die area (global routing,
        decap fill, ...), applied identically in both scenarios.
    """

    name: str
    die_length: float
    die_width: float
    blocks: Tuple[Block, ...] = field(default_factory=tuple)
    background_power_density: float = 0.0

    def __post_init__(self) -> None:
        if self.die_length <= 0.0 or self.die_width <= 0.0:
            raise ValueError("die extents must be positive")
        if self.background_power_density < 0.0:
            raise ValueError("background power density must be >= 0")
        object.__setattr__(self, "blocks", tuple(self.blocks))
        for block in self.blocks:
            x0, y0, x1, y1 = block.bounds
            if x1 > self.die_length * (1 + 1e-9) or y1 > self.die_width * (1 + 1e-9):
                raise ValueError(
                    f"block {block.name!r} does not fit inside die "
                    f"{self.name!r} ({self.die_length} x {self.die_width} m)"
                )
        names = [block.name for block in self.blocks]
        if len(names) != len(set(names)):
            raise ValueError("block names must be unique within a floorplan")
        for i, first in enumerate(self.blocks):
            for second in self.blocks[i + 1 :]:
                if first.overlaps(second):
                    raise ValueError(
                        f"blocks {first.name!r} and {second.name!r} overlap"
                    )

    # -- queries --------------------------------------------------------------

    @property
    def area(self) -> float:
        """Die area in m^2."""
        return self.die_length * self.die_width

    def block(self, name: str) -> Block:
        """Look up a block by name."""
        for candidate in self.blocks:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no block named {name!r} in floorplan {self.name!r}")

    def blocks_of_kind(self, kind: str) -> List[Block]:
        """All blocks with the given category tag."""
        return [block for block in self.blocks if block.kind == kind]

    def total_power(self, scenario: PowerScenario = PEAK) -> float:
        """Total die power (W), including the background fill."""
        block_power = sum(block.power(scenario) for block in self.blocks)
        covered = sum(block.area for block in self.blocks)
        background = self.background_power_density * 1e4 * (self.area - covered)
        return block_power + background

    def power_density_range(
        self, scenario: PowerScenario = PEAK
    ) -> Tuple[float, float]:
        """``(min, max)`` heat flux over the die (W/cm^2), including background."""
        densities = [block.power_density(scenario) for block in self.blocks]
        covered = sum(block.area for block in self.blocks)
        if covered < self.area * (1 - 1e-9):
            densities.append(self.background_power_density)
        return (min(densities), max(densities))

    # -- rasterization -------------------------------------------------------------

    def power_density_map(
        self,
        n_cols: int,
        n_rows: int,
        scenario: PowerScenario = PEAK,
    ) -> np.ndarray:
        """Rasterize the floorplan into a ``(n_rows, n_cols)`` heat-flux map.

        Cell values are area-weighted averages of the block heat fluxes
        (W/cm^2) covering each cell, so the total power is preserved exactly
        regardless of the grid resolution.
        """
        if n_cols < 1 or n_rows < 1:
            raise ValueError("the raster grid must have at least one cell")
        x_edges = np.linspace(0.0, self.die_length, n_cols + 1)
        y_edges = np.linspace(0.0, self.die_width, n_rows + 1)
        cell_area = (x_edges[1] - x_edges[0]) * (y_edges[1] - y_edges[0])
        flux = np.full((n_rows, n_cols), self.background_power_density, dtype=float)
        for block in self.blocks:
            bx0, by0, bx1, by1 = block.bounds
            x_overlap = np.clip(
                np.minimum(bx1, x_edges[1:]) - np.maximum(bx0, x_edges[:-1]),
                0.0,
                None,
            )
            y_overlap = np.clip(
                np.minimum(by1, y_edges[1:]) - np.maximum(by0, y_edges[:-1]),
                0.0,
                None,
            )
            overlap = np.outer(y_overlap, x_overlap)
            fraction = overlap / cell_area
            flux += fraction * (
                block.power_density(scenario) - self.background_power_density
            )
        return flux

    def power_map(
        self, n_cols: int, n_rows: int, scenario: PowerScenario = PEAK
    ) -> np.ndarray:
        """Per-cell power map in W (heat flux times cell area)."""
        density = self.power_density_map(n_cols, n_rows, scenario)
        cell_area_cm2 = (self.die_length / n_cols) * (self.die_width / n_rows) * 1e4
        return density * cell_area_cm2

    # -- transformations -------------------------------------------------------------

    def renamed(self, name: str) -> "Floorplan":
        """A copy of the floorplan with a different name."""
        return replace(self, name=name)

    def mirrored_y(self) -> "Floorplan":
        """Mirror the floorplan across the horizontal midline of the die."""
        mirrored = tuple(
            replace(block, y=self.die_width - block.y - block.height)
            for block in self.blocks
        )
        return replace(self, blocks=mirrored, name=f"{self.name}-mirrored")

    def with_blocks(self, blocks: Iterable[Block]) -> "Floorplan":
        """A copy of the floorplan with a different block list."""
        return replace(self, blocks=tuple(blocks))

    def summary(self, scenario: PowerScenario = PEAK) -> Dict[str, float]:
        """Scalar metrics for reports."""
        low, high = self.power_density_range(scenario)
        return {
            "total_power_W": self.total_power(scenario),
            "min_flux_W_per_cm2": low,
            "max_flux_W_per_cm2": high,
            "n_blocks": float(len(self.blocks)),
        }
