"""Adjoint gradients of the steady finite-difference thermal objectives.

The steady cavity model is *linear* in the temperatures: ``A(w) u = b``
where ``w`` is the decision vector of normalized channel widths, ``u``
stacks the silicon and coolant temperatures, and ``b`` collects the heat
loads and the inlet Dirichlet rows.  For an objective ``J(u)`` the exact
gradient of the discrete problem is therefore

    dJ/dw_i = lambda^T (db/dw_i - (dA/dw_i) u),    A^T lambda = dJ/du

-- one forward solve and one transpose solve per gradient, independent of
the number of design variables, versus the ``n + 1`` solves per iterate of
the batched finite-difference path.  Two structural facts keep the rest of
the evaluation cheap:

* the right-hand side is width-independent (heat loads and the inlet
  temperature do not read the channel widths), so ``db/dw = 0`` exactly
  and only the matrix term survives;
* the matrix enters the inner product through its raw COO entries,
  ``lambda^T A u = sum_e v_e lambda[row_e] u[col_e]``, so with the raw
  coordinates retained by :class:`~repro.core.linear_system.SparsityFold`
  the per-variable work is a dot product -- the perturbed matrix is never
  folded, let alone factorized.

``dA/dw_i`` is evaluated by central differences *on the conductance rows*
(not on the solution): only the layer-to-coolant and sidewall conductance
rows of the affected lanes depend on the widths, the coefficients are
affine in those rows (folded once per gradient into per-point sensitivity
fields by
:meth:`~repro.thermal.assembly.SparsityPattern.conductance_sensitivities`),
and a decision variable is one piecewise-constant segment -- so all the
perturbed rows a lane needs go through ONE vectorized
:func:`~repro.thermal.assembly.lane_conductance_rows` call.  The
differencing step acts on an O(1) normalized variable, so the O(step^2)
linearization error sits far below the 1e-6 agreement the test suite
demands.

The adjoint transpose solve reuses the *forward* SuperLU factorization
(``trans='T'`` via :meth:`~repro.thermal.backends.SolverBackend.solve_transpose`),
so after the cached forward solve of the current iterate the whole
gradient costs one triangular solve plus the stencil dot products.

Supported objectives are the smooth ones -- ``gradient_norm``,
``heat_flow`` and ``softmax_range``; the nonsmooth ``temperature_range``
and ``peak_temperature`` have no meaningful adjoint and callers fall back
to finite differences (loudly -- see
:class:`~repro.core.optimizer.ChannelModulationOptimizer`).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..thermal.assembly import assemble_system, lane_conductance_rows
from ..thermal.solution import ThermalSolution

__all__ = [
    "ADJOINT_OBJECTIVES",
    "AdjointGradient",
    "objective_gradient",
    "supports_adjoint",
]

#: Objectives with an implemented analytic ``dJ/du``.
ADJOINT_OBJECTIVES: Tuple[str, ...] = (
    "gradient_norm",
    "heat_flow",
    "softmax_range",
)

#: Sharpness of the ``softmax_range`` surrogate (matches
#: :func:`repro.core.objectives.softmax_temperature_range`).
_SOFTMAX_SHARPNESS = 2.0


def supports_adjoint(objective: str) -> bool:
    """True when ``objective`` has an analytic adjoint right-hand side."""
    return objective in ADJOINT_OBJECTIVES


def _trapezoid_weights(z: np.ndarray) -> np.ndarray:
    """Quadrature weights ``w`` with ``trapezoid(f, z) == w @ f``."""
    weights = np.empty_like(z)
    weights[0] = 0.5 * (z[1] - z[0])
    weights[-1] = 0.5 * (z[-1] - z[-2])
    weights[1:-1] = 0.5 * (z[2:] - z[:-2])
    return weights


def _gradient_transpose(v: np.ndarray, h: float) -> np.ndarray:
    """Apply ``D^T`` where ``D`` is ``np.gradient(. , z, axis=-1)``.

    ``np.gradient`` on the solver's uniform grid is central in the
    interior and one-sided first order at the edges; this is its exact
    transpose (verified entry by entry against the dense operator in the
    test suite).
    """
    out = np.zeros_like(v)
    inner = v[..., 1:-1] / (2.0 * h)
    out[..., :-2] -= inner
    out[..., 2:] += inner
    out[..., 0] -= v[..., 0] / h
    out[..., 1] += v[..., 0] / h
    out[..., -1] += v[..., -1] / h
    out[..., -2] -= v[..., -1] / h
    return out


def objective_gradient(
    objective: str, solution: ThermalSolution, g_l: np.ndarray
) -> np.ndarray:
    """``dJ/dT`` over the silicon temperatures, shape ``(2, n_lanes, n_points)``.

    All supported objectives read only the silicon block, so the coolant
    part of ``dJ/du`` is identically zero and is appended by the caller.
    ``g_l`` is the (cluster-scaled) per-lane longitudinal conductance used
    by the ``heat_flow`` form.
    """
    temperatures = solution.temperatures
    z = solution.z
    h = float(z[1] - z[0])
    if objective == "gradient_norm":
        grads = np.gradient(temperatures, z, axis=2)
        v = 2.0 * _trapezoid_weights(z)[None, None, :] * grads
        return _gradient_transpose(v, h)
    if objective == "heat_flow":
        grads = np.gradient(temperatures, z, axis=2)
        scale = np.asarray(g_l, dtype=float)[None, :, None] ** 2
        v = 2.0 * _trapezoid_weights(z)[None, None, :] * scale * grads
        return _gradient_transpose(v, h)
    if objective == "softmax_range":
        flat = temperatures.ravel()
        shifted = _SOFTMAX_SHARPNESS * (flat - float(np.mean(flat)))
        upper = np.exp(shifted - np.max(shifted))
        lower = np.exp(-shifted - np.max(-shifted))
        # d/dT [(1/s) logsumexp(s T~) + (1/s) logsumexp(-s T~)] =
        # softmax(s T~) - softmax(-s T~); the mean-reference terms cancel
        # because each softmax sums to one.
        grad = upper / upper.sum() - lower / lower.sum()
        return grad.reshape(temperatures.shape)
    raise ValueError(
        f"objective {objective!r} has no adjoint; supported: "
        f"{list(ADJOINT_OBJECTIVES)}"
    )


class AdjointGradient:
    """Adjoint gradient evaluator for one optimization problem.

    Parameters
    ----------
    structure:
        The base :class:`~repro.thermal.geometry.MultiChannelStructure`
        whose width profiles the decision vector re-parameterizes.
    parameterization:
        The :class:`~repro.core.parameterization.WidthParameterization`
        mapping decision vectors to per-lane width profiles.
    objective:
        Objective name; must be in :data:`ADJOINT_OBJECTIVES`.
    n_points:
        z-grid resolution of the thermal solves (must match the forward
        path so the factorization is reused).
    engine:
        The shared :class:`~repro.core.engine.EvaluationEngine`; supplies
        the cached forward solution and the transpose solve.
    step:
        Central-difference step for the ``dA/dw`` stencils, applied to the
        normalized decision variables.
    """

    def __init__(
        self,
        structure,
        parameterization,
        objective: str,
        n_points: int,
        engine,
        step: float = 1e-6,
    ) -> None:
        if not supports_adjoint(objective):
            raise ValueError(
                f"objective {objective!r} has no adjoint; supported: "
                f"{list(ADJOINT_OBJECTIVES)}"
            )
        if step <= 0.0:
            raise ValueError("step must be positive")
        self.structure = structure
        self.parameterization = parameterization
        self.objective = objective
        self.n_points = int(n_points)
        self.engine = engine
        self.step = float(step)

    # -- helpers -------------------------------------------------------------

    def _candidate(self, vector: np.ndarray):
        profiles = self.parameterization.profiles_from_vector(vector)
        return self.structure.with_width_profiles(profiles)

    def _affected_lanes(self, variable: int) -> range:
        if self.parameterization.shared:
            return range(self.parameterization.n_lanes)
        lane = variable // self.parameterization.n_segments
        return range(lane, lane + 1)

    def _segment_of_point(self, z_grid: np.ndarray) -> np.ndarray:
        """Piecewise-constant segment index of every grid point.

        Mirrors :meth:`repro.thermal.geometry.WidthProfile.__call__` for
        segment profiles, so a perturbed decision variable maps exactly to
        the grid points its segment covers.
        """
        n_segments = self.parameterization.n_segments
        length = self.parameterization.geometry.length
        z = np.clip(np.asarray(z_grid, dtype=float), 0.0, length)
        return np.minimum(
            (z / length * n_segments).astype(int), n_segments - 1
        )

    def _stencil_deltas(
        self, vector: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-variable clamped central-difference half-steps.

        The stencil is clamped to the box so clipped widths never flatten
        one side of the difference (SLSQP iterates sit on the bounds).
        """
        delta_plus = np.minimum(self.step, 1.0 - vector)
        delta_minus = np.minimum(self.step, vector)
        return delta_plus, delta_minus

    # -- the gradient --------------------------------------------------------

    def gradient(
        self, vector: np.ndarray, solution: Optional[ThermalSolution] = None
    ) -> np.ndarray:
        """``dJ/dx`` at a normalized decision vector.

        The forward solution comes from the engine's LRU cache (SLSQP has
        just evaluated the cost there); the transpose solve reuses the
        forward factorization.  Pass ``solution`` to skip even the cache
        lookup.
        """
        vector = np.clip(np.asarray(vector, dtype=float), 0.0, 1.0)
        candidate = self._candidate(vector)
        if solution is None:
            solution = self.engine.solve(candidate, n_points=self.n_points)
        system = assemble_system(candidate, n_points=self.n_points)

        # The forward unknown vector, reconstructed bit-exactly from the
        # solution fields (the solver reshaped the unknowns into (3, L, P)).
        u = np.concatenate(
            [
                solution.temperatures.ravel(),
                solution.coolant_temperatures.ravel(),
            ]
        )
        n_coolant = solution.coolant_temperatures.size
        dJdT = objective_gradient(self.objective, solution, system.params.g_l)
        dJdu = np.concatenate([dJdT.ravel(), np.zeros(n_coolant)])

        lam = self.engine.solve_transpose(
            system.matrix, dJdu, system.pattern_token
        )
        fold = system.pattern.fold
        # lambda^T (dA) u over raw COO entries: one weight per entry,
        # folded once into per-(lane, point) conductance sensitivities
        # (the coefficients are affine in g_v and g_w).
        weight = lam[fold.rows] * u[fold.cols]
        s_v, s_w = system.pattern.conductance_sensitivities(weight)

        # dA/dw_i by central differences on the conductance rows, batched
        # per lane: a decision variable is one piecewise-constant segment,
        # and the vector -> width map is affine inside the box, so the
        # perturbed width row differs from the base row only on that
        # segment's grid points.  All 2k rows a lane needs are evaluated
        # in ONE vectorized lane_conductance_rows call.
        n_variables = self.parameterization.n_variables
        n_segments = self.parameterization.n_segments
        z_grid = system.z_grid
        segment_of_point = self._segment_of_point(z_grid)
        low, high = self.parameterization.width_bounds
        width_span = high - low
        delta_plus, delta_minus = self._stencil_deltas(vector)
        denominator = delta_plus + delta_minus
        profiles = self.parameterization.profiles_from_vector(vector)

        gradient = np.zeros(n_variables)
        for lane in range(self.parameterization.n_lanes):
            if self.parameterization.shared:
                variables = np.arange(n_variables)
            else:
                variables = np.arange(
                    lane * n_segments, (lane + 1) * n_segments
                )
            base = np.asarray(profiles[lane](z_grid), dtype=float)
            segment_mask = (
                segment_of_point[None, :] == (variables % n_segments)[:, None]
            )
            widths = np.concatenate(
                [
                    base[None, :]
                    + segment_mask * (delta_plus[variables] * width_span)[:, None],
                    base[None, :]
                    - segment_mask
                    * (delta_minus[variables] * width_span)[:, None],
                ]
            )
            g_v, g_w = lane_conductance_rows(
                candidate, z_grid, lane, widths=widths
            )
            k = variables.size
            # db/dw = 0 (width-independent loads), so only the matrix term
            # survives: dJ/dw_i = -lambda^T (dA/dw_i) u.
            inner = (g_v[:k] - g_v[k:]) @ s_v[lane]
            inner += (g_w[:k] - g_w[k:]) @ s_w[lane]
            safe = denominator[variables] > 0.0
            gradient[variables[safe]] += (
                -inner[safe] / denominator[variables][safe]
            )
        self.engine.count_adjoint_solve()
        return gradient
