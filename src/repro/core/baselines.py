"""Baseline channel designs the paper compares against.

Section V evaluates the optimal modulation against the two uniform-width
extremes, which bracket every temperature distribution achievable by any
modulation scheme:

* *uniform minimum width* (``w_Cmin`` everywhere) -- maximum cooling
  efficiency, maximum pressure drop;
* *uniform maximum width* (``w_Cmax`` everywhere) -- the conventional design
  used by prior 3D-MPSoC liquid-cooling work (Sec. V notes 50 um is the most
  common choice).

Two further baselines are provided for richer comparisons and the ablation
benchmarks:

* *best uniform width* -- the single constant width that minimizes the
  objective while respecting the pressure limit (a 1-D design-space sweep);
* *per-lane uniform widths* -- each lane gets its own constant width (no
  modulation along ``z``), which is the closest analogue to the
  channel-density / clustering approaches of the related work (Shi et al.,
  Qian et al.) that only differentiate cooling *across* the die, not along
  the flow path.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..thermal.geometry import WidthProfile
from .optimizer import ChannelModulationOptimizer
from .results import DesignEvaluation

__all__ = [
    "uniform_minimum_design",
    "uniform_maximum_design",
    "best_uniform_design",
    "per_lane_uniform_design",
]


def uniform_minimum_design(
    optimizer: ChannelModulationOptimizer,
) -> DesignEvaluation:
    """Evaluate the uniform ``w_Cmin`` design."""
    return optimizer.evaluate_uniform(
        optimizer.structure.geometry.min_width, "uniform minimum"
    )


def uniform_maximum_design(
    optimizer: ChannelModulationOptimizer,
) -> DesignEvaluation:
    """Evaluate the uniform ``w_Cmax`` design (the conventional baseline)."""
    return optimizer.evaluate_uniform(
        optimizer.structure.geometry.max_width, "uniform maximum"
    )


def best_uniform_design(
    optimizer: ChannelModulationOptimizer,
    n_candidates: int = 17,
    respect_pressure_limit: bool = True,
) -> DesignEvaluation:
    """Sweep constant widths and return the best feasible one.

    A uniform width is the conventional single-variable design space; this
    baseline shows how much of the optimal-modulation benefit could have
    been obtained without modulation at all.
    """
    geometry = optimizer.structure.geometry
    widths = np.linspace(geometry.min_width, geometry.max_width, n_candidates)
    best: Optional[DesignEvaluation] = None
    best_value = np.inf
    for width in widths:
        evaluation = optimizer.evaluate_uniform(float(width))
        if respect_pressure_limit and (
            evaluation.max_pressure_drop > optimizer.pressure.max_pressure_drop
        ):
            continue
        value = evaluation.cost
        if value < best_value:
            best_value = value
            best = evaluation
    if best is None:
        # Even the widest channel violates the limit; report it anyway so the
        # caller can see the violation explicitly.
        best = uniform_maximum_design(optimizer)
    best.label = "best uniform"
    return best


def per_lane_uniform_design(
    optimizer: ChannelModulationOptimizer,
    n_candidates: int = 9,
    respect_pressure_limit: bool = True,
) -> DesignEvaluation:
    """Choose one constant width per lane (no modulation along the channel).

    Lanes are treated greedily and independently: for each lane the constant
    width minimizing that lane's peak silicon temperature is selected from a
    sweep, subject to the pressure limit.  This mimics the related-work
    approaches that adapt the cooling laterally (channel density/clustering)
    but cannot react to hotspots distributed *along* a channel.
    """
    structure = optimizer.structure
    geometry = structure.geometry
    widths = np.linspace(geometry.min_width, geometry.max_width, n_candidates)

    chosen: List[WidthProfile] = []
    base_profiles = [
        WidthProfile.uniform(geometry.max_width, geometry.length)
        for _ in range(structure.n_lanes)
    ]
    for lane in range(structure.n_lanes):
        best_width = geometry.max_width
        best_peak = np.inf
        for width in widths:
            trial_profiles = list(base_profiles)
            trial_profiles[lane] = WidthProfile.uniform(
                float(width), geometry.length
            )
            evaluation = optimizer.evaluate_design(
                trial_profiles, f"lane {lane} trial"
            )
            if respect_pressure_limit and (
                evaluation.max_pressure_drop
                > optimizer.pressure.max_pressure_drop
            ):
                continue
            lane_peak = float(
                np.max(evaluation.solution.temperatures[:, lane, :])
            )
            if lane_peak < best_peak:
                best_peak = lane_peak
                best_width = float(width)
        chosen.append(WidthProfile.uniform(best_width, geometry.length))
        base_profiles[lane] = chosen[-1]

    evaluation = optimizer.evaluate_design(chosen, "per-lane uniform")
    return evaluation
