"""Design constraints of the optimal channel-modulation problem.

Section IV-B of the paper imposes three constraints on the width
trajectories:

1. *Boundedness of channel widths* (Eq. 8): ``w_Cmin <= w_C(z) <= w_Cmax``
   everywhere.  With the piecewise-constant parameterization this is a plain
   box constraint on the decision vector and is handled by the NLP solver's
   bounds, not by penalty terms.
2. *Maximum pressure drop* (Eq. 9): the Darcy-Weisbach pressure drop of every
   channel, at the fixed per-channel flow rate, must not exceed ``dP_max``.
3. *Equal pressure drops* (Eq. 10): all channels fed by the common reservoir
   must exhibit the same pressure drop, so that the constant-flow assumption
   is hydraulically consistent.

This module evaluates constraints 2 and 3 for a decision vector and exposes
them in the formats expected by :func:`scipy.optimize.minimize` (dictionaries
with ``type``/``fun`` entries).  Constraint values are scaled to order one so
that SLSQP's merit function treats them on an equal footing with the cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..hydraulics.pressure import pressure_drop
from ..thermal.geometry import ChannelGeometry
from ..thermal.properties import Coolant
from .parameterization import WidthParameterization

__all__ = ["PressureConstraints"]


@dataclass
class PressureConstraints:
    """Pressure-related constraints evaluated on the decision vector.

    Attributes
    ----------
    parameterization:
        The width parameterization that decodes decision vectors.
    geometry:
        Channel geometry (provides the channel height and length).
    coolant:
        Coolant whose viscosity enters the Darcy-Weisbach expression.
    flow_rate:
        Volumetric flow rate per physical channel (m^3/s), fixed by the
        paper's assumption 3.
    max_pressure_drop:
        ``dP_max`` of Eq. (9), in Pa.
    enforce_equal_pressure:
        Whether to add the Eq. (10) equality constraints.  They are only
        meaningful for multi-lane problems with per-lane trajectories.
    equal_pressure_tolerance:
        Relative tolerance used when the equality is enforced as a pair of
        inequalities (SLSQP handles equalities natively; other solvers get
        the relaxed form).
    n_samples:
        Sample count of the trapezoidal pressure integral.
    jacobian_step:
        Forward-difference step of the explicit constraint Jacobians
        (:meth:`margin_jacobian`, :meth:`balance_jacobian`); matches
        SciPy's default derivative step.
    """

    parameterization: WidthParameterization
    geometry: ChannelGeometry
    coolant: Coolant
    flow_rate: float
    max_pressure_drop: float
    enforce_equal_pressure: bool = True
    equal_pressure_tolerance: float = 0.05
    n_samples: int = 513
    jacobian_step: float = float(np.sqrt(np.finfo(float).eps))

    def __post_init__(self) -> None:
        if self.flow_rate <= 0.0:
            raise ValueError("flow rate must be positive")
        if self.max_pressure_drop <= 0.0:
            raise ValueError("max pressure drop must be positive")
        if not (0.0 < self.equal_pressure_tolerance < 1.0):
            raise ValueError("equal_pressure_tolerance must lie in (0, 1)")

    # -- raw evaluations -----------------------------------------------------------

    def pressure_drops(self, vector: np.ndarray) -> np.ndarray:
        """Per-lane pressure drops (Pa) for a decision vector."""
        profiles = self.parameterization.profiles_from_vector(vector)
        if self.parameterization.shared:
            # All lanes share the same trajectory, evaluate once.
            drop = pressure_drop(
                profiles[0],
                self.geometry,
                self.flow_rate,
                self.coolant,
                self.n_samples,
            )
            return np.full(self.parameterization.n_lanes, drop)
        return np.array(
            [
                pressure_drop(
                    profile,
                    self.geometry,
                    self.flow_rate,
                    self.coolant,
                    self.n_samples,
                )
                for profile in profiles
            ]
        )

    def max_drop(self, vector: np.ndarray) -> float:
        """Largest per-lane pressure drop (Pa)."""
        return float(np.max(self.pressure_drops(vector)))

    def imbalance(self, vector: np.ndarray) -> float:
        """Relative pressure imbalance ``(max - min)/dP_max`` across lanes."""
        drops = self.pressure_drops(vector)
        return float((np.max(drops) - np.min(drops)) / self.max_pressure_drop)

    def is_feasible(self, vector: np.ndarray, slack: float = 1e-6) -> bool:
        """True when both Eq. (9) and (when enforced) Eq. (10) hold."""
        drops = self.pressure_drops(vector)
        if np.max(drops) > self.max_pressure_drop * (1.0 + slack):
            return False
        if self.enforce_equal_pressure and drops.size > 1:
            spread = (np.max(drops) - np.min(drops)) / self.max_pressure_drop
            if spread > self.equal_pressure_tolerance + slack:
                return False
        return True

    # -- scipy constraint dictionaries ------------------------------------------------

    def _normalized_margin(self, vector: np.ndarray) -> np.ndarray:
        """``1 - dP_i / dP_max`` per lane; non-negative when feasible."""
        return 1.0 - self.pressure_drops(vector) / self.max_pressure_drop

    def _balance(self, vector: np.ndarray) -> float:
        """``tolerance - imbalance``; non-negative when hydraulically balanced."""
        return self.equal_pressure_tolerance - self.imbalance(vector)

    def _finite_difference_jacobian(self, function, vector: np.ndarray) -> np.ndarray:
        """Forward-difference Jacobian of a constraint function.

        The step direction flips to backward at the upper box bound so
        evaluations stay inside the feasible hypercube.  Constraint
        evaluations are pure hydraulics (no thermal solve), so the n+1
        evaluations are cheap relative to one gradient batch.
        """
        vector = np.asarray(vector, dtype=float)
        base = np.atleast_1d(np.asarray(function(vector), dtype=float))
        jacobian = np.empty((base.size, vector.size))
        for variable in range(vector.size):
            step = (
                self.jacobian_step
                if vector[variable] + self.jacobian_step <= 1.0
                else -self.jacobian_step
            )
            perturbed = vector.copy()
            perturbed[variable] += step
            shifted = np.atleast_1d(np.asarray(function(perturbed), dtype=float))
            jacobian[:, variable] = (shifted - base) / step
        return jacobian

    def margin_jacobian(self, vector: np.ndarray) -> np.ndarray:
        """Jacobian of the Eq. (9) normalized margins, shape ``(n_lanes, n)``."""
        return self._finite_difference_jacobian(self._normalized_margin, vector)

    def balance_jacobian(self, vector: np.ndarray) -> np.ndarray:
        """Gradient of the Eq. (10) balance constraint, shape ``(n,)``."""
        return self._finite_difference_jacobian(self._balance, vector)[0]

    def as_scipy_constraints(self, with_jacobians: bool = False) -> List[Dict]:
        """Constraint dictionaries for :func:`scipy.optimize.minimize` (SLSQP).

        The Eq. (9) limit becomes one vector-valued inequality (one entry
        per lane).  The Eq. (10) equal-pressure requirement is expressed as
        a relaxed inequality ``tolerance - (max - min)/dP_max >= 0``: a strict
        equality across many lanes over-constrains the problem numerically,
        while the relaxed form keeps designs hydraulically balanced to
        within ``equal_pressure_tolerance`` of the allowed budget (the
        benchmarks report the achieved imbalance).

        With ``with_jacobians=True`` each dictionary carries an explicit
        ``jac`` entry, so SLSQP never falls back to its internal
        finite differences for the constraints (used together with the
        optimizer's batched cost gradient).
        """
        constraints: List[Dict] = [
            {"type": "ineq", "fun": self._normalized_margin}
        ]
        if with_jacobians:
            constraints[0]["jac"] = self.margin_jacobian
        multi_lane = (
            self.parameterization.n_lanes > 1 and not self.parameterization.shared
        )
        if self.enforce_equal_pressure and multi_lane:
            balance: Dict = {"type": "ineq", "fun": self._balance}
            if with_jacobians:
                balance["jac"] = self.balance_jacobian
            constraints.append(balance)
        return constraints

    def summary(self, vector: np.ndarray) -> Dict[str, float]:
        """Scalar constraint metrics for reports."""
        drops = self.pressure_drops(vector)
        return {
            "max_pressure_drop_Pa": float(np.max(drops)),
            "min_pressure_drop_Pa": float(np.min(drops)),
            "pressure_limit_Pa": self.max_pressure_drop,
            "pressure_margin": float(1.0 - np.max(drops) / self.max_pressure_drop),
            "pressure_imbalance": self.imbalance(vector),
        }
