"""Objective functions for the optimal channel-modulation problem.

The paper's cost is the accumulated squared temperature gradient along the
flow path (Eq. 7)::

    J = Int_0^d || dT/dz ||^2 dz

summed over every silicon node of the model (two per modeled lane).  As
noted in Sec. IV-A, the same quantity can be expressed with the longitudinal
heat flows (``q_i = -g_l dT_i/dz``), which is numerically smoother when the
temperature field comes from a discrete solver; both forms are provided and
agree up to the discretization error (verified in the tests).

Two auxiliary objectives are included for design-space exploration and the
ablation benchmarks: the *temperature range* (the paper's reported metric --
what is minimized implicitly) and the *peak temperature*.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..thermal.solution import ThermalSolution

__all__ = [
    "gradient_norm_cost",
    "heat_flow_cost",
    "temperature_range",
    "peak_temperature",
    "softmax_temperature_range",
    "OBJECTIVES",
    "get_objective",
]


def gradient_norm_cost(solution: ThermalSolution) -> float:
    """The paper's Eq. (7) cost, ``J = Int ||T'||^2 dz`` (K^2/m)."""
    return solution.cost


def heat_flow_cost(solution: ThermalSolution) -> float:
    """The equivalent heat-flow form ``Int ||q||^2 dz`` (W^2.m)."""
    return solution.heat_flow_cost


def temperature_range(solution: ThermalSolution) -> float:
    """Max - min silicon temperature (K) -- the thermal gradient the paper reports."""
    return solution.thermal_gradient


def peak_temperature(solution: ThermalSolution) -> float:
    """Maximum silicon temperature (K)."""
    return solution.peak_temperature


def softmax_temperature_range(
    solution: ThermalSolution, sharpness: float = 2.0
) -> float:
    """A smooth surrogate of the temperature range for gradient-based solvers.

    ``(1/s) log sum exp(s (T - T_ref)) - (-1/s) log sum exp(-s (T - T_ref))``
    converges to ``max T - min T`` as ``sharpness`` grows while staying
    differentiable; useful when optimizing the range directly instead of the
    paper's integral cost.
    """
    if sharpness <= 0.0:
        raise ValueError("sharpness must be positive")
    temperatures = solution.temperatures.ravel()
    reference = float(np.mean(temperatures))
    shifted = temperatures - reference
    upper = np.log(np.sum(np.exp(sharpness * shifted))) / sharpness
    lower = -np.log(np.sum(np.exp(-sharpness * shifted))) / sharpness
    return float(upper - lower)


OBJECTIVES: Dict[str, Callable[[ThermalSolution], float]] = {
    "gradient_norm": gradient_norm_cost,
    "heat_flow": heat_flow_cost,
    "temperature_range": temperature_range,
    "softmax_range": softmax_temperature_range,
    "peak_temperature": peak_temperature,
}


def get_objective(name: str) -> Callable[[ThermalSolution], float]:
    """Look up an objective by name; raise a helpful error for unknown names."""
    try:
        return OBJECTIVES[name]
    except KeyError as error:
        raise ValueError(
            f"unknown objective {name!r}; available: {sorted(OBJECTIVES)}"
        ) from error
