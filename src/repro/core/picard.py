"""Picard outer iteration for temperature-dependent coolant properties.

The paper freezes all fluid properties (assumption 2, Section IV); the
temperature-dependent coolant mode relaxes that by wrapping the linear
solve of either model family in a fixed-point (Picard) outer iteration --
the classic segregated-coupling pattern:

1. solve the system with the current film properties (the first iterate
   uses the constant ``base`` properties, so iteration 0 *is* the paper's
   solve);
2. re-evaluate the coolant film properties from the bulk coolant
   temperature field of that solution
   (:meth:`repro.thermal.properties.CoolantModel.film`);
3. refresh the conductance values -- the sparsity structure is fixed, so
   each iteration is a cheap value refresh through the cached
   :class:`~repro.core.linear_system.PatternCache` fold plus one backend
   factorization -- and repeat until the coolant temperature field moves
   by less than ``tolerance_K`` in the infinity norm.

Under-relaxation damps oscillatory property coupling; a divergence guard
(non-finite iterates, or a residual that grows past
``divergence_factor x`` the first residual) and the iteration cap both
fall back to the constant-property solution with ``fell_back=True`` in
the result, so a run never silently reports an unconverged
temperature-dependent field.

The loop is solver-agnostic: callers provide a ``resolve`` callback that
maps a bulk coolant temperature field to ``(solution, new_field)``; the
FDM path (:func:`repro.thermal.fdm.solve_finite_difference`) and the
finite-volume path (:class:`repro.ice.solver.SteadyStateSolver`) each
supply their own refresh around their shared pattern/backend machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

__all__ = [
    "PicardSettings",
    "PicardResult",
    "picard_iterate",
    "picard_metadata",
]


@dataclass(frozen=True)
class PicardSettings:
    """Convergence knobs of the Picard outer iteration.

    Attributes
    ----------
    tolerance_K:
        Convergence tolerance on ``||delta T||_inf`` of the bulk coolant
        temperature field between consecutive iterates, in Kelvin.
    max_iterations:
        Hard cap on the number of outer iterations; reaching it without
        converging triggers the constant-property fallback.
    relaxation:
        Under-relaxation factor in (0, 1] applied to the coolant
        temperature update (1.0 = plain fixed point).
    divergence_factor:
        The iteration is declared divergent when the residual grows past
        this multiple of the first iteration's residual (or any iterate
        goes non-finite).
    """

    tolerance_K: float = 1e-4
    max_iterations: int = 25
    relaxation: float = 1.0
    divergence_factor: float = 100.0

    def __post_init__(self) -> None:
        if self.tolerance_K <= 0.0:
            raise ValueError(
                f"picard tolerance_K must be positive, got {self.tolerance_K}"
            )
        if self.max_iterations < 1:
            raise ValueError(
                f"picard max_iterations must be at least 1, "
                f"got {self.max_iterations}"
            )
        if not 0.0 < self.relaxation <= 1.0:
            raise ValueError(
                f"picard relaxation must be in (0, 1], got {self.relaxation}"
            )
        if self.divergence_factor <= 1.0:
            raise ValueError(
                f"picard divergence_factor must exceed 1, "
                f"got {self.divergence_factor}"
            )

    @classmethod
    def from_solver_spec(cls, solver) -> "PicardSettings":
        """Build settings from a :class:`~repro.scenarios.SolverSpec`."""
        return cls(
            tolerance_K=solver.picard_tolerance_K,
            max_iterations=solver.picard_max_iterations,
            relaxation=solver.picard_relaxation,
        )


@dataclass
class PicardResult:
    """Outcome of one Picard outer iteration.

    ``solution`` is the converged solver output, or the constant-property
    baseline when ``fell_back`` is True (divergence or cap exhaustion).
    ``residual_K`` is the last ``||delta T||_inf`` observed (infinity when
    no iteration completed).
    """

    solution: object
    n_iterations: int
    converged: bool
    fell_back: bool
    diverged: bool
    residual_K: float


def picard_iterate(
    base_solution: object,
    base_field: np.ndarray,
    resolve: Callable[[np.ndarray], Tuple[object, np.ndarray]],
    settings: PicardSettings,
) -> PicardResult:
    """Run the fixed-point loop around a solver's value-refresh callback.

    Parameters
    ----------
    base_solution:
        The constant-property solution (iteration 0); returned verbatim as
        the fallback when the iteration diverges or hits the cap.
    base_field:
        The bulk coolant temperature field of ``base_solution`` -- the
        quantity the film properties are evaluated from and the quantity
        convergence is measured on.
    resolve:
        ``resolve(field) -> (solution, new_field)``: re-evaluate the film
        properties at ``field``, refresh the conductance values, solve,
        and return the new solution plus its coolant temperature field.
    settings:
        Convergence knobs.
    """
    field = np.asarray(base_field, dtype=float).copy()
    solution = base_solution
    first_residual = None
    residual = float("inf")
    n_iterations = 0
    converged = False
    diverged = False
    for _ in range(settings.max_iterations):
        n_iterations += 1
        new_solution, candidate = resolve(field)
        candidate = np.asarray(candidate, dtype=float)
        if not np.all(np.isfinite(candidate)):
            diverged = True
            break
        updated = field + settings.relaxation * (candidate - field)
        residual = float(np.max(np.abs(updated - field))) if field.size else 0.0
        solution = new_solution
        field = updated
        if first_residual is None:
            first_residual = residual
        elif (
            first_residual > 0.0
            and residual > settings.divergence_factor * first_residual
        ):
            diverged = True
            break
        if residual <= settings.tolerance_K:
            converged = True
            break
    fell_back = not converged
    return PicardResult(
        solution=base_solution if fell_back else solution,
        n_iterations=n_iterations,
        converged=converged,
        fell_back=fell_back,
        diverged=diverged,
        residual_K=residual,
    )


def picard_metadata(
    model_name: str, settings: PicardSettings, result: PicardResult
) -> Dict[str, object]:
    """The ``metadata["picard"]`` payload both solver families report."""
    return {
        "coolant_model": model_name,
        "n_iterations": result.n_iterations,
        "converged": result.converged,
        "fell_back": result.fell_back,
        "diverged": result.diverged,
        "residual_K": result.residual_K,
        "tolerance_K": settings.tolerance_K,
        "max_iterations": settings.max_iterations,
        "relaxation": settings.relaxation,
    }
