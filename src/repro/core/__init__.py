"""Optimal channel-width modulation -- the paper's primary contribution.

The subpackage turns the thermal substrate (:mod:`repro.thermal`) and the
hydraulics (:mod:`repro.hydraulics`) into the design-time thermal-balancing
flow of the paper: a control-vector parameterization of ``w_C(z)``, the
Eq. (7) cost, the Eq. (8)-(10) constraints, a direct sequential NLP solve,
and the baseline designs used in Sec. V.
"""

from .engine import EvaluationEngine
from .parameterization import WidthParameterization
from .objectives import (
    OBJECTIVES,
    get_objective,
    gradient_norm_cost,
    heat_flow_cost,
    peak_temperature,
    softmax_temperature_range,
    temperature_range,
)
from .constraints import PressureConstraints
from .results import DesignEvaluation, ModulationResult, OptimizationTrace
from .optimizer import ChannelModulationOptimizer, OptimizerSettings
from .baselines import (
    best_uniform_design,
    per_lane_uniform_design,
    uniform_maximum_design,
    uniform_minimum_design,
)
from .designer import ChannelModulationDesigner

__all__ = [
    "EvaluationEngine",
    "WidthParameterization",
    "OBJECTIVES",
    "get_objective",
    "gradient_norm_cost",
    "heat_flow_cost",
    "peak_temperature",
    "softmax_temperature_range",
    "temperature_range",
    "PressureConstraints",
    "DesignEvaluation",
    "ModulationResult",
    "OptimizationTrace",
    "ChannelModulationOptimizer",
    "OptimizerSettings",
    "best_uniform_design",
    "per_lane_uniform_design",
    "uniform_maximum_design",
    "uniform_minimum_design",
    "ChannelModulationDesigner",
]
