"""Shared machinery of the assembled linear thermal systems.

Both model families assemble their sparse systems the same way: emit raw
COO triplets in a deterministic order, fold duplicate coordinates into
canonical CSR slots once per problem *shape*, and refresh only the
coefficient values on every re-assembly.  This module owns that shared hot
path, extracted from :mod:`repro.thermal.assembly` (the finite-difference
cavity model) and :mod:`repro.ice.solver` (the finite-volume stack model):

:class:`SparsityFold`
    The canonical fold of a raw triplet stream: CSR index arrays, the
    scatter map from raw entry order to CSR data slots, and the raw
    row/column arrays themselves (kept because the adjoint machinery of
    :mod:`repro.core.adjoint` evaluates ``lambda^T (dA) u`` directly over
    raw entries without ever folding the perturbed matrix).

:class:`PatternCache`
    The bounded, thread-safe LRU used by both per-shape pattern caches.

Value-refresh kernels
    Folding raw values into CSR data is an unbuffered in-order scatter
    (``data[slot[i]] += values[i]``).  The default kernel is
    :func:`numpy.add.at`; an optional compiled tier (Numba, selected with
    ``REPRO_JIT=1`` when the package is importable) runs the same
    sequential loop in machine code and is bit-identical by construction
    -- ``np.add.at`` is an unbuffered in-order accumulation, and so is the
    compiled loop.  Missing Numba silently degrades to NumPy, so the
    environment flag is always safe to set.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional, Tuple

import numpy as np
from scipy import sparse

__all__ = [
    "PatternCache",
    "SparsityFold",
    "active_refresh_kernel",
    "available_refresh_kernels",
    "get_refresh_kernel",
]

#: Environment variable enabling the compiled value-refresh tier.
JIT_ENV_VAR = "REPRO_JIT"


# -- value-refresh kernels ---------------------------------------------------


def _numpy_refresh(
    entry_to_slot: np.ndarray, values: np.ndarray, nnz: int
) -> np.ndarray:
    """Reference scatter-accumulate: unbuffered, in raw entry order."""
    data = np.zeros(nnz)
    np.add.at(data, entry_to_slot, values)
    return data


_KERNELS: Dict[str, Callable[[np.ndarray, np.ndarray, int], np.ndarray]] = {
    "numpy": _numpy_refresh,
}
_KERNEL_LOCK = threading.Lock()
_NUMBA_STATE = {"probed": False, "available": False}


def _probe_numba() -> bool:
    """Build (once) the Numba scatter kernel; False when unavailable.

    The compiled loop accumulates ``data[slot[i]] += values[i]``
    sequentially -- the same unbuffered in-order semantics as
    ``np.add.at`` -- so the two kernels produce bit-identical data arrays
    (asserted by the test suite whenever Numba is importable).
    """
    with _KERNEL_LOCK:
        if _NUMBA_STATE["probed"]:
            return _NUMBA_STATE["available"]
        _NUMBA_STATE["probed"] = True
        try:
            import numba
        except ImportError:
            _NUMBA_STATE["available"] = False
            return False

        @numba.njit(cache=False)
        def _scatter(slots, values, data):  # pragma: no cover - compiled
            for index in range(slots.size):
                data[slots[index]] += values[index]

        def _numba_refresh(entry_to_slot, values, nnz):
            data = np.zeros(nnz)
            _scatter(
                entry_to_slot,
                np.ascontiguousarray(values, dtype=np.float64),
                data,
            )
            return data

        _KERNELS["numba"] = _numba_refresh
        _NUMBA_STATE["available"] = True
        return True


def available_refresh_kernels() -> Tuple[str, ...]:
    """Names of the value-refresh kernels usable in this environment."""
    _probe_numba()
    return tuple(sorted(_KERNELS))


def get_refresh_kernel(
    name: str,
) -> Callable[[np.ndarray, np.ndarray, int], np.ndarray]:
    """Look up a refresh kernel by name (probing the compiled tier)."""
    _probe_numba()
    try:
        return _KERNELS[name]
    except KeyError:
        raise ValueError(
            f"unknown refresh kernel {name!r}; available: "
            f"{list(available_refresh_kernels())}"
        ) from None


def active_refresh_kernel() -> str:
    """The refresh kernel the folds use right now.

    ``"numba"`` when ``REPRO_JIT=1`` (or any truthy value) is set *and*
    Numba imports; ``"numpy"`` otherwise.  Read per call, so tests and
    benchmarks can flip the environment variable without reloading.
    """
    flag = os.environ.get(JIT_ENV_VAR, "").strip()
    if flag not in ("", "0") and _probe_numba():
        return "numba"
    return "numpy"


# -- the canonical fold ------------------------------------------------------


class SparsityFold:
    """Canonical CSR fold of a raw COO triplet stream for one shape.

    Folds duplicate coordinates once (lexsort by row, then column; first
    occurrence defines the slot) and keeps the scatter map from raw entry
    order to CSR data slots, so re-assembling a system for new parameter
    values is a single scatter-accumulate into a preallocated data array
    -- no sorting, no duplicate folding, and a bit-identical structure
    across refreshes (which the solver backends use to recognize repeated
    matrices and reuse factorizations).

    The raw ``rows``/``cols`` arrays are retained: the adjoint gradient
    path evaluates ``lambda^T (dA/dw) u = sum_e (dv_e/dw) lambda[row_e]
    u[col_e]`` directly over raw entries, which needs the coordinates in
    the emitters' entry order.
    """

    def __init__(
        self, rows: np.ndarray, cols: np.ndarray, n_unknowns: int
    ) -> None:
        rows = np.ascontiguousarray(rows, dtype=np.intp)
        cols = np.ascontiguousarray(cols, dtype=np.intp)
        if rows.shape != cols.shape or rows.ndim != 1:
            raise ValueError("rows and cols must be equal-length 1-D arrays")
        if rows.size == 0:
            raise ValueError("cannot fold an empty triplet stream")
        self.rows = rows
        self.cols = cols
        self.n_unknowns = int(n_unknowns)
        self.n_entries = int(rows.size)

        order = np.lexsort((cols, rows))
        sorted_rows = rows[order]
        sorted_cols = cols[order]
        first = np.empty(self.n_entries, dtype=bool)
        first[0] = True
        first[1:] = (sorted_rows[1:] != sorted_rows[:-1]) | (
            sorted_cols[1:] != sorted_cols[:-1]
        )
        slot_of_sorted = np.cumsum(first) - 1
        entry_to_slot = np.empty(self.n_entries, dtype=np.intp)
        entry_to_slot[order] = slot_of_sorted
        self.entry_to_slot = entry_to_slot
        unique_rows = sorted_rows[first]
        self.nnz = int(unique_rows.size)
        self.indices = sorted_cols[first].astype(np.int32, copy=True)
        self.indptr = np.searchsorted(
            unique_rows, np.arange(self.n_unknowns + 1)
        ).astype(np.int32, copy=True)

    def fold(self, values: np.ndarray) -> np.ndarray:
        """Fold raw COO values into the CSR data array.

        Goes through the active refresh kernel (NumPy by default, the
        compiled tier under ``REPRO_JIT=1``); both kernels are unbuffered
        in-order accumulations, so the result is bit-identical either way.
        """
        values = np.asarray(values)
        if values.shape != (self.n_entries,):
            raise ValueError(
                f"expected {self.n_entries} coefficient values, "
                f"got {values.shape}"
            )
        kernel = _KERNELS[active_refresh_kernel()]
        return kernel(self.entry_to_slot, values, self.nnz)

    def matrix(self, values: np.ndarray) -> sparse.csr_matrix:
        """Fold raw COO values into a CSR matrix with the static structure."""
        return sparse.csr_matrix(
            (self.fold(values), self.indices, self.indptr),
            shape=(self.n_unknowns, self.n_unknowns),
        )


# -- the shared pattern cache ------------------------------------------------


class PatternCache:
    """Bounded, thread-safe LRU of per-shape pattern objects.

    One instance per pattern family (finite-difference cavity shapes,
    finite-volume stack shapes).  ``get_or_build`` runs the factory
    outside the lock -- concurrent builders of the same shape may race,
    but patterns are immutable and the last writer simply wins.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()

    def get_or_build(
        self, key: Hashable, factory: Callable[[], object]
    ) -> object:
        """The cached pattern for ``key``, building it on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                return entry
        entry = factory()
        with self._lock:
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return entry

    def get(self, key: Hashable) -> Optional[object]:
        """The cached pattern for ``key`` (no build), refreshing recency."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def clear(self) -> None:
        """Drop every cached pattern (used by tests and benchmarks)."""
        with self._lock:
            self._entries.clear()

    def info(self) -> dict:
        """Current size, capacity and keys of the cache."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "keys": list(self._entries.keys()),
            }
