"""High-level public API: :class:`ChannelModulationDesigner`.

This is the front door of the library: it wraps structure construction,
baseline evaluation, the direct sequential optimization and the comparison
reporting into a handful of calls, so that the examples and the benchmarks
read like the paper's experimental protocol::

    designer = ChannelModulationDesigner(structure)
    result = designer.design()
    print(result.summary()["gradient_reduction"])     # ~0.2-0.35

The designer also exposes the individual baseline designs (uniform minimum /
maximum / best uniform / per-lane uniform) for design-space exploration.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..thermal.geometry import (
    MultiChannelStructure,
    WidthProfile,
)
from . import baselines as baseline_designs
from .optimizer import ChannelModulationOptimizer, OptimizerSettings
from .results import DesignEvaluation, ModulationResult

__all__ = ["ChannelModulationDesigner"]


class ChannelModulationDesigner:
    """Design-time thermal balancing of a liquid-cooled cavity.

    Parameters
    ----------
    structure:
        The cavity to balance (a single-channel
        :class:`~repro.thermal.geometry.TestStructure` or a multi-lane
        :class:`~repro.thermal.geometry.MultiChannelStructure`).
    settings:
        Optimizer settings; the defaults reproduce the paper's formulation
        (Eq. 7 objective, piecewise-constant control, SLSQP direct
        sequential solve with pressure constraints).
    max_pressure_drop:
        Optional override of the Table I pressure limit (Pa).
    engine:
        Optional shared :class:`~repro.core.engine.EvaluationEngine`; by
        default the optimizer creates one from the settings
        (``solver_backend``, ``cache_size``, ``n_workers``).
    """

    def __init__(
        self,
        structure,
        settings: OptimizerSettings = OptimizerSettings(),
        max_pressure_drop: Optional[float] = None,
        engine=None,
    ) -> None:
        self.optimizer = ChannelModulationOptimizer(structure, settings, engine=engine)
        if max_pressure_drop is not None:
            if max_pressure_drop <= 0.0:
                raise ValueError("max_pressure_drop must be positive")
            self.optimizer.pressure.max_pressure_drop = float(max_pressure_drop)

    @classmethod
    def from_spec(cls, spec, engine=None) -> "ChannelModulationDesigner":
        """Build a designer from a :class:`~repro.scenarios.ScenarioSpec`.

        The scenario's workload becomes the structure, its grid/solver/
        optimizer sections become the settings, and an optional shared
        evaluation engine (e.g. from a :class:`~repro.api.Session`) can be
        threaded through.
        """
        return cls(
            spec.build_structure(),
            spec.optimizer_settings(),
            max_pressure_drop=spec.optimizer.max_pressure_drop_Pa,
            engine=engine,
        )

    # -- convenience accessors ------------------------------------------------------

    @property
    def structure(self) -> MultiChannelStructure:
        """The cavity being designed."""
        return self.optimizer.structure

    @property
    def settings(self) -> OptimizerSettings:
        """The optimizer settings in use."""
        return self.optimizer.settings

    @property
    def engine(self):
        """The evaluation engine (solution cache + batching) in use."""
        return self.optimizer.engine

    # -- designs -----------------------------------------------------------------------

    def design(
        self,
        initial_profiles: Optional[Sequence[WidthProfile]] = None,
    ) -> ModulationResult:
        """Run the optimal channel-modulation design and return the result.

        ``initial_profiles`` optionally warm-starts the NLP from an existing
        design (for example the output of a previous run with fewer
        segments).
        """
        initial_vector = None
        if initial_profiles is not None:
            initial_vector = self.optimizer.parameterization.vector_from_profiles(
                list(initial_profiles)
            )
        return self.optimizer.optimize(initial_vector=initial_vector)

    def evaluate_uniform(self, width: float) -> DesignEvaluation:
        """Evaluate a uniform-width design at the given width (meters)."""
        return self.optimizer.evaluate_uniform(width)

    def evaluate_profiles(
        self, profiles: Sequence[WidthProfile], label: str = "custom"
    ) -> DesignEvaluation:
        """Evaluate an arbitrary set of per-lane width profiles."""
        return self.optimizer.evaluate_design(list(profiles), label)

    def uniform_minimum(self) -> DesignEvaluation:
        """The uniform ``w_Cmin`` bracket design."""
        return baseline_designs.uniform_minimum_design(self.optimizer)

    def uniform_maximum(self) -> DesignEvaluation:
        """The uniform ``w_Cmax`` bracket design (conventional baseline)."""
        return baseline_designs.uniform_maximum_design(self.optimizer)

    def best_uniform(self, n_candidates: int = 17) -> DesignEvaluation:
        """The best single constant width under the pressure limit."""
        return baseline_designs.best_uniform_design(
            self.optimizer, n_candidates=n_candidates
        )

    def per_lane_uniform(self, n_candidates: int = 9) -> DesignEvaluation:
        """One constant width per lane (lateral-only adaptation baseline)."""
        return baseline_designs.per_lane_uniform_design(
            self.optimizer, n_candidates=n_candidates
        )

    # -- design-space exploration ---------------------------------------------------------

    def width_sweep(self, n_candidates: int = 9) -> List[DesignEvaluation]:
        """Evaluate a sweep of uniform widths between the fabrication bounds.

        Returns one evaluation per width; used by the examples to show the
        extra design dimension the paper adds on top of the conventional
        single-width choice.  The thermal solves of the whole sweep are
        batched through the evaluation engine (parallel when the settings
        request ``n_workers > 1``) before the per-design hydraulics run.
        """
        geometry = self.structure.geometry
        widths = np.linspace(geometry.min_width, geometry.max_width, n_candidates)
        candidates = [
            self.structure.with_uniform_width(float(width)) for width in widths
        ]
        self.engine.solve_many(candidates, n_points=self.settings.n_grid_points)
        return [self.optimizer.evaluate_uniform(float(width)) for width in widths]
