"""Krylov reduced-order models for the transient path.

The transient engine integrates the full finite-volume state every
backward-Euler step: ``(C/dt + A) T_{n+1} = C/dt T_n + b(t_n)``.  For the
questions campaigns actually ask -- "peak temperature over this trace",
"time above threshold" -- the state wanders a low-dimensional subspace:
the thermal operator is strongly dissipative and the inputs (static heat
maps plus a handful of per-layer traces) span a few directions.  This
module projects the implicit system onto a block-Krylov subspace built
from exactly those directions, so a step becomes one small dense
triangular solve (order ~tens) instead of a sparse back-substitution over
every cell.

:func:`build_reduced_model` runs a block-Arnoldi recurrence on the
backward-Euler propagation operator ``P = (C/dt + A)^{-1} C/dt``: the
starting block holds the uniform initial-state direction, the implicit
solve of the static load ``b0`` and the implicit solves of the sampled
trace input directions, and successive blocks apply ``P`` with two-pass
modified Gram-Schmidt re-orthonormalization.  Directions whose residual
norm falls below ``tolerance`` (relative to their pre-projection norm) are
deflated, so the realized order adapts to how much of the space the
inputs actually excite.  The dense reduced operators ``Vᵀ(C/dt + A)V``
(LU-factorized once) and ``Vᵀ(C/dt)V`` step the reduced state; *output
maps* -- the basis restricted to the solid and coolant cells -- track the
per-step peak temperature and coolant rise without lifting the full
state, which is reconstructed (``T ≈ V x``) only for stored snapshots and
on demand.

Because the Arnoldi solves go through the scenario's solver backend with
the implicit system's pattern token, building a model warms the very
factorization the full path (and the checkpoint error probes) would use.

:func:`reduced_model_for` is a small bounded, thread-safe LRU over built
models keyed by the same content identity the batched transient engine
groups on (implicit-matrix digest + input digests + build settings), so
quantized flow-scale levels, control chunks, repeated scenarios and
MPC rollout contexts reuse bases instead of rebuilding them.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np
from scipy.linalg import lu_factor, lu_solve

__all__ = [
    "ReducedTransientModel",
    "build_reduced_model",
    "reduced_model_for",
    "clear_rom_cache",
    "rom_cache_stats",
]

#: Deflation never goes below this, whatever ``tolerance`` says: directions
#: at the roundoff floor carry no information and destabilize the basis.
_DEFLATION_FLOOR = 1e-13

#: Bound on the model cache: bases are dense ``n x order`` arrays, so a
#: handful covers the flow-scale levels a controller visits without
#: letting a scale-sweeping campaign hoard memory.
_CACHE_MAX_ENTRIES = 8


class ReducedTransientModel:
    """A projected backward-Euler integrator with peak-tracking outputs.

    Instances are immutable after construction and safe to share across
    scenarios and threads: :meth:`step` only reads the factorized reduced
    operators.  Build one with :func:`build_reduced_model`.
    """

    def __init__(
        self,
        basis: np.ndarray,
        reduced_implicit_lu,
        reduced_c_over_dt: np.ndarray,
        projected_base_rhs: np.ndarray,
        base_rhs: np.ndarray,
        rhs_fn: Callable[[float], np.ndarray],
        input_rows: Optional[np.ndarray],
        outputs: Dict[str, np.ndarray],
        n_build_solves: int,
    ) -> None:
        self.basis = basis
        self._lu = reduced_implicit_lu
        self._c_over_dt_r = reduced_c_over_dt
        # Dense propagation matrix of the reduced recurrence
        # ``x' = P x + M^{-1} Vᵀb``: precomputing ``P = M^{-1} Cr`` turns
        # the per-step triangular solve into one tiny matvec, and lets
        # the engine advance whole control chunks with BLAS-level loops.
        self._propagation = lu_solve(reduced_implicit_lu, reduced_c_over_dt)
        self._projected_base_rhs = projected_base_rhs
        self._base_rhs = base_rhs
        self._rhs_fn = rhs_fn
        self._input_rows = input_rows
        self._basis_input_rows = (
            None if input_rows is None else basis[input_rows, :].copy()
        )
        # Output maps: the basis restricted to a named cell selection, so
        # observables are small dense matvecs instead of full lifts.
        self._outputs = {
            name: basis[rows, :].copy() for name, rows in outputs.items()
        }
        self.n_build_solves = int(n_build_solves)

    @property
    def order(self) -> int:
        """Realized basis size (after tolerance-driven deflation)."""
        return int(self.basis.shape[1])

    @property
    def n_unknowns(self) -> int:
        """Dimension of the full state the model reduces."""
        return int(self.basis.shape[0])

    # -- state transport ----------------------------------------------------

    def project(self, state: np.ndarray) -> np.ndarray:
        """Galerkin projection of a full state onto the basis."""
        return self.basis.T @ state

    def lift(self, reduced_state: np.ndarray) -> np.ndarray:
        """Reconstruct the full state ``T ≈ V x`` (lift-on-demand)."""
        return self.basis @ reduced_state

    # -- stepping -----------------------------------------------------------

    def project_rhs(self, time: float) -> np.ndarray:
        """``Vᵀ b(time)`` without touching rows the traces cannot reach.

        The right-hand side differs from the static load only on the
        trace-driven rows, so the projection is the precomputed
        ``Vᵀ b0`` plus a small correction over those rows; a model built
        without ``input_rows`` falls back to the full projection.
        """
        rhs = self._rhs_fn(time)
        if rhs is self._base_rhs:
            return self._projected_base_rhs
        if self._basis_input_rows is None:
            return self.basis.T @ rhs
        rows = self._input_rows
        delta = rhs[rows] - self._base_rhs[rows]
        return self._projected_base_rhs + self._basis_input_rows.T @ delta

    def step(self, reduced_state: np.ndarray, time: float) -> np.ndarray:
        """One reduced backward-Euler step to absolute ``time``."""
        rhs = self.project_rhs(time) + self._c_over_dt_r @ reduced_state
        return lu_solve(self._lu, rhs)

    @property
    def propagation(self) -> np.ndarray:
        """The dense reduced propagation matrix ``P = M^{-1} Vᵀ(C/dt)V``."""
        return self._propagation

    def solve_projected(self, projected_rhs: np.ndarray) -> np.ndarray:
        """``M^{-1} r`` for one projected rhs vector or a matrix of them.

        With the propagation matrix this factors the recurrence as
        ``x_{k+1} = P x_k + M^{-1} Vᵀ b_k``: callers batch every ``b_k``
        of a control chunk into one dense solve, then advance with one
        tiny matvec per step.
        """
        return lu_solve(self._lu, projected_rhs)

    # -- outputs ------------------------------------------------------------

    def output(self, name: str, reduced_state: np.ndarray) -> np.ndarray:
        """The named output map applied to a reduced state."""
        return self._outputs[name] @ reduced_state

    def output_max(self, name: str, reduced_state: np.ndarray) -> float:
        """Max of an output map (empty selections are ``-inf``-free 0.0)."""
        values = self._outputs[name] @ reduced_state
        if values.size == 0:
            return 0.0
        return float(np.max(values))

    def output_max_many(
        self, name: str, reduced_states: np.ndarray
    ) -> np.ndarray:
        """Per-column maxima of an output map over a ``(order, k)`` block.

        One BLAS-3 product covers a whole control chunk of states; empty
        selections yield zeros (mirroring :meth:`output_max`).
        """
        output_map = self._outputs[name]
        if output_map.shape[0] == 0:
            return np.zeros(reduced_states.shape[1])
        return np.max(output_map @ reduced_states, axis=0)


def _orthonormalize_into(
    columns: List[np.ndarray], vector: np.ndarray, tolerance: float
) -> Optional[np.ndarray]:
    """Two-pass MGS of ``vector`` against ``columns``; None if deflated."""
    norm0 = float(np.linalg.norm(vector))
    if norm0 == 0.0 or not np.isfinite(norm0):
        return None
    vector = vector / norm0
    for _ in range(2):  # second pass restores orthogonality lost to roundoff
        for column in columns:
            vector = vector - column * float(column @ vector)
    norm = float(np.linalg.norm(vector))
    if norm <= max(tolerance, _DEFLATION_FLOOR):
        return None
    vector = vector / norm
    columns.append(vector)
    return vector


def build_reduced_model(
    implicit,
    c_over_dt,
    solve: Callable[[np.ndarray], np.ndarray],
    base_rhs: np.ndarray,
    input_directions: Sequence[np.ndarray],
    rhs_fn: Callable[[float], np.ndarray],
    *,
    order: int,
    tolerance: float,
    input_rows: Optional[np.ndarray] = None,
    outputs: Optional[Dict[str, np.ndarray]] = None,
) -> ReducedTransientModel:
    """Block-Arnoldi projection of one implicit backward-Euler system.

    Parameters
    ----------
    implicit / c_over_dt:
        The sparse ``C/dt + A`` matrix and the ``C/dt`` diagonal returned
        by :meth:`repro.ice.transient.TransientSolver.implicit_system`.
    solve:
        ``rhs -> implicit^{-1} rhs`` through the scenario's solver backend
        (which caches the factorization under the implicit token).
    base_rhs:
        The static load vector; its implicit solve seeds the basis and its
        projection is precomputed for the stepping hot path.
    input_directions:
        Extra input directions (sampled trace deltas); each is solved
        through ``implicit`` and joins the starting block.
    rhs_fn:
        ``time -> b(time)``, evaluated by :meth:`ReducedTransientModel.step`.
    order:
        Maximum basis size; the realized order may be smaller when the
        Krylov space closes or ``tolerance`` deflates directions.
    tolerance:
        Relative deflation threshold of the Gram-Schmidt recurrence.
    input_rows:
        Row indices the traces can modify (for the cheap per-step rhs
        projection); None projects the full rhs every step.
    outputs:
        Named cell selections to build output maps for (e.g. solid /
        coolant cells).
    """
    n = int(implicit.shape[0])
    order = max(1, min(int(order), n))
    tolerance = float(tolerance)
    columns: List[np.ndarray] = []
    n_solves = 0

    # Starting block: the uniform-state direction (any uniform initial
    # condition is then represented exactly), the static-load response and
    # the trace input responses.
    seeds = [np.ones(n)]
    for direction in (base_rhs, *input_directions):
        direction = np.asarray(direction, dtype=float)
        if float(np.linalg.norm(direction)) == 0.0:
            continue
        seeds.append(solve(direction))
        n_solves += 1

    block: List[np.ndarray] = []
    for seed in seeds:
        kept = _orthonormalize_into(columns, seed, tolerance)
        if kept is not None:
            block.append(kept)
        if len(columns) >= order:
            break

    # Arnoldi recurrence on the propagation operator P = implicit^{-1} C/dt.
    while len(columns) < order and block:
        next_block: List[np.ndarray] = []
        for vector in block:
            propagated = solve(c_over_dt @ vector)
            n_solves += 1
            kept = _orthonormalize_into(columns, propagated, tolerance)
            if kept is not None:
                next_block.append(kept)
            if len(columns) >= order:
                break
        block = next_block

    basis = np.column_stack(columns)
    reduced_implicit = basis.T @ (implicit @ basis)
    reduced_c = basis.T @ (c_over_dt @ basis)
    return ReducedTransientModel(
        basis=basis,
        reduced_implicit_lu=lu_factor(reduced_implicit),
        reduced_c_over_dt=reduced_c,
        projected_base_rhs=basis.T @ np.asarray(base_rhs, dtype=float),
        base_rhs=np.asarray(base_rhs),
        rhs_fn=rhs_fn,
        input_rows=(
            None if input_rows is None else np.asarray(input_rows, dtype=int)
        ),
        outputs=outputs or {},
        n_build_solves=n_solves,
    )


# -- bounded model cache -----------------------------------------------------

_CACHE: "OrderedDict[tuple, ReducedTransientModel]" = OrderedDict()
_CACHE_LOCK = threading.Lock()
_CACHE_STATS = {"n_hits": 0, "n_misses": 0, "n_evictions": 0}


def reduced_model_for(
    key: tuple, factory: Callable[[], ReducedTransientModel]
) -> tuple:
    """``(model, built)`` for a content key, through the bounded cache.

    ``key`` must capture everything the build depends on (implicit-matrix
    content, input content, order, tolerance, backend); callers in the
    transient engine derive it from the same digests
    ``simulate_transient_many`` groups on.  The factory runs outside the
    lock; when two threads race, the first insertion wins and the loser's
    model is discarded (both are bit-identical by construction).
    """
    with _CACHE_LOCK:
        model = _CACHE.get(key)
        if model is not None:
            _CACHE.move_to_end(key)
            _CACHE_STATS["n_hits"] += 1
            return model, False
        _CACHE_STATS["n_misses"] += 1
    model = factory()
    with _CACHE_LOCK:
        existing = _CACHE.get(key)
        if existing is not None:
            return existing, False
        _CACHE[key] = model
        while len(_CACHE) > _CACHE_MAX_ENTRIES:
            _CACHE.popitem(last=False)
            _CACHE_STATS["n_evictions"] += 1
    return model, True


def clear_rom_cache() -> None:
    """Empty the model cache and reset its statistics (tests, benchmarks)."""
    with _CACHE_LOCK:
        _CACHE.clear()
        for counter in _CACHE_STATS:
            _CACHE_STATS[counter] = 0


def rom_cache_stats() -> Dict[str, int]:
    """Snapshot of the cache counters plus its current size."""
    with _CACHE_LOCK:
        stats = dict(_CACHE_STATS)
        stats["n_entries"] = len(_CACHE)
    return stats
