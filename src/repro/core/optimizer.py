"""Direct sequential solver for the optimal channel-modulation problem.

The paper (Sec. IV-C) solves the optimal control problem with the *direct
sequential* method: the control ``w_C(z)`` is parameterized as piecewise
constant, the state equation is solved exactly for every candidate control,
and the resulting finite-dimensional nonlinear program

    min_x  J(x)     subject to  0 <= x <= 1,  dP_i(x) <= dP_max,
                                dP_i(x) = dP_j(x)

is handed to a gradient-based NLP solver.  The paper leaves the choice of
NLP solver open; we use SciPy's SLSQP and optionally refine from several
starting points, which is sufficient for the problem sizes of the paper's
experiments.

The expensive part of every evaluation is the steady-state thermal solve.
Two mechanisms keep that cost down:

* solutions are memoized on the design fingerprint in the evaluation
  engine's LRU cache, so SLSQP's repeated cost/constraint evaluations at
  one iterate reuse one solve; and
* instead of SLSQP's *internal* finite differences (``n_variables + 1``
  strictly sequential solves per gradient), the optimizer hands SLSQP an
  explicit ``jac`` that evaluates all ``n + 1`` perturbed designs in a
  single :meth:`~repro.core.engine.EvaluationEngine.solve_many` batch --
  deduplicated against the cache and fanned out over the engine's thread
  pool -- plus explicit (cheap, hydraulics-only) constraint Jacobians.
  Multistart restarts likewise run concurrently off the shared engine when
  ``n_workers > 1``.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from ..hydraulics.pressure import pressure_drop
from ..thermal.geometry import (
    MultiChannelStructure,
    TestStructure,
    WidthProfile,
)
from ..thermal.solution import ThermalSolution
from .adjoint import AdjointGradient, supports_adjoint
from .constraints import PressureConstraints
from .engine import EvaluationEngine
from .objectives import get_objective
from .parameterization import WidthParameterization
from .results import DesignEvaluation, ModulationResult, OptimizationTrace

__all__ = ["GRADIENT_MODES", "OptimizerSettings", "ChannelModulationOptimizer"]

#: Cost-gradient evaluation strategies of the direct sequential solve.
GRADIENT_MODES = ("adjoint", "fd-batched")


@dataclass(frozen=True)
class OptimizerSettings:
    """Knobs of the direct sequential solve.

    Attributes
    ----------
    n_segments:
        Piecewise-constant segments per lane trajectory.
    shared_profile:
        If True, all lanes share one trajectory (fewer variables).
    objective:
        Name of the objective in :mod:`repro.core.objectives`
        (``"gradient_norm"`` is the paper's Eq. 7).
    n_grid_points:
        z-grid resolution of the thermal solves.
    max_iterations:
        SLSQP iteration limit.
    tolerance:
        SLSQP convergence tolerance (on the scaled cost).
    finite_difference_step:
        Step of the finite-difference cost gradients (applied to the
        normalized decision variables in [0, 1]).
    gradient_mode:
        Cost-gradient strategy: ``"adjoint"`` (default) evaluates the
        exact gradient of the discrete linear system with one forward and
        one transpose solve per iterate (see :mod:`repro.core.adjoint`),
        independent of the number of design variables; ``"fd-batched"``
        is the batched finite-difference reference oracle (``n + 1``
        solves per iterate).  Objectives without an adjoint
        (``temperature_range``, ``peak_temperature``) fall back to
        ``"fd-batched"`` with a warning.
    use_batched_gradients:
        Evaluate the cost gradient as one batched ``solve_many`` call (all
        ``n + 1`` perturbed designs at once, parallel across ``n_workers``)
        and hand SLSQP explicit cost/constraint Jacobians.  False restores
        SLSQP's internal sequential finite differences (kept as the
        benchmark baseline).
    multistart:
        Number of starting points.  The first start is always the uniform
        mid-width design; additional starts interpolate between the uniform
        minimum and maximum width designs.
    enforce_equal_pressure:
        Add the Eq. (10) hydraulic balance constraint for multi-lane,
        per-lane problems.
    equal_pressure_tolerance:
        Allowed relative pressure imbalance when balancing is enforced.
    solver_backend:
        Name of the linear-solver backend used for the thermal solves
        (see :func:`repro.thermal.backends.available_backends`); ``"auto"``
        picks dense/sparse by system size.
    n_workers:
        Thread-pool width of the evaluation engine for batched candidate
        evaluation (multistart warm-up, sweeps); 1 solves sequentially.
    cache_size:
        Capacity of the engine's LRU solution cache.
    """

    n_segments: int = 10
    shared_profile: bool = False
    objective: str = "gradient_norm"
    n_grid_points: int = 241
    max_iterations: int = 80
    tolerance: float = 1e-8
    finite_difference_step: float = 1e-3
    gradient_mode: str = "adjoint"
    use_batched_gradients: bool = True
    multistart: int = 1
    enforce_equal_pressure: bool = True
    equal_pressure_tolerance: float = 0.05
    solver_backend: str = "auto"
    n_workers: int = 1
    cache_size: int = 4096

    def __post_init__(self) -> None:
        if self.n_segments < 1:
            raise ValueError("n_segments must be at least 1")
        if self.n_grid_points < 3:
            raise ValueError("n_grid_points must be at least 3")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if self.multistart < 1:
            raise ValueError("multistart must be at least 1")
        if self.n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if self.cache_size < 1:
            raise ValueError("cache_size must be at least 1")
        if self.gradient_mode not in GRADIENT_MODES:
            raise ValueError(
                f"gradient_mode must be one of {list(GRADIENT_MODES)}, "
                f"got {self.gradient_mode!r}"
            )


class ChannelModulationOptimizer:
    """Direct sequential optimizer for one cavity (single- or multi-channel).

    Parameters
    ----------
    structure:
        The cavity to optimize.  A plain
        :class:`~repro.thermal.geometry.TestStructure` is treated as a
        one-lane cavity.
    settings:
        Optimizer settings; defaults reproduce the paper's formulation.
    engine:
        Optional shared :class:`~repro.core.engine.EvaluationEngine`;
        passing one lets several optimizers (or an optimizer and external
        sweeps) share one solution cache.  By default a private engine is
        created from the settings.
    """

    def __init__(
        self,
        structure,
        settings: OptimizerSettings = OptimizerSettings(),
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        if isinstance(structure, TestStructure):
            structure = MultiChannelStructure.single(structure)
        if not isinstance(structure, MultiChannelStructure):
            raise TypeError(
                "structure must be a TestStructure or MultiChannelStructure"
            )
        self.structure = structure
        self.settings = settings
        self.parameterization = WidthParameterization(
            geometry=structure.geometry,
            n_segments=settings.n_segments,
            n_lanes=structure.n_lanes,
            shared=settings.shared_profile,
        )
        self._objective = get_objective(settings.objective)
        self.pressure = PressureConstraints(
            parameterization=self.parameterization,
            geometry=structure.geometry,
            coolant=structure.coolant,
            flow_rate=structure.lanes[0].flow_rate,
            max_pressure_drop=self._max_pressure_drop(),
            enforce_equal_pressure=settings.enforce_equal_pressure,
            equal_pressure_tolerance=settings.equal_pressure_tolerance,
        )
        self.engine = engine or EvaluationEngine(
            solver_backend=settings.solver_backend,
            cache_size=settings.cache_size,
            n_workers=settings.n_workers,
        )
        self._cost_scale: Optional[float] = None
        #: The gradient strategy actually in effect: the requested mode,
        #: demoted to "fd-batched" (loudly) when the objective is nonsmooth.
        self.effective_gradient_mode = settings.gradient_mode
        self._adjoint: Optional[AdjointGradient] = None
        if settings.gradient_mode == "adjoint":
            if supports_adjoint(settings.objective):
                self._adjoint = AdjointGradient(
                    structure=self.structure,
                    parameterization=self.parameterization,
                    objective=settings.objective,
                    n_points=settings.n_grid_points,
                    engine=self.engine,
                )
            else:
                warnings.warn(
                    f"objective {settings.objective!r} has no adjoint "
                    "(nonsmooth); falling back to gradient_mode="
                    "'fd-batched'",
                    stacklevel=2,
                )
                self.effective_gradient_mode = "fd-batched"

    def _max_pressure_drop(self) -> float:
        """Pressure limit, taken from the Table I default unless overridden."""
        # The limit is a property of the delivery network, not of the lanes,
        # so it is stored on the optimizer; designers can override it by
        # assigning ``optimizer.pressure.max_pressure_drop`` before running.
        from ..thermal.properties import TABLE_I

        return TABLE_I.max_pressure_drop

    # -- evaluation ----------------------------------------------------------------

    def candidate_structure(self, vector: np.ndarray) -> MultiChannelStructure:
        """The cavity with the width profiles encoded by ``vector``."""
        profiles = self.parameterization.profiles_from_vector(vector)
        return self.structure.with_width_profiles(profiles)

    def solve_candidate(self, vector: np.ndarray) -> ThermalSolution:
        """Steady-state thermal solution of the design encoded by ``vector``.

        Solutions come from the evaluation engine's LRU cache, which is
        shared with :meth:`evaluate_design` and the baselines: the repeated
        cost/constraint evaluations of SLSQP at one iterate, and any later
        re-evaluation of a design the optimizer already visited, reuse one
        thermal solve.
        """
        return self.engine.solve(
            self.candidate_structure(vector),
            n_points=self.settings.n_grid_points,
        )

    def evaluate_candidates(
        self, vectors: Sequence[np.ndarray]
    ) -> List[ThermalSolution]:
        """Batch-solve many decision vectors through the engine.

        Duplicates are solved once; with ``settings.n_workers > 1`` the
        unique solves run in parallel.  Used by the multistart schedule and
        available to design-space-exploration sweeps.
        """
        candidates = [self.candidate_structure(vector) for vector in vectors]
        return self.engine.solve_many(
            candidates, n_points=self.settings.n_grid_points
        )

    def cost(self, vector: np.ndarray) -> float:
        """Objective value (unscaled) for a decision vector."""
        return float(self._objective(self.solve_candidate(vector)))

    def _scaled_cost(self, vector: np.ndarray) -> float:
        """Objective scaled to order one for the NLP solver."""
        value = self.cost(vector)
        if self._cost_scale is None or self._cost_scale == 0.0:
            return value
        return value / self._cost_scale

    # -- batched gradients -------------------------------------------------------------

    def gradient_points(
        self, vector: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The forward-difference stencil around a decision vector.

        Returns ``(steps, points)`` where ``points[i]`` perturbs component
        ``i`` of ``vector`` by ``steps[i]``; the step flips to backward at
        the upper box bound so every evaluated design stays inside the
        fabrication limits.
        """
        vector = np.asarray(vector, dtype=float)
        step = float(self.settings.finite_difference_step)
        steps = np.where(vector + step <= 1.0, step, -step)
        points = vector[None, :] + np.diag(steps)
        return steps, points

    def cost_gradient(self, vector: np.ndarray) -> np.ndarray:
        """Finite-difference gradient of the (unscaled) objective.

        All ``n_variables + 1`` designs of the stencil (the base point plus
        one perturbation per variable) are solved in a *single*
        :meth:`~repro.core.engine.EvaluationEngine.solve_many` batch:
        duplicates and already-cached designs (typically the base point,
        which SLSQP just evaluated) cost nothing, and the remaining solves
        run in parallel across the engine's ``n_workers`` threads.
        """
        vector = np.asarray(vector, dtype=float)
        steps, points = self.gradient_points(vector)
        candidates = [self.candidate_structure(vector)] + [
            self.candidate_structure(point) for point in points
        ]
        solutions = self.engine.solve_many(
            candidates, n_points=self.settings.n_grid_points
        )
        values = np.array([float(self._objective(s)) for s in solutions])
        return (values[1:] - values[0]) / steps

    def adjoint_cost_gradient(self, vector: np.ndarray) -> np.ndarray:
        """Adjoint gradient of the (unscaled) objective.

        One cached forward solve plus one transpose solve reusing the
        forward factorization, regardless of the number of design
        variables (see :mod:`repro.core.adjoint`).  Only available when
        the objective supports it (``self._adjoint`` is set).
        """
        if self._adjoint is None:
            raise RuntimeError(
                "adjoint gradients are not available for objective "
                f"{self.settings.objective!r} (effective mode is "
                f"{self.effective_gradient_mode!r})"
            )
        return self._adjoint.gradient(vector)

    def _scaled_cost_gradient(self, vector: np.ndarray) -> np.ndarray:
        """Gradient of :meth:`_scaled_cost` (the ``jac`` handed to SLSQP)."""
        if self.effective_gradient_mode == "adjoint":
            gradient = self.adjoint_cost_gradient(vector)
        else:
            gradient = self.cost_gradient(vector)
        if self._cost_scale is None or self._cost_scale == 0.0:
            return gradient
        return gradient / self._cost_scale

    def evaluate_design(
        self, profiles: Sequence[WidthProfile], label: str
    ) -> DesignEvaluation:
        """Full thermal + hydraulic evaluation of an explicit design.

        The thermal solve goes through the evaluation engine, so designs
        the optimizer already visited (e.g. the optimum re-evaluated after
        the SLSQP run, or a baseline evaluated twice) are served from the
        solution cache instead of being re-solved.
        """
        candidate = self.structure.with_width_profiles(list(profiles))
        solution = self.engine.solve(
            candidate, n_points=self.settings.n_grid_points
        )
        flow_rate = self.structure.lanes[0].flow_rate
        drops = np.array(
            [
                pressure_drop(
                    profile,
                    self.structure.geometry,
                    flow_rate,
                    self.structure.coolant,
                )
                for profile in profiles
            ]
        )
        return DesignEvaluation(
            label=label,
            width_profiles=list(profiles),
            solution=solution,
            pressure_drops=drops,
            metadata={
                "objective": self.settings.objective,
                "n_grid_points": self.settings.n_grid_points,
                "cluster_size": self.structure.cluster_size,
            },
        )

    def evaluate_uniform(self, width: float, label: Optional[str] = None) -> DesignEvaluation:
        """Evaluate a uniform-width design (used for the paper's baselines)."""
        profile = WidthProfile.uniform(width, self.structure.geometry.length)
        label = label or f"uniform {width * 1e6:.0f} um"
        return self.evaluate_design([profile] * self.structure.n_lanes, label)

    # -- starting points --------------------------------------------------------------

    def _starting_points(self) -> List[np.ndarray]:
        """Decision vectors used as multistart initial guesses."""
        starts = [self.parameterization.midpoint_vector()]
        extra = self.settings.multistart - 1
        if extra > 0:
            fractions = np.linspace(0.15, 0.85, extra)
            for fraction in fractions:
                starts.append(
                    np.full(self.parameterization.n_variables, float(fraction))
                )
        return starts

    # -- feasibility repair -----------------------------------------------------------------

    def _repair_feasibility(self, vector: np.ndarray) -> np.ndarray:
        """Project a slightly infeasible iterate back into the feasible set.

        SLSQP iterates can end a run (e.g. at the iteration limit) with a
        small violation of the pressure constraints.  Channel widening
        monotonically reduces both the pressure drop and the imbalance, so
        blending the candidate toward the all-maximum-width design is a
        cheap, physically meaningful projection: a bisection on the blend
        factor finds the closest feasible point along that segment.  Feasible
        candidates are returned unchanged.
        """
        if self.pressure.is_feasible(vector, slack=1e-9):
            return vector
        widest = np.ones_like(vector)
        if not self.pressure.is_feasible(widest, slack=1e-9):
            # Even the widest channels violate the limit; nothing to repair.
            return vector
        low, high = 0.0, 1.0
        for _ in range(30):
            mid = 0.5 * (low + high)
            blended = (1.0 - mid) * vector + mid * widest
            if self.pressure.is_feasible(blended, slack=1e-9):
                high = mid
            else:
                low = mid
        return (1.0 - high) * vector + high * widest

    # -- single SLSQP run --------------------------------------------------------------

    def _minimize_from_start(
        self,
        start: np.ndarray,
        constraints: List[dict],
        bounds: List[Tuple[float, float]],
        callback: Optional[Callable[[np.ndarray], None]],
    ) -> Tuple[OptimizationTrace, np.ndarray, float, bool]:
        """One SLSQP run from one starting point.

        Returns ``(trace, repaired vector, cost, feasible)``.  Thread-safe
        against concurrent runs sharing the evaluation engine, so the
        multistart schedule can fan restarts out over a thread pool.
        """
        trace = OptimizationTrace()

        def record(vector: np.ndarray) -> None:
            solution = self.solve_candidate(vector)
            trace.record(self._objective(solution), solution.thermal_gradient)
            if callback is not None:
                callback(vector)

        jacobian = (
            self._scaled_cost_gradient
            if self.settings.use_batched_gradients
            else None
        )
        result = optimize.minimize(
            self._scaled_cost,
            start,
            method="SLSQP",
            jac=jacobian,
            bounds=bounds,
            constraints=constraints,
            callback=record,
            options={
                "maxiter": self.settings.max_iterations,
                "ftol": self.settings.tolerance,
                "eps": self.settings.finite_difference_step,
            },
        )
        trace.converged = bool(result.success)
        trace.message = str(result.message)
        trace.n_evaluations = int(result.get("nfev", 0))
        candidate_vector = np.clip(np.asarray(result.x, dtype=float), 0.0, 1.0)
        candidate_vector = self._repair_feasibility(candidate_vector)
        candidate_cost = self.cost(candidate_vector)
        feasible = self.pressure.is_feasible(candidate_vector, slack=1e-2)
        return trace, candidate_vector, candidate_cost, feasible

    # -- main entry point ----------------------------------------------------------------

    def optimize(
        self,
        initial_vector: Optional[np.ndarray] = None,
        callback: Optional[Callable[[np.ndarray], None]] = None,
    ) -> ModulationResult:
        """Run the direct sequential optimization and return the full result.

        With ``settings.multistart > 1`` and ``settings.n_workers > 1`` the
        SLSQP restarts run concurrently off the shared evaluation engine
        (one thread per start, solutions deduplicated through the engine's
        LRU cache); the best feasible optimum is selected deterministically
        in start order, so concurrent and sequential schedules return the
        same design.

        Parameters
        ----------
        initial_vector:
            Optional explicit starting point (normalized decision vector);
            when omitted the multistart schedule of the settings is used.
        callback:
            Optional callable invoked with the decision vector at every
            accepted SLSQP iterate (after the built-in trace recording).
            With concurrent restarts the callback may be invoked from
            several worker threads.
        """
        geometry = self.structure.geometry
        minimum = self.evaluate_uniform(geometry.min_width, "uniform minimum")
        maximum = self.evaluate_uniform(geometry.max_width, "uniform maximum")
        baselines = [minimum, maximum]

        # Scale the objective by the best uniform design so SLSQP sees O(1)
        # values regardless of which objective form is selected.
        uniform_costs = [
            self.cost(self.parameterization.uniform_vector(geometry.min_width)),
            self.cost(self.parameterization.uniform_vector(geometry.max_width)),
        ]
        self._cost_scale = max(min(uniform_costs), np.finfo(float).tiny)

        starts = (
            [np.asarray(initial_vector, dtype=float)]
            if initial_vector is not None
            else self._starting_points()
        )

        constraints = self.pressure.as_scipy_constraints(
            with_jacobians=self.settings.use_batched_gradients
        )
        bounds = [(0.0, 1.0)] * self.parameterization.n_variables
        if len(starts) > 1 and self.settings.n_workers > 1:
            # Warm the solution cache for every starting point in one batch,
            # then run the SLSQP restarts concurrently off the shared engine.
            self.evaluate_candidates(starts)
            with ThreadPoolExecutor(
                max_workers=min(self.settings.n_workers, len(starts))
            ) as pool:
                runs = list(
                    pool.map(
                        lambda start: self._minimize_from_start(
                            start, constraints, bounds, callback
                        ),
                        starts,
                    )
                )
        else:
            runs = [
                self._minimize_from_start(start, constraints, bounds, callback)
                for start in starts
            ]

        best_vector: Optional[np.ndarray] = None
        best_cost = np.inf
        best_trace = OptimizationTrace()
        for trace, candidate_vector, candidate_cost, feasible in runs:
            if feasible and candidate_cost < best_cost:
                best_cost = candidate_cost
                best_vector = candidate_vector
                best_trace = trace

        if best_vector is None:
            # No start produced a feasible optimum; fall back to the best
            # feasible uniform design (the widest channel is always feasible
            # whenever the problem admits any feasible design at all).
            fallback = self.parameterization.uniform_vector(geometry.max_width)
            best_vector = fallback
            best_trace.message = (
                best_trace.message + " | no feasible optimum; fell back to the "
                "uniform maximum-width design"
            )
            best_trace.converged = False

        optimal_profiles = self.parameterization.profiles_from_vector(best_vector)
        optimal = self.evaluate_design(optimal_profiles, "optimal modulation")
        return ModulationResult(
            optimal=optimal,
            baselines=baselines,
            decision_vector=best_vector,
            trace=best_trace,
        )
