"""Batched, cached steady-state evaluation engine.

Every experiment in the paper funnels through the finite-difference solver,
and the direct-sequential optimizer calls it hundreds of times per SLSQP
run through finite-difference gradients.  The :class:`EvaluationEngine`
gives all of those callers one code path with three properties:

* **bounded LRU solution cache** -- solutions are keyed on a structural
  fingerprint of the cavity (per-lane width/heat profiles, flow, grid
  size), so the optimizer's cost and constraint evaluations at the same
  iterate, repeated baseline evaluations, and `evaluate_design` calls on
  designs the optimizer already visited all reuse one solve.  Eviction is
  one least-recently-used entry at a time (the previous per-optimizer dict
  dropped all 4096 entries at once when it overflowed).
* **batched evaluation** -- :meth:`solve_many` deduplicates a batch of
  candidate structures and optionally fans the unique solves out over a
  ``concurrent.futures`` thread pool (``n_workers > 1``); used by the
  multistart schedule and the design-space-exploration sweeps.
* **observability** -- solve and cache-hit counters (:meth:`stats`) feed
  the scaling benchmarks and regression tests.

The engine is thread-safe; the solver backend is selected by name from
:mod:`repro.thermal.backends`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Hashable, List, Optional, Sequence

from ..thermal.fdm import solve_structure
from ..thermal.geometry import MultiChannelStructure, TestStructure
from ..thermal.solution import ThermalSolution

__all__ = ["EvaluationEngine", "COUNTER_KEYS"]

#: Sentinel meaning "derive the cache key from the structure fingerprint".
_AUTO_KEY = object()

#: Sentinel distinguishing "absent from the cache" from a cached None
#: (memoized factories may legitimately return None).
_MISSING = object()

#: The engine's monotonically-increasing solve/cache counters -- the
#: fields campaign aggregation sums across engines, sessions and worker
#: processes (:func:`EvaluationEngine.merge_stats`).
COUNTER_KEYS = (
    "n_solves",
    "n_cache_hits",
    "n_cache_misses",
    "n_evictions",
    "n_uncacheable",
    "n_batches",
    "n_batch_items",
    "n_adjoint_solves",
    "n_transpose_solves",
    "n_rom_builds",
    "n_rom_steps",
    "n_picard_iterations",
    "n_picard_fallbacks",
)


class EvaluationEngine:
    """One solve path for optimizer candidates, baselines and sweeps.

    Parameters
    ----------
    solver_backend:
        Name of the linear-solver backend (see
        :func:`repro.thermal.backends.available_backends`) or a backend
        instance; ``"auto"`` picks dense/sparse by system size.
    cache_size:
        Maximum number of cached :class:`ThermalSolution` objects; the
        least recently used entry is evicted first.
    n_workers:
        Thread-pool width used by :meth:`solve_many`; 1 (default) solves
        sequentially.
    """

    def __init__(
        self,
        solver_backend: str = "auto",
        cache_size: int = 4096,
        n_workers: int = 1,
    ) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be at least 1")
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        self.solver_backend = solver_backend
        self.cache_size = int(cache_size)
        self.n_workers = int(n_workers)
        self._cache: "OrderedDict[Hashable, ThermalSolution]" = OrderedDict()
        self._lock = threading.RLock()
        self.n_solves = 0
        self.n_cache_hits = 0
        self.n_cache_misses = 0
        self.n_evictions = 0
        self.n_uncacheable = 0
        self.n_batches = 0
        self.n_batch_items = 0
        self.n_adjoint_solves = 0
        self.n_transpose_solves = 0
        self.n_rom_builds = 0
        self.n_rom_steps = 0
        self.n_picard_iterations = 0
        self.n_picard_fallbacks = 0

    # -- cache keys ---------------------------------------------------------

    @staticmethod
    def structure_key(structure, n_points: int) -> Optional[tuple]:
        """Hashable fingerprint of a structure + grid, or None.

        The key covers everything the finite-difference solver reads:
        per-lane width/heat profiles, flow rates and directions, per-lane
        geometry and material records (the solver evaluates conductances
        per lane, and lanes are only validated to share length, coolant
        and inlet temperature), clustering, lateral coupling, the
        cavity-level geometry and the grid resolution.  Structures with
        callable (non-fingerprintable) profiles return None and are never
        cached.
        """
        if isinstance(structure, TestStructure):
            structure = MultiChannelStructure.single(structure)
        if not isinstance(structure, MultiChannelStructure):
            return None
        lanes = []
        for lane in structure.lanes:
            width = lane.width_profile.fingerprint()
            heat_top = lane.heat_top.fingerprint()
            heat_bottom = lane.heat_bottom.fingerprint()
            if width is None or heat_top is None or heat_bottom is None:
                return None
            lanes.append(
                (
                    width,
                    heat_top,
                    heat_bottom,
                    lane.flow_rate,
                    lane.flow_reversed,
                    lane.developing_flow,
                    lane.inlet_temperature,
                    lane.geometry,
                    lane.silicon,
                )
            )
        return (
            int(n_points),
            tuple(lanes),
            structure.cluster_size,
            structure.lane_cluster_sizes,
            structure.lateral_coupling,
            structure.geometry,
            structure.coolant,
        )

    def _derive_key(self, structure, n_points: int, solver_kwargs) -> Optional[tuple]:
        """Structure fingerprint extended with any extra solver options.

        Options forwarded to the solver (``lane_pitch``, ``assembly_mode``,
        ...) change the solution, so they must be part of the cache key;
        unhashable option values make the call uncacheable.
        """
        base = self.structure_key(structure, n_points)
        if base is None or not solver_kwargs:
            return base
        try:
            extra = tuple(sorted(solver_kwargs.items()))
            hash(extra)
        except TypeError:
            return None
        return base + (extra,)

    # -- solving ------------------------------------------------------------

    def solve(
        self,
        structure=None,
        *,
        n_points: int,
        key=_AUTO_KEY,
        structure_factory: Optional[Callable[[], object]] = None,
        **solver_kwargs,
    ) -> ThermalSolution:
        """Cached steady-state solve of one structure.

        Either ``structure`` or ``structure_factory`` must be given; the
        factory is only invoked on a cache miss (callers that would build a
        candidate structure from a decision vector can skip that work when
        the solution is already cached -- in that case pass an explicit
        ``key``).  ``key=None`` disables caching for this call.
        """
        if structure is None and structure_factory is None:
            raise ValueError("either structure or structure_factory is required")
        if key is _AUTO_KEY:
            if structure is None:
                raise ValueError(
                    "an explicit key is required when only a factory is given"
                )
            key = self._derive_key(structure, n_points, solver_kwargs)
        if key is not None:
            with self._lock:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self.n_cache_hits += 1
                    return cached
                self.n_cache_misses += 1
        else:
            with self._lock:
                self.n_uncacheable += 1
        if structure is None:
            structure = structure_factory()
        solution = solve_structure(
            structure,
            n_points=n_points,
            backend=self.solver_backend,
            **solver_kwargs,
        )
        picard_info = solution.metadata.get("picard")
        with self._lock:
            self.n_solves += 1
            if picard_info is not None:
                self.n_picard_iterations += int(picard_info["n_iterations"])
                self.n_picard_fallbacks += int(bool(picard_info["fell_back"]))
            if key is not None:
                self._cache[key] = solution
                self._cache.move_to_end(key)
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
                    self.n_evictions += 1
        return solution

    def solve_many(
        self,
        structures: Sequence[object],
        *,
        n_points: int,
        **solver_kwargs,
    ) -> List[ThermalSolution]:
        """Solve a batch of structures, deduplicated and optionally parallel.

        Already-cached candidates are gathered up front (one cache hit per
        item); duplicate cacheable candidates (same fingerprint) are solved
        once and shared across their batch positions without extra cache
        traffic; all outstanding solves -- cacheable misses and uncacheable
        (callable-profile) structures alike -- are fanned out over a thread
        pool when the engine was created with ``n_workers > 1``.  Each task
        returns its solution directly, so the gather phase never re-derives
        keys or re-enters :meth:`solve` (a solution evicted mid-batch is
        not silently solved twice).  Results come back in input order.
        """
        keys = [
            self._derive_key(structure, n_points, solver_kwargs)
            for structure in structures
        ]
        results: List[Optional[ThermalSolution]] = [None] * len(structures)
        pending: "Dict[Hashable, List[int]]" = {}
        uncacheable: List[int] = []
        with self._lock:
            self.n_batches += 1
            self.n_batch_items += len(structures)
        for index, key in enumerate(keys):
            if key is None:
                uncacheable.append(index)
                continue
            with self._lock:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self.n_cache_hits += 1
                    results[index] = cached
                    continue
            pending.setdefault(key, []).append(index)

        def solve_pending(item):
            key, indices = item
            solution = self.solve(
                structures[indices[0]], n_points=n_points, key=key, **solver_kwargs
            )
            return indices, solution

        def solve_uncacheable(index):
            solution = self.solve(
                structures[index], n_points=n_points, key=None, **solver_kwargs
            )
            return [index], solution

        tasks = [lambda item=item: solve_pending(item) for item in pending.items()]
        tasks += [lambda index=index: solve_uncacheable(index) for index in uncacheable]
        if self.n_workers > 1 and len(tasks) > 1:
            with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
                outcomes = list(pool.map(lambda task: task(), tasks))
        else:
            outcomes = [task() for task in tasks]
        for indices, solution in outcomes:
            for index in indices:
                results[index] = solution
        return results

    def solve_transpose(self, matrix, rhs, pattern_token=None):
        """Solve ``A^T x = rhs`` through the engine's solver backend.

        The adjoint gradient path calls this with the matrix of the most
        recent forward assembly; the direct backends then reuse the cached
        forward factorization (SuperLU solves the transposed system from
        the same decomposition), so the adjoint costs one triangular solve.
        """
        from ..thermal.backends import resolve_backend

        backend = resolve_backend(self.solver_backend)
        with self._lock:
            self.n_transpose_solves += 1
        return backend.solve_transpose(matrix, rhs, pattern_token)

    def count_adjoint_solve(self) -> None:
        """Record one completed adjoint gradient evaluation."""
        with self._lock:
            self.n_adjoint_solves += 1

    def memo(self, key: Hashable, factory: Callable[[], object]) -> object:
        """Explicitly-keyed memoization sharing the engine's LRU cache.

        Producers other than the steady finite-difference solve -- e.g.
        the finite-volume transient engine, which keys whole transient
        outcomes on scenario content hashes -- use this to get the same
        bounded cache, eviction policy and hit/miss accounting as
        :meth:`solve`.  ``factory`` is invoked only on a miss.  Callers
        own key hygiene: prefix keys with a producer tag so they can never
        collide with structure fingerprints.
        """
        with self._lock:
            cached = self._cache.get(key, _MISSING)
            if cached is not _MISSING:
                self._cache.move_to_end(key)
                self.n_cache_hits += 1
                return cached
            self.n_cache_misses += 1
        value = factory()
        with self._lock:
            self._cache[key] = value
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
                self.n_evictions += 1
        return value

    # -- management ---------------------------------------------------------

    def clear_cache(self) -> None:
        """Drop every cached solution (counters are kept)."""
        with self._lock:
            self._cache.clear()

    def reset_stats(self) -> None:
        """Zero the solve/cache counters (the cache itself is kept)."""
        with self._lock:
            self.n_solves = 0
            self.n_cache_hits = 0
            self.n_cache_misses = 0
            self.n_evictions = 0
            self.n_uncacheable = 0
            self.n_batches = 0
            self.n_batch_items = 0
            self.n_adjoint_solves = 0
            self.n_transpose_solves = 0
            self.n_rom_builds = 0
            self.n_rom_steps = 0
            self.n_picard_iterations = 0
            self.n_picard_fallbacks = 0

    @property
    def cache_len(self) -> int:
        """Number of solutions currently cached."""
        with self._lock:
            return len(self._cache)

    def stats(self) -> Dict[str, object]:
        """Solve and cache counters for benchmarks and reports."""
        with self._lock:
            lookups = self.n_cache_hits + self.n_cache_misses
            return {
                "backend": getattr(
                    self.solver_backend, "name", self.solver_backend
                ),
                "n_workers": self.n_workers,
                "cache_size": self.cache_size,
                "cache_len": len(self._cache),
                "n_solves": self.n_solves,
                "n_cache_hits": self.n_cache_hits,
                "n_cache_misses": self.n_cache_misses,
                "n_evictions": self.n_evictions,
                "n_uncacheable": self.n_uncacheable,
                "n_batches": self.n_batches,
                "n_batch_items": self.n_batch_items,
                "n_adjoint_solves": self.n_adjoint_solves,
                "n_transpose_solves": self.n_transpose_solves,
                "n_rom_builds": self.n_rom_builds,
                "n_rom_steps": self.n_rom_steps,
                "n_picard_iterations": self.n_picard_iterations,
                "n_picard_fallbacks": self.n_picard_fallbacks,
                "hit_rate": (self.n_cache_hits / lookups) if lookups else 0.0,
            }

    @staticmethod
    def merge_stats(stats_list: Sequence[Dict[str, object]]) -> Dict[str, object]:
        """Sum counter fields across several :meth:`stats` payloads.

        Used by campaigns to aggregate solve/cache activity across the
        engines of one session and across worker processes; the hit rate
        is recomputed from the merged totals.
        """
        merged: Dict[str, object] = dict.fromkeys(COUNTER_KEYS, 0)
        for stats in stats_list:
            for key in COUNTER_KEYS:
                merged[key] += int(stats.get(key, 0))
        lookups = merged["n_cache_hits"] + merged["n_cache_misses"]
        merged["hit_rate"] = (merged["n_cache_hits"] / lookups) if lookups else 0.0
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        stats = self.stats()
        return (
            f"<EvaluationEngine backend={stats['backend']!r} "
            f"cache={stats['cache_len']}/{stats['cache_size']} "
            f"hits={stats['n_cache_hits']} solves={stats['n_solves']}>"
        )
