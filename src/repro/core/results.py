"""Result records produced by the channel-modulation optimizer.

Two records are defined:

* :class:`DesignEvaluation` -- the full thermal and hydraulic evaluation of
  one candidate design (a set of width profiles): the steady-state solution,
  the scalar metrics the paper reports, and the pressure summary.
* :class:`ModulationResult` -- what the optimizer returns: the optimal
  design evaluation, the baselines it was compared against, the decision
  vector, the optimization trace, and the gradient-reduction figures of
  merit quoted throughout Sec. V of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..thermal.geometry import WidthProfile
from ..thermal.solution import ThermalSolution

__all__ = ["DesignEvaluation", "ModulationResult", "OptimizationTrace"]


@dataclass
class DesignEvaluation:
    """Thermal and hydraulic evaluation of one channel-width design.

    Attributes
    ----------
    label:
        Human readable design name (``"optimal"``, ``"uniform minimum"`` ...).
    width_profiles:
        One width profile per modeled lane.
    solution:
        Steady-state thermal solution of the design.
    pressure_drops:
        Per-lane pressure drops at the nominal per-channel flow rate (Pa).
    metadata:
        Free-form extra information (solver settings, cluster size, ...).
    """

    label: str
    width_profiles: List[WidthProfile]
    solution: ThermalSolution
    pressure_drops: np.ndarray
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def thermal_gradient(self) -> float:
        """Max - min silicon temperature (K), the paper's reported metric."""
        return self.solution.thermal_gradient

    @property
    def peak_temperature(self) -> float:
        """Maximum silicon temperature (K)."""
        return self.solution.peak_temperature

    @property
    def cost(self) -> float:
        """The Eq. (7) cost of the design."""
        return self.solution.cost

    @property
    def max_pressure_drop(self) -> float:
        """Largest per-lane pressure drop (Pa)."""
        return float(np.max(self.pressure_drops))

    @property
    def pressure_imbalance(self) -> float:
        """Relative spread of per-lane pressure drops."""
        top = float(np.max(self.pressure_drops))
        if top == 0.0:
            return 0.0
        return float((top - np.min(self.pressure_drops)) / top)

    def summary(self) -> Dict[str, float]:
        """Scalar metrics for experiment tables."""
        return {
            "label": self.label,
            "thermal_gradient_K": self.thermal_gradient,
            "peak_temperature_K": self.peak_temperature,
            "peak_temperature_C": self.peak_temperature - 273.15,
            "cost_J": self.cost,
            "max_pressure_drop_Pa": self.max_pressure_drop,
            "pressure_imbalance": self.pressure_imbalance,
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible record: metrics plus the serialized design.

        Callable width profiles cannot be serialized; piecewise and uniform
        profiles (everything the optimizer produces) round-trip through
        :meth:`~repro.thermal.geometry.WidthProfile.to_dict`.
        """
        return {
            **self.summary(),
            "width_profiles": [
                profile.to_dict() for profile in self.width_profiles
            ],
            "pressure_drops_Pa": [float(d) for d in self.pressure_drops],
            "metadata": dict(self.metadata),
        }


@dataclass
class OptimizationTrace:
    """Iteration history of the NLP solve (for diagnostics and benchmarks)."""

    cost_history: List[float] = field(default_factory=list)
    gradient_history: List[float] = field(default_factory=list)
    n_evaluations: int = 0
    n_iterations: int = 0
    converged: bool = False
    message: str = ""

    def record(self, cost: float, thermal_gradient: float) -> None:
        """Append one accepted iterate to the history."""
        self.cost_history.append(float(cost))
        self.gradient_history.append(float(thermal_gradient))
        self.n_iterations = len(self.cost_history)


@dataclass
class ModulationResult:
    """Outcome of one optimal channel-modulation design run.

    Attributes
    ----------
    optimal:
        Evaluation of the optimized design.
    baselines:
        Evaluations of the comparison designs (uniform minimum and maximum
        widths by default, as in Sec. V of the paper).
    decision_vector:
        The optimizer's final (normalized) decision vector.
    trace:
        Iteration history of the NLP solve.
    """

    optimal: DesignEvaluation
    baselines: List[DesignEvaluation]
    decision_vector: np.ndarray
    trace: OptimizationTrace

    def baseline(self, label: str) -> DesignEvaluation:
        """Look up a baseline evaluation by its label."""
        for evaluation in self.baselines:
            if evaluation.label == label:
                return evaluation
        raise KeyError(
            f"no baseline labelled {label!r}; available: "
            f"{[b.label for b in self.baselines]}"
        )

    @property
    def reference_gradient(self) -> float:
        """Thermal gradient of the worst uniform-width baseline (K).

        The paper reports reductions relative to the uniform channel width
        case; the minimum- and maximum-width baselines have nearly identical
        gradients (Sec. V-A), so the larger of the two is used as the
        reference.
        """
        return max(evaluation.thermal_gradient for evaluation in self.baselines)

    @property
    def gradient_reduction(self) -> float:
        """Fractional thermal-gradient reduction versus the uniform baseline.

        This is the paper's headline metric (0.31 for the 3D-MPSoC at peak
        power, about 0.32 for the single-channel tests).
        """
        reference = self.reference_gradient
        if reference == 0.0:
            return 0.0
        return 1.0 - self.optimal.thermal_gradient / reference

    @property
    def peak_temperature_reduction(self) -> float:
        """Peak-temperature reduction versus the maximum-width baseline (K)."""
        try:
            reference = self.baseline("uniform maximum").peak_temperature
        except KeyError:
            reference = max(
                evaluation.peak_temperature for evaluation in self.baselines
            )
        return reference - self.optimal.peak_temperature

    def comparison_table(self) -> List[Dict[str, float]]:
        """Rows (one per design) with the metrics plotted in Figs. 5 and 8."""
        rows = [evaluation.summary() for evaluation in self.baselines]
        rows.append(self.optimal.summary())
        return rows

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible record of the whole run (for the ``repro`` CLI)."""
        return {
            "summary": self.summary(),
            "comparison": self.comparison_table(),
            "optimal": self.optimal.to_dict(),
            "baselines": [evaluation.summary() for evaluation in self.baselines],
            "decision_vector": [float(x) for x in self.decision_vector],
            "trace": {
                "n_iterations": self.trace.n_iterations,
                "n_evaluations": self.trace.n_evaluations,
                "converged": self.trace.converged,
                "message": self.trace.message,
                "cost_history": [float(c) for c in self.trace.cost_history],
                "gradient_history": [
                    float(g) for g in self.trace.gradient_history
                ],
            },
        }

    def summary(self) -> Dict[str, float]:
        """Headline scalars of the run."""
        return {
            "optimal_gradient_K": self.optimal.thermal_gradient,
            "reference_gradient_K": self.reference_gradient,
            "gradient_reduction": self.gradient_reduction,
            "optimal_peak_C": self.optimal.peak_temperature - 273.15,
            "peak_temperature_reduction_K": self.peak_temperature_reduction,
            "max_pressure_drop_Pa": self.optimal.max_pressure_drop,
            "n_iterations": self.trace.n_iterations,
            "converged": self.trace.converged,
        }
