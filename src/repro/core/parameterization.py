"""Control-vector parameterization of the channel-width trajectories.

The direct sequential method (Sec. IV-C of the paper) restricts the control
``w_C(z)`` to piecewise-constant functions on a fixed number of equal-length
segments, turning the infinite-dimensional optimal control problem into a
finite nonlinear program.  This module owns the mapping between

* the optimizer's decision vector ``x`` (normalized to [0, 1] per entry for
  well-conditioned finite differences and simple box bounds), and
* the per-lane :class:`~repro.thermal.geometry.WidthProfile` objects
  consumed by the thermal solvers and the pressure-drop model.

Two sharing modes are supported:

* ``per_lane`` -- every lane gets its own ``n_segments`` decision variables
  (the paper's general formulation, Eq. 6-10 with ``N`` channels);
* ``shared`` -- all lanes share a single width trajectory, which shrinks the
  problem to ``n_segments`` variables and is a useful cheap variant when the
  power map varies little across the die width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..thermal.geometry import ChannelGeometry, WidthProfile

__all__ = ["WidthParameterization"]


@dataclass(frozen=True)
class WidthParameterization:
    """Mapping between decision vectors and channel width profiles.

    Attributes
    ----------
    geometry:
        Channel geometry providing the width bounds and the channel length.
    n_segments:
        Number of piecewise-constant segments per lane trajectory.
    n_lanes:
        Number of modeled channel lanes.
    shared:
        If True all lanes share one trajectory (``n_segments`` variables);
        otherwise each lane has its own (``n_lanes * n_segments`` variables).
    """

    geometry: ChannelGeometry
    n_segments: int = 10
    n_lanes: int = 1
    shared: bool = False

    def __post_init__(self) -> None:
        if self.n_segments < 1:
            raise ValueError("n_segments must be at least 1")
        if self.n_lanes < 1:
            raise ValueError("n_lanes must be at least 1")

    # -- sizes -----------------------------------------------------------------

    @property
    def n_variables(self) -> int:
        """Length of the decision vector."""
        if self.shared:
            return self.n_segments
        return self.n_segments * self.n_lanes

    @property
    def width_bounds(self) -> tuple:
        """Physical width bounds ``(w_Cmin, w_Cmax)`` in meters."""
        return (self.geometry.min_width, self.geometry.max_width)

    # -- normalization -----------------------------------------------------------

    def widths_to_vector(self, widths: np.ndarray) -> np.ndarray:
        """Normalize physical widths (m) into [0, 1] decision variables."""
        low, high = self.width_bounds
        widths = np.asarray(widths, dtype=float)
        return (widths - low) / (high - low)

    def vector_to_widths(self, vector: np.ndarray) -> np.ndarray:
        """Map a decision vector back to physical widths in meters.

        Values are clipped to the physical bounds so that the thermal and
        hydraulic models never see an out-of-range width even if the NLP
        solver takes a small excursion outside the box.
        """
        low, high = self.width_bounds
        vector = np.clip(np.asarray(vector, dtype=float), 0.0, 1.0)
        return low + vector * (high - low)

    # -- profile construction ------------------------------------------------------

    def profiles_from_vector(self, vector: np.ndarray) -> List[WidthProfile]:
        """Build one :class:`WidthProfile` per lane from a decision vector."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.n_variables,):
            raise ValueError(
                f"decision vector must have shape ({self.n_variables},), "
                f"got {vector.shape}"
            )
        widths = self.vector_to_widths(vector)
        length = self.geometry.length
        if self.shared:
            profile = WidthProfile.piecewise_constant(widths, length)
            return [profile] * self.n_lanes
        profiles = []
        for lane in range(self.n_lanes):
            start = lane * self.n_segments
            stop = start + self.n_segments
            profiles.append(
                WidthProfile.piecewise_constant(widths[start:stop], length)
            )
        return profiles

    def vector_from_profiles(self, profiles: Sequence[WidthProfile]) -> np.ndarray:
        """Project existing width profiles onto the decision vector.

        Used to warm-start the optimizer from a previous design or from a
        uniform baseline.
        """
        if self.shared:
            resampled = profiles[0].resampled(self.n_segments)
            return self.widths_to_vector(resampled.segment_widths)
        if len(profiles) != self.n_lanes:
            raise ValueError(
                f"expected {self.n_lanes} profiles, got {len(profiles)}"
            )
        pieces = [
            self.widths_to_vector(
                profile.resampled(self.n_segments).segment_widths
            )
            for profile in profiles
        ]
        return np.concatenate(pieces)

    # -- common starting points ------------------------------------------------------

    def uniform_vector(self, width: float) -> np.ndarray:
        """Decision vector describing a uniform width in every lane/segment."""
        low, high = self.width_bounds
        if not (low <= width <= high):
            raise ValueError(
                f"uniform width {width} lies outside the bounds [{low}, {high}]"
            )
        value = (width - low) / (high - low)
        return np.full(self.n_variables, value)

    def midpoint_vector(self) -> np.ndarray:
        """Decision vector at the middle of the width range (default start)."""
        return np.full(self.n_variables, 0.5)

    def lane_slice(self, lane: int) -> slice:
        """Slice of the decision vector owned by ``lane`` (per-lane mode)."""
        if self.shared:
            return slice(0, self.n_segments)
        if not (0 <= lane < self.n_lanes):
            raise IndexError(f"lane index {lane} out of range")
        start = lane * self.n_segments
        return slice(start, start + self.n_segments)
