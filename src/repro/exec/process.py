"""Process-pool campaign execution -- parallelism past the GIL.

Thread fan-out of sparse-LU solves is GIL-bound (SuperLU holds the GIL
through factorization), so on a multicore host the thread executor cannot
scale the paper's run families.  ``ProcessExecutor`` ships each task's
pickled :class:`~repro.scenarios.ScenarioSpec` to a worker process; the
worker builds its *own* :class:`~repro.api.Session` (and hence its own
:class:`~repro.core.engine.EvaluationEngine`) lazily on first task, keeps
it alive for the life of the worker so later tasks in the same worker
reuse its solution cache, and returns the plain-data
:meth:`SimulationResult.to_dict` payload -- floats computed by exactly the
same code path as a serial ``Session.run``, so per-scenario results are
bit-identical to serial execution.

Records carry the worker's pid and per-task engine counter deltas, so the
campaign layer can aggregate solve/cache statistics across workers.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, Iterator, Optional, Sequence

from .base import CampaignTask, execute_task

__all__ = ["ProcessExecutor"]

#: Per-worker session, created lazily on the first task (fork- and
#: spawn-safe: nothing heavy happens at module import).
_WORKER_SESSION = None


def _worker_session():
    """The worker process's lazily-built, task-spanning session."""
    global _WORKER_SESSION
    if _WORKER_SESSION is None:
        from ..api import Session

        _WORKER_SESSION = Session()
    return _WORKER_SESSION


def run_task_in_worker(task: CampaignTask) -> Dict[str, object]:
    """Module-level task entry point (must be picklable by reference)."""
    return execute_task(task, _worker_session())


class ProcessExecutor:
    """Fan campaign tasks out over worker processes (GIL-free scaling)."""

    name = "process"
    #: Workers build their own sessions, so campaign statistics are the
    #: sum of the per-record counter deltas the workers report.
    shares_session = False

    def __init__(self, workers: Optional[int] = None) -> None:
        workers = workers or os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"process executor needs workers >= 1, got {workers}")
        self.workers = int(workers)

    def execute(
        self, tasks: Sequence[CampaignTask], session=None
    ) -> Iterator[Dict[str, object]]:
        """Run the tasks in worker processes, yielding records as they finish.

        The caller's session is unused (worker processes cannot share its
        caches); it is accepted so every executor has one signature.
        """
        if not tasks:
            return
        if self.workers == 1 or len(tasks) == 1:
            # One worker would serialize through the pool anyway; skip the
            # process round-trip and run in-process on a private session.
            from ..api import Session

            private = Session()
            for task in tasks:
                yield execute_task(task, private)
            return
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = [pool.submit(run_task_in_worker, task) for task in tasks]
            for future in as_completed(futures):
                yield future.result()
