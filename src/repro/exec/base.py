"""Campaign tasks, the executor protocol, and the shared task runner.

An executor turns an ordered list of :class:`CampaignTask` objects into a
stream of plain-data *campaign records* (one JSON-compatible dict per
completed scenario).  The three built-in implementations share exactly one
task runner (:func:`execute_task`), so a record looks the same whether it
was produced in-process, on a thread, or in a worker process -- which is
what makes campaign stores resumable across executors.

A record carries:

``index / scenario / spec_hash / action / solver``
    Which task produced it (``spec_hash`` is the resume key: a content
    hash over the spec *and* the effective action/simulator family).
``spec``
    The full :meth:`ScenarioSpec.to_dict` payload, so a store doubles as
    self-describing supervised data for :mod:`repro.ml` (records written
    before this field existed are handled by ``dataset.build_dataset``'s
    ``specs=`` fallback).
``status``
    ``"ok"`` or ``"error"``; failed scenarios do not abort the campaign.
``result``
    The :meth:`SimulationResult.to_dict` payload (``action="run"``) or
    the :meth:`OptimizationRunResult.to_dict` payload
    (``action="optimize"``).
``error``
    ``"ExceptionType: message"`` when ``status == "error"``.
``wall_time_s / counters / worker``
    Task wall time, the engine solve/cache counter *delta* attributable
    to this task (summed over the running session's engines, so campaign
    aggregation across workers is a plain sum; ``None`` for executors
    that interleave tasks on one shared session -- see
    :func:`execute_task`), and worker provenance (process id).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Protocol, Sequence, runtime_checkable

from ..core.engine import COUNTER_KEYS
from ..scenarios import ScenarioSpec

__all__ = [
    "ACTIONS",
    "COUNTER_KEYS",
    "CampaignTask",
    "Executor",
    "execute_task",
    "session_counters",
]

#: Campaign actions a task can request.
ACTIONS = ("run", "optimize")


@dataclass(frozen=True)
class CampaignTask:
    """One unit of campaign work: a spec plus what to do with it.

    Attributes
    ----------
    index:
        Position of the task in the expanded sweep (records are re-ordered
        by this index in the final :class:`~repro.campaign.CampaignResult`).
    spec:
        The scenario to run (picklable, so process executors can ship it).
    action:
        ``"run"`` (simulate) or ``"optimize"`` (Sec. IV design flow).
    solver:
        Optional simulator-family override (``"fdm"`` / ``"ice"``); None
        uses the spec's own ``solver.simulator``.
    """

    index: int
    spec: ScenarioSpec
    action: str = "run"
    solver: Optional[str] = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"task action must be one of {list(ACTIONS)}, got {self.action!r}"
            )
        if self.solver is not None and not isinstance(self.solver, str):
            raise ValueError(
                "task solver must be a simulator-family name (string) or "
                f"None, got {type(self.solver).__name__}; pass Simulator "
                "instances via Session(simulator=...), not into campaigns"
            )

    def effective_solver(self) -> Optional[str]:
        """The simulator family that will actually serve this task."""
        if self.action != "run":
            return None  # the optimize flow always uses the FDM engine
        return self.solver or self.spec.solver.simulator

    def key(self) -> str:
        """Content hash identifying this task's outcome (the resume key).

        Covers the full spec plus the action and the *effective* simulator
        family, so re-running the same campaign file skips stored work,
        while changing the workload, the solver family or the action
        recomputes.
        """
        payload = {
            "spec": self.spec.to_dict(),
            "action": self.action,
            "solver": self.effective_solver(),
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@runtime_checkable
class Executor(Protocol):
    """Anything that can stream campaign tasks into campaign records."""

    name: str

    def execute(
        self, tasks: Sequence[CampaignTask], session
    ) -> Iterator[Dict[str, object]]:  # pragma: no cover - protocol
        """Run the tasks, yielding one record per task as it completes."""
        ...


def session_counters(session) -> Dict[str, int]:
    """Solve/cache counters summed over a session's engines."""
    totals = dict.fromkeys(COUNTER_KEYS, 0)
    for stats in session.stats().values():
        for key in COUNTER_KEYS:
            totals[key] += int(stats.get(key, 0))
    return totals


def _counter_delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    return {key: after[key] - before[key] for key in COUNTER_KEYS}


def execute_task(
    task: CampaignTask, session, task_counters: bool = True
) -> Dict[str, object]:
    """Run one campaign task on a session and return its plain-data record.

    Exceptions become ``status="error"`` records instead of propagating,
    so one bad scenario never kills a long campaign.

    ``task_counters=False`` records ``counters: None`` instead of a
    before/after delta of the session's engine counters.  Executors that
    run tasks *concurrently on a shared session* (the thread executor)
    must pass False: overlapping tasks would attribute each other's
    engine activity, and summing such deltas double-counts.  Their
    campaign-level counters come from the session delta instead.
    """
    before = session_counters(session) if task_counters else None
    start = time.perf_counter()
    record: Dict[str, object] = {
        "index": task.index,
        "scenario": task.spec.name,
        "spec_hash": task.key(),
        "action": task.action,
        "solver": task.effective_solver(),
        # The full spec rides along so a store is self-describing
        # supervised data (spec -> metrics) for repro.ml, not just a
        # resume ledger of opaque hashes.
        "spec": task.spec.to_dict(),
        "status": "ok",
    }
    try:
        if task.action == "run":
            record["result"] = session.run(task.spec, solver=task.solver).to_dict()
        else:
            record["result"] = session.optimize(task.spec).to_dict()
    except Exception as error:  # noqa: BLE001 - campaign records carry failures
        record["status"] = "error"
        record["error"] = f"{type(error).__name__}: {error}"
    record["wall_time_s"] = time.perf_counter() - start
    record["counters"] = (
        _counter_delta(before, session_counters(session))
        if task_counters
        else None
    )
    record["worker"] = {"pid": os.getpid()}
    return record


def make_tasks(
    specs: Iterable[ScenarioSpec],
    action: str = "run",
    solver: Optional[str] = None,
) -> list:
    """Index an iterable of specs into an ordered campaign task list."""
    return [
        CampaignTask(index=index, spec=spec, action=action, solver=solver)
        for index, spec in enumerate(specs)
    ]
