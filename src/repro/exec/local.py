"""In-process executors: serial and thread-pool campaign execution.

Both run against the *caller's* :class:`~repro.api.Session`, so every task
shares the session's evaluation engines and their LRU solution caches --
a flux sweep that revisits a design the optimizer already solved is served
from cache, exactly like a hand-written ``Session.run`` loop.

``SerialExecutor`` is the reference implementation: records come back in
task order, and a campaign run through it is bit-identical to looping
``Session.run`` over the expanded scenarios yourself.

``ThreadExecutor`` fans tasks out over a ``concurrent.futures`` thread
pool.  The engines are thread-safe, but the sparse-LU workhorse holds the
GIL during factorization, so threads mainly help mixed campaigns (ICE +
FDM), GIL-releasing backends, and I/O-heavy custom simulators; the process
executor (:mod:`repro.exec.process`) is the one that breaks the GIL bound.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Dict, Iterator, Sequence

from .base import CampaignTask, execute_task

__all__ = ["SerialExecutor", "ThreadExecutor"]


class SerialExecutor:
    """Run campaign tasks one after another on the calling thread."""

    name = "serial"
    #: Tasks run on the caller's session, so campaign statistics come from
    #: the session's own counter delta (not from per-record counters).
    shares_session = True

    def __init__(self, workers: int = 1) -> None:
        # The parameter is accepted for registry uniformity; serial
        # execution always uses exactly one worker.
        self.workers = 1

    def execute(
        self, tasks: Sequence[CampaignTask], session
    ) -> Iterator[Dict[str, object]]:
        for task in tasks:
            yield execute_task(task, session)


class ThreadExecutor:
    """Fan campaign tasks out over a thread pool sharing one session."""

    name = "thread"
    #: See SerialExecutor: per-record counter deltas of overlapping thread
    #: tasks can attribute shared engine activity to either task, so the
    #: campaign layer aggregates from the session delta instead.
    shares_session = True

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"thread executor needs workers >= 1, got {workers}")
        self.workers = int(workers)

    def execute(
        self, tasks: Sequence[CampaignTask], session
    ) -> Iterator[Dict[str, object]]:
        if not tasks:
            return
        if self.workers == 1 or len(tasks) == 1:
            for task in tasks:
                yield execute_task(task, session)
            return
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            # task_counters=False: overlapping tasks on the shared session
            # cannot attribute engine activity to themselves truthfully.
            futures = [
                pool.submit(execute_task, task, session, False)
                for task in tasks
            ]
            for future in as_completed(futures):
                yield future.result()
