"""Pluggable campaign executors: serial, thread and process fan-out.

The executor layer turns an expanded sweep (an ordered list of
:class:`~repro.exec.base.CampaignTask`) into a stream of plain-data
campaign records.  Three implementations ship:

========== ===================================================== ==========
name       parallelism                                           caches
========== ===================================================== ==========
serial     none (the reference; record order == task order)      shared
thread     ``ThreadPoolExecutor`` over the caller's session      shared
process    ``ProcessPoolExecutor``; workers build own sessions   per worker
========== ===================================================== ==========

``serial`` and ``thread`` share the calling session's evaluation engines;
``process`` is the executor that breaks the GIL bound of sparse-LU solves
-- workers receive pickled specs and return ``SimulationResult.to_dict``
payloads, bit-identical to serial execution.

Custom executors implement the :class:`~repro.exec.base.Executor` protocol
(``name`` + ``execute(tasks, session)``) and register under a name::

    from repro.exec import register_executor

    register_executor("slurm", SlurmExecutor)         # a factory, or
    register_executor("slurm", "my_pkg.exec:Slurm")   # lazy module:attr

String factories are resolved on first use, so registration never forces
an import -- the same import-order-safe scheme the simulator registry
uses.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

from .base import ACTIONS, COUNTER_KEYS, CampaignTask, Executor, execute_task, make_tasks
from .local import SerialExecutor, ThreadExecutor
from .process import ProcessExecutor

__all__ = [
    "ACTIONS",
    "COUNTER_KEYS",
    "CampaignTask",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "available_executors",
    "get_executor",
    "register_executor",
    "unregister_executor",
    "execute_task",
    "make_tasks",
]

#: Registry of executor factories keyed by name.  Values are callables
#: (``factory(workers=...)``) or lazy ``"module:attr"`` references
#: resolved on first use.
_EXECUTORS: Dict[str, Union[str, Callable[..., Executor]]] = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def available_executors() -> List[str]:
    """Names of the registered executors, in registration order."""
    return list(_EXECUTORS)


def register_executor(
    name: str,
    factory: Union[str, Callable[..., Executor]],
    overwrite: bool = False,
) -> None:
    """Register an executor factory (or lazy ``"module:attr"`` path)."""
    if not isinstance(name, str) or not name:
        raise ValueError(f"executor name must be a non-empty string, got {name!r}")
    if name in _EXECUTORS and not overwrite:
        raise ValueError(
            f"executor {name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _EXECUTORS[name] = factory


def unregister_executor(name: str) -> None:
    """Remove a registered executor (ValueError when unknown).

    The built-in executors cannot be removed -- campaigns and the serve
    layer assume ``serial``/``thread``/``process`` always resolve.
    """
    if name in ("serial", "thread", "process"):
        raise ValueError(f"the built-in executor {name!r} cannot be unregistered")
    if name not in _EXECUTORS:
        raise ValueError(
            f"unknown executor {name!r}; available: {available_executors()}"
        )
    del _EXECUTORS[name]


def _resolve_factory(name: str) -> Callable[..., Executor]:
    try:
        factory = _EXECUTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; available: {available_executors()}"
        ) from None
    if isinstance(factory, str):
        from .._compat import import_attribute

        factory = import_attribute(factory, context=f"executor {name!r}")
        _EXECUTORS[name] = factory  # cache the resolved factory
    return factory


def get_executor(name: str, workers: int = 1) -> Executor:
    """Build a registered executor by name with the given worker count."""
    return _resolve_factory(name)(workers=workers)
