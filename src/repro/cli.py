"""The ``repro`` command line: reproduce any scenario from the shell.

Every subcommand resolves its scenario argument the same way (a registered
name such as ``test-a``, or a path to a scenario JSON file) and emits JSON
with ``--json`` / ``--output``, so runs can be scripted and diffed:

.. code-block:: console

    repro list                               # registered scenarios
    repro show test-a > my-scenario.json     # bootstrap a scenario file
    repro run test-a --json                  # analytical FDM simulation
    repro run my-scenario.json --solver ice  # same scenario, finite volume
    repro validate test-a                    # FDM vs ICE cross-check
    repro optimize test-a --save-design opt.json
    repro run opt.json --solver ice          # render the optimized design
    repro bench test-a --repeat 3            # wall times + cache stats
    repro sweep sweep.json --executor process --workers 4 \
        --out campaign.jsonl                 # run a whole scenario family
    repro campaign summarize campaign.jsonl  # roll up a stored campaign
    repro campaign export campaign.jsonl --out data.csv  # features + metrics
    repro serve --data-dir ./serve-data --port 8080   # campaign service
    repro submit sweep.json --url http://127.0.0.1:8080 --wait
    repro jobs --url http://127.0.0.1:8080   # list service jobs
    repro ml fit campaign.jsonl --model-dir models    # train a surrogate
    repro ml predict test-a --model-dir models        # mean + std, no solve
    repro ml active campaign.jsonl candidates.json --model-dir models

Campaigns stream one JSONL record per completed scenario into ``--out``;
re-running the same sweep with the same ``--out`` file *resumes* -- stored
scenarios are skipped by spec hash instead of recomputed.  ``repro serve``
puts the same campaigns behind a durable HTTP service (see
:mod:`repro.serve`); ``submit``/``jobs`` are its thin clients.

The console script is installed by the package (``pyproject.toml``); the
module also runs as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from .api import Session
from .campaign import CampaignStore, summarize_records
from .exec import available_executors, make_tasks
from .scenarios import SCENARIOS, ScenarioSpec, resolve_scenario
from .sweeps import SweepSpec, expand_scenarios, is_sweep_mapping

__all__ = ["main", "build_parser"]


def _time_once(function) -> float:
    """Wall time of one call (seconds)."""
    start = time.perf_counter()
    function()
    return time.perf_counter() - start


def _emit(payload: Dict[str, object], args: argparse.Namespace) -> None:
    """Write a JSON payload to stdout and/or the requested output file."""
    text = json.dumps(payload, indent=2, sort_keys=True)
    output = getattr(args, "output", None)
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    if not output or getattr(args, "json", False):
        print(text)


def _resolve(argument: str, backend: Optional[str] = None) -> ScenarioSpec:
    """Resolve a CLI scenario argument (registered name or JSON file).

    ``backend`` (from ``--backend``) selects the linear-solver backend for
    both the FDM and the finite-volume solve paths.  It fills in for the
    spec's default (``"auto"``), but *conflicting* with a backend the
    scenario pins explicitly is an error -- silently overriding a pinned
    backend would make the flag and the file disagree about what ran.
    """
    spec = resolve_scenario(argument)
    if backend:
        pinned = spec.solver.backend
        if pinned != "auto" and pinned != backend:
            raise ValueError(
                f"--backend {backend} conflicts with the scenario's pinned "
                f"solver.backend {pinned!r}; edit the spec or drop --backend"
            )
        spec = spec.with_solver(backend=backend)
    return spec


def _print_metrics(prefix: str, payload: Dict[str, object]) -> None:
    """Human-readable one-metric-per-line rendering of a result dict."""
    print(prefix)
    for key in (
        "peak_temperature_K",
        "thermal_gradient_K",
        "coolant_rise_K",
        "max_pressure_drop_Pa",
        "wall_time_s",
    ):
        if key in payload:
            print(f"  {key:24s} {payload[key]:.6g}")
    picard = (payload.get("provenance") or {}).get("picard")
    if picard:
        state = (
            "converged"
            if picard.get("converged")
            else "fell back to constant properties"
        )
        print(
            f"  picard: {picard.get('coolant_model', '?')} model, "
            f"{picard.get('n_iterations', 0)} iteration(s), {state}"
        )
    transient = payload.get("transient")
    if transient:
        print(f"  transient ({transient.get('policy', '?')} policy)")
        for key in (
            "peak_transient_temperature_K",
            "final_peak_temperature_K",
            "time_above_threshold_s",
            "thermal_cycling_amplitude_K",
            "pumping_energy_J",
            "mean_flow_scale",
            "max_pressure_drop_at_peak_flow_Pa",
            "n_flow_changes",
            "max_reynolds",
            "rom_order",
            "rom_peak_abs_err_K",
        ):
            if key in transient:
                print(f"    {key:28s} {transient[key]:.6g}")
        if transient.get("laminar_violated"):
            print(
                "    laminar_violated: Re exceeds the laminar limit; the "
                "Shah & London correlations are extrapolating"
            )


# -- subcommands ------------------------------------------------------------


def cmd_list(args: argparse.Namespace) -> int:
    """``repro list`` -- the registered scenarios."""
    rows = [
        {
            "name": spec.name,
            "workload": spec.workload.kind,
            "simulator": spec.solver.simulator,
            "transient": spec.transient is not None,
            "description": spec.description,
        }
        for spec in SCENARIOS.values()
    ]
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    width = max(len(row["name"]) for row in rows) if rows else 0
    for row in rows:
        kind = row["workload"] + (", transient" if row["transient"] else "")
        print(f"{row['name']:{width}s}  [{kind}]  {row['description']}")
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    """``repro show`` -- emit a scenario spec as JSON."""
    spec = _resolve(args.scenario)
    _emit(spec.to_dict(), args)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """``repro run`` -- simulate a scenario through one simulator family."""
    spec = _resolve(args.scenario, getattr(args, "backend", None))
    coolant_model = getattr(args, "coolant_model", None)
    if coolant_model is not None:
        spec = spec.with_overrides(coolant_model=coolant_model)
    result = Session().run(spec, solver=args.solver)
    payload = result.to_dict()
    if args.json or args.output:
        _emit(payload, args)
    else:
        _print_metrics(
            f"{payload['scenario']} via {payload['simulator']}", payload
        )
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """``repro validate`` -- cross-validate FDM against the ICE solver."""
    spec = _resolve(args.scenario, getattr(args, "backend", None))
    report = Session().cross_validate(spec)
    payload = report.to_dict()
    if args.json or args.output:
        _emit(payload, args)
    else:
        _print_metrics(f"{spec.name} via fdm", payload["fdm"])
        _print_metrics(f"{spec.name} via ice", payload["ice"])
        print("deltas (ice - fdm)")
        for key in ("peak_delta_K", "gradient_delta_K", "coolant_rise_delta_K"):
            print(f"  {key:24s} {payload[key]:+.6g}")
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    """``repro optimize`` -- run the Sec. IV channel-modulation flow."""
    from dataclasses import replace

    spec = _resolve(args.scenario)
    if args.gradient_mode:
        # Validation lives in OptimizerSpec, so an unknown mode surfaces
        # as the standard one-line `error: ...` with exit code 2.
        spec = spec.with_overrides(
            optimizer=replace(spec.optimizer, gradient_mode=args.gradient_mode)
        )
    outcome = Session().optimize(spec)
    if args.save_design:
        outcome.optimized_spec().save(args.save_design)
    payload = outcome.to_dict()
    if args.json or args.output:
        _emit(payload, args)
    else:
        summary = payload["summary"]
        print(f"{spec.name}: optimal channel modulation")
        for key, value in summary.items():
            formatted = f"{value:.6g}" if isinstance(value, float) else value
            print(f"  {key:28s} {formatted}")
        provenance = payload.get("provenance", {})
        cache = provenance.get("cache", {})
        print(
            f"  gradient mode {provenance.get('gradient_mode', '?')}: "
            f"{cache.get('n_adjoint_solves', 0)} adjoint gradients, "
            f"{cache.get('n_transpose_solves', 0)} transpose solves, "
            f"{cache.get('n_solves', 0)} forward solves"
        )
        if args.save_design:
            print(f"  optimized scenario saved to {args.save_design}")
    return 0


def _ice_bench_record(spec: ScenarioSpec) -> Dict[str, object]:
    """Finite-volume benchmark record: vectorized vs loop assembly + solve."""
    from .ice import SteadyStateSolver, assemble_system, assemble_system_loop

    stack = spec.build_stack()
    assemble_system(stack)  # warm the stack-pattern cache
    vectorized_s = _time_once(lambda: assemble_system(stack))
    loop_s = _time_once(lambda: assemble_system_loop(stack))
    solver = SteadyStateSolver(stack, backend=spec.solver.backend)
    cold_solve_s = _time_once(lambda: solver.solve(compute_residual=False))
    warm_solve_s = _time_once(lambda: solver.solve(compute_residual=False))
    return {
        "simulator": "ice",
        "backend": solver.backend.name,
        "grid": [stack.n_rows, stack.n_cols],
        "n_unknowns": solver.system.n_unknowns,
        "assembly_vectorized_s": vectorized_s,
        "assembly_loop_s": loop_s,
        "assembly_speedup": loop_s / vectorized_s,
        "solve_cold_s": cold_solve_s,
        "solve_warm_s": warm_solve_s,
    }


def _gradient_bench_record(spec: ScenarioSpec) -> Dict[str, object]:
    """Optimizer-gradient record: one batched SLSQP gradient evaluation.

    Uses a private designer (and hence a private engine) so the session
    statistics of the repeated runs stay untouched.
    """
    from .core.designer import ChannelModulationDesigner

    designer = ChannelModulationDesigner.from_spec(spec)
    optimizer = designer.optimizer
    midpoint = optimizer.parameterization.midpoint_vector()
    optimizer.engine.reset_stats()
    batched_s = _time_once(lambda: optimizer.cost_gradient(midpoint))
    stats = optimizer.engine.stats()
    return {
        "n_variables": int(optimizer.parameterization.n_variables),
        "n_workers": int(optimizer.settings.n_workers),
        "batched_gradient_s": batched_s,
        "solves_per_iterate": stats["n_solves"],
        "solve_many_calls": stats["n_batches"],
        "batch_items": stats["n_batch_items"],
    }


def _adjoint_bench_record(spec: ScenarioSpec) -> Dict[str, object]:
    """Adjoint-gradient record: one adjoint vs one fd-batched evaluation.

    Falls back to an fd-only record (``adjoint_supported: False``) when
    the scenario's objective has no adjoint.
    """
    from .core.adjoint import supports_adjoint
    from .core.designer import ChannelModulationDesigner

    designer = ChannelModulationDesigner.from_spec(spec)
    optimizer = designer.optimizer
    midpoint = optimizer.parameterization.midpoint_vector()
    record: Dict[str, object] = {
        "n_variables": int(optimizer.parameterization.n_variables),
        "objective": optimizer.settings.objective,
        "adjoint_supported": supports_adjoint(optimizer.settings.objective),
        "fd_batched_gradient_s": _time_once(
            lambda: optimizer.cost_gradient(midpoint)
        ),
    }
    if record["adjoint_supported"]:
        optimizer.adjoint_cost_gradient(midpoint)  # warm the factorization
        record["adjoint_gradient_s"] = _time_once(
            lambda: optimizer.adjoint_cost_gradient(midpoint)
        )
        record["adjoint_speedup"] = (
            record["fd_batched_gradient_s"] / record["adjoint_gradient_s"]
        )
    return record


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench`` -- repeated runs, finite-volume and gradient records."""
    if args.repeat < 1:
        raise ValueError("--repeat must be at least 1")
    spec = _resolve(args.scenario, getattr(args, "backend", None))
    session = Session()
    wall_times: List[float] = []
    last = None
    for _ in range(args.repeat):
        last = session.run(spec, solver=args.solver)
        wall_times.append(last.wall_time_s)
    payload = {
        "scenario": spec.name,
        "simulator": last.simulator,
        "repeat": args.repeat,
        "wall_times_s": wall_times,
        "cold_s": wall_times[0],
        "best_s": min(wall_times),
        "mean_s": sum(wall_times) / len(wall_times),
        "metrics": last.summary(),
        "provenance": last.provenance,
        "session": session.stats(),
        "ice": _ice_bench_record(spec),
        "optimizer_gradient": _gradient_bench_record(spec),
        "optimizer_adjoint": _adjoint_bench_record(spec),
    }
    if args.json or args.output:
        _emit(payload, args)
    else:
        print(
            f"{spec.name} via {payload['simulator']}: "
            f"cold {payload['cold_s'] * 1e3:.2f} ms, "
            f"best of {args.repeat}: {payload['best_s'] * 1e3:.2f} ms"
        )
        for backend, stats in payload["session"].items():
            print(
                f"  engine {backend}: {stats['n_solves']} solves, "
                f"{stats['n_cache_hits']} cache hits "
                f"(hit rate {stats['hit_rate']:.0%})"
            )
        ice = payload["ice"]
        print(
            f"  ice assembly {ice['grid'][0]}x{ice['grid'][1]}: "
            f"loop {ice['assembly_loop_s'] * 1e3:.2f} ms, vectorized "
            f"{ice['assembly_vectorized_s'] * 1e3:.2f} ms "
            f"({ice['assembly_speedup']:.0f}x), solve cold "
            f"{ice['solve_cold_s'] * 1e3:.2f} ms / warm "
            f"{ice['solve_warm_s'] * 1e3:.2f} ms [{ice['backend']}]"
        )
        gradient = payload["optimizer_gradient"]
        print(
            f"  gradient: {gradient['n_variables']} variables, "
            f"{gradient['solves_per_iterate']} solves in "
            f"{gradient['solve_many_calls']} solve_many call(s), "
            f"{gradient['batched_gradient_s'] * 1e3:.2f} ms"
        )
        adjoint = payload["optimizer_adjoint"]
        if adjoint["adjoint_supported"]:
            print(
                f"  adjoint: {adjoint['adjoint_gradient_s'] * 1e3:.2f} ms "
                f"vs fd-batched {adjoint['fd_batched_gradient_s'] * 1e3:.2f}"
                f" ms ({adjoint['adjoint_speedup']:.1f}x)"
            )
        else:
            print(
                f"  adjoint: unsupported for objective "
                f"{adjoint['objective']!r} (fd-batched "
                f"{adjoint['fd_batched_gradient_s'] * 1e3:.2f} ms)"
            )
    return 0


def _load_sweep(argument: str) -> object:
    """Resolve a CLI sweep argument into something ``run_many`` accepts.

    A path to a JSON file holding a sweep (has a ``base`` key) or a single
    scenario, or a registered scenario name (a one-scenario campaign).
    """
    import os

    if os.path.exists(argument):
        with open(argument, "r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as error:
                raise ValueError(f"{argument}: not valid JSON ({error})") from None
        if is_sweep_mapping(data):
            return SweepSpec.from_dict(data)
        return ScenarioSpec.from_dict(data)
    return resolve_scenario(argument)


def cmd_sweep(args: argparse.Namespace) -> int:
    """``repro sweep`` -- run a scenario family through an executor."""
    if args.optimize and args.solver:
        raise ValueError(
            "--solver does not apply to --optimize campaigns (the design "
            "flow always runs on the FDM engine); drop --solver"
        )
    sweep = _load_sweep(args.sweep)
    specs = expand_scenarios(sweep)
    action = "optimize" if args.optimize else "run"
    if args.dry_run:
        # Emit the exact resume keys campaign records will carry, so the
        # dry-run output can be matched against a store's spec_hash field.
        rows = [
            {"index": task.index, "scenario": task.spec.name, "spec_hash": task.key()}
            for task in make_tasks(specs, action=action, solver=args.solver)
        ]
        if args.json:
            print(json.dumps(rows, indent=2, sort_keys=True))
        else:
            for row in rows:
                print(f"{row['index']:4d}  {row['scenario']}")
            print(f"{len(rows)} scenario(s); nothing run (--dry-run)")
        return 0

    def report(record: Dict[str, object]) -> None:
        status = record["status"]
        tail = (
            f"peak {record['result']['peak_temperature_K']:.3f} K"
            if status == "ok" and record.get("action") == "run"
            else (record.get("error") or "done")
        )
        print(
            f"[{record['index'] + 1}/{len(specs)}] {record['scenario']}: "
            f"{status} ({record['wall_time_s']:.3g} s) {tail}",
            file=sys.stderr,
        )

    campaign = Session().run_many(
        sweep,
        executor=args.executor,
        workers=args.workers,
        solver=args.solver,
        out=args.out,
        cache=args.cache,
        action=action,
        progress=report if not args.quiet else None,
    )
    payload = campaign.to_dict()
    if args.json or args.output:
        _emit(payload, args)
    else:
        summary = payload["summary"]
        print(
            f"{campaign.name}: {summary['n_ok']}/{summary['n_records']} ok "
            f"via {campaign.executor} ({campaign.workers} worker(s)), "
            f"{campaign.n_from_store} from store, "
            f"{campaign.n_from_cache} from cache, "
            f"wall {campaign.wall_time_s:.3g} s"
        )
        counters = summary["counters"]
        print(
            f"  engines: {counters['n_solves']} solves, "
            f"{counters['n_cache_hits']} cache hits across all workers"
        )
        if campaign.store_path:
            print(f"  campaign store: {campaign.store_path}")
        for failure in summary["failures"]:
            print(f"  FAILED {failure['scenario']}: {failure['error']}")
    return 0 if campaign.n_failed == 0 else 1


def cmd_campaign(args: argparse.Namespace) -> int:
    """``repro campaign summarize`` -- roll up a stored campaign JSONL."""
    store = CampaignStore(args.file)
    # iter_records streams shard by shard, so summarizing never loads the
    # whole store; the fold in summarize_records is single-pass too.
    summary = summarize_records(store.iter_records())
    summary["store_path"] = store.path
    summary["n_dropped_torn"] = store.n_dropped_torn
    summary["sharded"] = store.is_sharded
    summary["n_shards"] = len(store.shard_paths())
    if args.json or args.output:
        _emit(summary, args)
    else:
        layout = (
            f", {summary['n_shards']} shard(s)" if summary["sharded"] else ""
        )
        print(
            f"{store.path}: {summary['n_ok']}/{summary['n_records']} ok, "
            f"{summary['n_failed']} failed, task wall "
            f"{summary['task_wall_time_s']:.3g} s, "
            f"{len(summary['workers_seen'])} worker(s){layout}"
        )
        counters = summary["counters"]
        qualifier = (
            ""
            if summary["counters_complete"]
            else " (lower bound: some records carry no per-task counters)"
        )
        print(
            f"  engines: {counters['n_solves']} solves, "
            f"{counters['n_cache_hits']} cache hits{qualifier}"
        )
        if "peak_temperature_K_max" in summary:
            print(
                f"  peak temperature: "
                f"{summary['peak_temperature_K_min']:.3f} .. "
                f"{summary['peak_temperature_K_max']:.3f} K"
            )
        for failure in summary["failures"]:
            print(f"  FAILED {failure['scenario']}: {failure['error']}")
    return 0


def cmd_campaign_export(args: argparse.Namespace) -> int:
    """``repro campaign export`` -- dump features + metrics rows.

    One row per unique ok record: ``spec_hash``, ``scenario``, the
    numeric feature columns of :mod:`repro.ml.features` (constants kept
    -- an export is documentation) and the requested target metrics.
    CSV by default, a JSON array with ``--json``.
    """
    from .ml.dataset import DEFAULT_TARGETS, build_dataset

    targets = tuple(args.target) if args.target else DEFAULT_TARGETS
    dataset = build_dataset(
        CampaignStore(args.file), targets=targets, drop_constant=False
    )
    feature_names = dataset.schema.column_names()
    header = ["spec_hash", "scenario"] + feature_names + list(dataset.targets)
    rows = [
        [dataset.spec_hashes[i], dataset.scenarios[i]]
        + [float(v) for v in dataset.X[i]]
        + [float(v) for v in dataset.y[i]]
        for i in range(dataset.n_samples)
    ]
    if args.json:
        payload = [dict(zip(header, row)) for row in rows]
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        else:
            print(text)
    else:
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(header)
        writer.writerows(rows)
        if args.out:
            with open(args.out, "w", encoding="utf-8", newline="") as handle:
                handle.write(buffer.getvalue())
        else:
            sys.stdout.write(buffer.getvalue())
    skipped = sum(dataset.skipped.values())
    print(
        f"exported {dataset.n_samples} row(s) x {len(header)} column(s)"
        + (f" to {args.out}" if args.out else "")
        + (f"; skipped {skipped} record(s) {dataset.skipped}" if skipped else ""),
        file=sys.stderr,
    )
    return 0


def cmd_ml_fit(args: argparse.Namespace) -> int:
    """``repro ml fit`` -- train a surrogate on a campaign store."""
    from .ml import build_dataset, make_surrogate, save_model
    from .ml.dataset import DEFAULT_TARGETS

    targets = tuple(args.target) if args.target else DEFAULT_TARGETS
    dataset = build_dataset(CampaignStore(args.file), targets=targets)
    model = make_surrogate(args.model).fit(dataset)
    model_id = save_model(model, args.model_dir)
    payload = model.describe()
    payload["model_id"] = model_id
    payload["model_dir"] = args.model_dir
    payload["dataset"] = dataset.summary()
    if args.json or args.output:
        _emit(payload, args)
    else:
        print(
            f"fitted {args.model} surrogate on {dataset.n_samples} sample(s) "
            f"({', '.join(dataset.targets)})"
        )
        print(f"  features: {', '.join(dataset.schema.column_names())}")
        print(f"  saved as {model_id} in {args.model_dir}")
    return 0


def cmd_ml_predict(args: argparse.Namespace) -> int:
    """``repro ml predict`` -- surrogate mean + std for a scenario, no solve."""
    from .ml import load_model

    spec = _resolve(args.scenario)
    model = load_model(args.model_dir, args.model_id)
    mean, std = model.predict_specs([spec])
    payload: Dict[str, object] = {
        "scenario": spec.name,
        "model": model.name,
        "mean": {
            target: float(mean[0, i]) for i, target in enumerate(model.targets)
        },
        "std": {
            target: float(std[0, i]) for i, target in enumerate(model.targets)
        },
    }
    if args.json or args.output:
        _emit(payload, args)
    else:
        print(f"{spec.name} via {model.name} surrogate (no solve)")
        for target in model.targets:
            print(
                f"  {target:36s} {payload['mean'][target]:.6g} "
                f"+/- {payload['std'][target]:.3g}"
            )
    return 0


def cmd_ml_active(args: argparse.Namespace) -> int:
    """``repro ml active`` -- one active-learning round over a store.

    Fits a surrogate on the store, scores the candidate sweep with the
    chosen acquisition, runs the selected batch through the ordinary
    campaign machinery *into the same store* (so the round is resumable
    and interruptible like any sweep), refits, and reports how much the
    mean predictive std over the candidates shrank.
    """
    from .ml import build_dataset, make_surrogate, select_batch
    from .ml.dataset import DEFAULT_TARGETS

    targets = tuple(args.target) if args.target else DEFAULT_TARGETS
    candidates = _load_sweep(args.candidates)
    if not isinstance(candidates, SweepSpec):
        raise ValueError(
            f"{args.candidates}: candidates must be a sweep JSON file "
            "(a 'base' plus axes), not a single scenario"
        )
    store = CampaignStore(args.file)
    dataset = build_dataset(store, targets=targets)
    model = make_surrogate(args.model).fit(dataset)
    # Exclude by spec payload, not resume key: the training sweep and the
    # candidate pool are usually named differently, and physical identity
    # is what "already labelled" means (see repro.ml.active.physical_key).
    selection = select_batch(
        model,
        candidates,
        n_points=args.n_points,
        acquisition=args.acquisition,
        exclude=dataset.specs,
    )
    payload = selection.to_dict()
    payload["n_training_samples"] = dataset.n_samples
    if args.dry_run:
        payload["dry_run"] = True
        if args.json or args.output:
            _emit(payload, args)
        else:
            print(
                f"would run {len(selection.indices)} point(s) "
                f"[{args.acquisition} on {selection.target}]; "
                f"mean candidate std {selection.mean_std:.4g}"
            )
            for name in selection.sweep.scenario_names():
                print(f"  {name}")
        return 0
    campaign = Session().run_many(
        selection.sweep,
        executor=args.executor,
        workers=args.workers,
        out=store,
    )
    refit_dataset = build_dataset(
        store, targets=targets, schema=dataset.schema
    )
    refit = make_surrogate(args.model).fit(refit_dataset)
    _, std_after = refit.predict_specs(candidates.scenarios())
    target_index = list(refit.targets).index(selection.target)
    payload["campaign"] = campaign.summary()
    payload["mean_std_after"] = float(std_after[:, target_index].mean())
    payload["n_training_samples_after"] = refit_dataset.n_samples
    if args.json or args.output:
        _emit(payload, args)
    else:
        print(
            f"ran {len(selection.indices)} point(s) "
            f"[{args.acquisition} on {selection.target}]: "
            f"{campaign.n_ok} ok, {campaign.n_from_store} from store"
        )
        print(
            f"  mean candidate std: {selection.mean_std:.4g} -> "
            f"{payload['mean_std_after']:.4g} "
            f"({dataset.n_samples} -> {refit_dataset.n_samples} samples)"
        )
    return 0 if campaign.n_failed == 0 else 1


def cmd_cache_gc(args: argparse.Namespace) -> int:
    """``repro cache gc`` -- expire and cap the shared result cache."""
    import os

    from .serve import ResultCache

    if args.max_age is None and args.max_entries is None:
        print(
            "nothing to do: pass --max-age and/or --max-entries",
            file=sys.stderr,
        )
        return 2
    cache = ResultCache(os.path.join(args.data_dir, "cache"))
    report = cache.gc(max_age_s=args.max_age, max_entries=args.max_entries)
    report["cache_root"] = cache.root
    if args.json or args.output:
        _emit(report, args)
    else:
        print(
            f"{cache.root}: scanned {report['n_scanned']}, removed "
            f"{report['n_removed']}, kept {report['n_kept']}"
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve`` -- run the campaign service HTTP front door."""
    from .serve import CampaignServer, CampaignService

    service = CampaignService(
        args.data_dir,
        executor=args.executor,
        workers=args.workers,
        pool_size=args.pool_size,
        max_pending=args.max_pending,
    )
    server = CampaignServer(service, host=args.host, port=args.port)
    server.start_in_thread()
    print(
        f"repro serve listening on {server.url} "
        f"(data dir {service.data_dir}, executor {service.executor} "
        f"x{service.workers}, {args.pool_size} job worker(s))",
        file=sys.stderr,
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.stop()
    return 0


def _campaign_payload(argument: str) -> object:
    """A CLI campaign argument as the JSON value a submission carries.

    Files are sent as their parsed JSON (sweep or scenario mapping);
    anything else is sent verbatim as a registered scenario name -- the
    server validates eagerly, so typos come back as HTTP 400s.
    """
    import os

    if os.path.exists(argument):
        with open(argument, "r", encoding="utf-8") as handle:
            try:
                return json.load(handle)
            except json.JSONDecodeError as error:
                raise ValueError(f"{argument}: not valid JSON ({error})") from None
    return argument


def cmd_submit(args: argparse.Namespace) -> int:
    """``repro submit`` -- queue a campaign on a running service."""
    from .serve import ServiceClient

    client = ServiceClient(args.url)
    payload = _campaign_payload(args.campaign)
    if args.optimize:
        job = client.submit_optimize(payload, fresh=args.fresh)
    elif isinstance(payload, dict) and is_sweep_mapping(payload):
        job = client.submit_sweep(payload, fresh=args.fresh)
    else:
        job = client.submit_run(payload, solver=args.solver, fresh=args.fresh)
    if args.wait:
        job = client.wait(job["job_id"], timeout=args.timeout)
    if args.json or args.output:
        _emit(job, args)
    else:
        dedup = " (deduplicated: already queued)" if job.get("resubmitted") else ""
        print(
            f"job {job['job_id']}: {job['state']} "
            f"({job['kind']}, {job['n_total']} scenario(s)){dedup}"
        )
        if job.get("error"):
            print(f"  error: {job['error']}")
        summary = job.get("summary")
        if summary:
            print(
                f"  {summary['n_ok']}/{summary['n_records']} ok, "
                f"{summary['n_from_store']} from store, "
                f"{summary['n_from_cache']} from cache, "
                f"wall {summary['wall_time_s']:.3g} s"
            )
    return 0 if job["state"] in ("submitted", "running", "done") else 1


def cmd_jobs(args: argparse.Namespace) -> int:
    """``repro jobs`` -- inspect a running service's queue."""
    from .serve import ServiceClient

    client = ServiceClient(args.url)
    if args.job_id and args.records:
        records = client.records(args.job_id)
        for record in records:
            print(json.dumps(record, sort_keys=True))
        return 0
    if args.job_id:
        detail = client.job(args.job_id)
        if args.json or args.output:
            _emit(detail, args)
        else:
            print(
                f"job {detail['job_id']}: {detail['state']} "
                f"({detail['kind']}, {detail['n_ok']}/{detail['n_total']} ok)"
            )
            if detail.get("error"):
                print(f"  error: {detail['error']}")
        return 0
    jobs = client.jobs()
    if args.json or args.output:
        _emit({"jobs": jobs}, args)
        return 0
    if not jobs:
        print("no jobs")
        return 0
    for job in jobs:
        done = job.get("progress", {}).get("n_done", "?")
        print(
            f"{job['job_id']}  {job['state']:9s} {job['kind']:8s} "
            f"{done}/{job['n_total']}"
        )
    return 0


# -- parser -----------------------------------------------------------------


def _add_scenario_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "scenario",
        help="registered scenario name (see 'repro list') or scenario JSON file",
    )


def _add_output_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON on stdout"
    )
    parser.add_argument(
        "--output", metavar="FILE", help="also write the JSON payload to FILE"
    )


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        metavar="NAME",
        default=None,
        help=(
            "linear-solver backend for both solve paths (auto, sparse-lu, "
            "sparse-iterative, dense, or a custom registered name; default: "
            "the scenario's own)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the channel-modulation experiments: run, "
            "cross-validate, optimize and benchmark declarative scenarios."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list the registered scenarios"
    )
    list_parser.add_argument("--json", action="store_true")
    list_parser.set_defaults(func=cmd_list)

    show_parser = subparsers.add_parser(
        "show", help="print a scenario spec as JSON (bootstrap scenario files)"
    )
    _add_scenario_argument(show_parser)
    show_parser.add_argument("--output", metavar="FILE")
    show_parser.set_defaults(func=cmd_show, json=True)

    run_parser = subparsers.add_parser(
        "run", help="simulate a scenario (FDM or ICE)"
    )
    _add_scenario_argument(run_parser)
    run_parser.add_argument(
        "--solver",
        choices=("fdm", "ice"),
        default=None,
        help="simulator family (default: the scenario's own)",
    )
    run_parser.add_argument(
        "--coolant-model",
        metavar="NAME",
        default=None,
        help=(
            "coolant property model (e.g. 'water' for temperature-"
            "dependent properties via Picard iteration; default: the "
            "scenario's own, normally 'constant')"
        ),
    )
    _add_backend_argument(run_parser)
    _add_output_arguments(run_parser)
    run_parser.set_defaults(func=cmd_run)

    validate_parser = subparsers.add_parser(
        "validate", help="cross-validate the FDM and ICE simulators"
    )
    _add_scenario_argument(validate_parser)
    _add_backend_argument(validate_parser)
    _add_output_arguments(validate_parser)
    validate_parser.set_defaults(func=cmd_validate)

    optimize_parser = subparsers.add_parser(
        "optimize", help="run the optimal channel-modulation design flow"
    )
    _add_scenario_argument(optimize_parser)
    optimize_parser.add_argument(
        "--save-design",
        metavar="FILE",
        help="save the scenario with the optimized design pinned into it",
    )
    optimize_parser.add_argument(
        "--gradient-mode",
        metavar="MODE",
        default=None,
        help=(
            "cost-gradient strategy: adjoint (one forward + one transpose "
            "solve per iterate; falls back to fd-batched for nonsmooth "
            "objectives) or fd-batched (the finite-difference reference); "
            "default: the scenario's own"
        ),
    )
    _add_output_arguments(optimize_parser)
    optimize_parser.set_defaults(func=cmd_optimize)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run a scenario family (sweep JSON, scenario file or name)",
    )
    sweep_parser.add_argument(
        "sweep",
        help=(
            "sweep JSON file (base + axes), scenario JSON file, or "
            "registered scenario name"
        ),
    )
    sweep_parser.add_argument(
        "--executor",
        default="serial",
        help=(
            "campaign executor: one of "
            + "/".join(available_executors())
            + " or a custom registered name (default: serial)"
        ),
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=1, help="worker count for thread/process"
    )
    sweep_parser.add_argument(
        "--solver",
        choices=("fdm", "ice"),
        default=None,
        help="simulator family override for every scenario",
    )
    sweep_parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help=(
            "campaign store (JSONL, one record per scenario); re-running "
            "with the same file resumes instead of recomputing"
        ),
    )
    sweep_parser.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help=(
            "shared result-cache directory (content-addressed by spec "
            "hash); hits are replayed without solving, across campaigns "
            "and processes"
        ),
    )
    sweep_parser.add_argument(
        "--optimize",
        action="store_true",
        help="run the Sec. IV design flow on every scenario instead of simulating",
    )
    sweep_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="list the expanded scenarios without running anything",
    )
    sweep_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-scenario progress lines"
    )
    _add_output_arguments(sweep_parser)
    sweep_parser.set_defaults(func=cmd_sweep)

    campaign_parser = subparsers.add_parser(
        "campaign", help="inspect stored campaign JSONL files"
    )
    campaign_sub = campaign_parser.add_subparsers(
        dest="campaign_command", required=True
    )
    summarize_parser = campaign_sub.add_parser(
        "summarize", help="roll up a campaign store (counts, counters, extrema)"
    )
    summarize_parser.add_argument("file", help="campaign JSONL file")
    _add_output_arguments(summarize_parser)
    summarize_parser.set_defaults(func=cmd_campaign)

    export_parser = campaign_sub.add_parser(
        "export",
        help="dump the store as a feature/metric table (CSV or JSON)",
    )
    export_parser.add_argument("file", help="campaign JSONL file")
    export_parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the table here instead of stdout",
    )
    export_parser.add_argument(
        "--target",
        action="append",
        metavar="PATH",
        default=None,
        help=(
            "dotted result path to include as a metric column (repeatable; "
            "default: peak_temperature_K and max_pressure_drop_Pa)"
        ),
    )
    export_parser.add_argument(
        "--json",
        action="store_true",
        help="emit a JSON array of row objects instead of CSV",
    )
    export_parser.set_defaults(func=cmd_campaign_export)

    ml_parser = subparsers.add_parser(
        "ml",
        help="surrogate models: fit from campaigns, predict, active learning",
    )
    ml_sub = ml_parser.add_subparsers(dest="ml_command", required=True)

    ml_fit_parser = ml_sub.add_parser(
        "fit", help="train a surrogate on a campaign store's ok records"
    )
    ml_fit_parser.add_argument("file", help="campaign JSONL file to train on")
    ml_fit_parser.add_argument(
        "--model",
        choices=("gp", "rff"),
        default="gp",
        help="surrogate family: exact GP or random-feature ridge (default: gp)",
    )
    ml_fit_parser.add_argument(
        "--target",
        action="append",
        metavar="PATH",
        default=None,
        help=(
            "dotted result path to regress on (repeatable; default: "
            "peak_temperature_K and max_pressure_drop_Pa)"
        ),
    )
    ml_fit_parser.add_argument(
        "--model-dir",
        metavar="DIR",
        default="models",
        help="content-addressed model directory (default: ./models)",
    )
    _add_output_arguments(ml_fit_parser)
    ml_fit_parser.set_defaults(func=cmd_ml_fit)

    ml_predict_parser = ml_sub.add_parser(
        "predict", help="surrogate mean and uncertainty for a scenario, no solve"
    )
    _add_scenario_argument(ml_predict_parser)
    ml_predict_parser.add_argument(
        "--model-dir",
        metavar="DIR",
        default="models",
        help="model directory written by 'repro ml fit' (default: ./models)",
    )
    ml_predict_parser.add_argument(
        "--model-id",
        metavar="ID",
        default=None,
        help="specific saved model (default: the latest fit)",
    )
    _add_output_arguments(ml_predict_parser)
    ml_predict_parser.set_defaults(func=cmd_ml_predict)

    ml_active_parser = ml_sub.add_parser(
        "active",
        help="one active-learning round: fit, pick informative points, run them",
    )
    ml_active_parser.add_argument(
        "file", help="campaign JSONL store to train on and run into"
    )
    ml_active_parser.add_argument(
        "candidates", help="sweep JSON file (base + axes) defining the pool"
    )
    ml_active_parser.add_argument(
        "--model",
        choices=("gp", "rff"),
        default="gp",
        help="surrogate family (default: gp)",
    )
    ml_active_parser.add_argument(
        "--target",
        action="append",
        metavar="PATH",
        default=None,
        help="dotted result path(s) to model (repeatable; default: built-ins)",
    )
    ml_active_parser.add_argument(
        "--n-points",
        type=int,
        default=4,
        help="batch size: scenarios to run this round (default: 4)",
    )
    ml_active_parser.add_argument(
        "--acquisition",
        choices=("max_variance", "ucb", "ei"),
        default="max_variance",
        help="how to score candidates (default: max_variance)",
    )
    ml_active_parser.add_argument(
        "--executor",
        default="serial",
        help=(
            "campaign executor for the selected batch: one of "
            + "/".join(available_executors())
            + " (default: serial)"
        ),
    )
    ml_active_parser.add_argument(
        "--workers", type=int, default=1, help="worker count for thread/process"
    )
    ml_active_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="report the selection without running anything",
    )
    _add_output_arguments(ml_active_parser)
    ml_active_parser.set_defaults(func=cmd_ml_active)

    serve_parser = subparsers.add_parser(
        "serve", help="run the campaign service (durable queue + HTTP API)"
    )
    serve_parser.add_argument(
        "--data-dir",
        default="serve-data",
        help=(
            "service state directory: job journal, shared result cache and "
            "per-job sharded campaign stores (default: ./serve-data)"
        ),
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8080,
        help="TCP port (0 picks an ephemeral port; default: 8080)",
    )
    serve_parser.add_argument(
        "--executor",
        default="process",
        help=(
            "campaign executor jobs run under: one of "
            + "/".join(available_executors())
            + " or a custom registered name (default: process)"
        ),
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2, help="executor workers per job"
    )
    serve_parser.add_argument(
        "--pool-size", type=int, default=1, help="jobs run concurrently"
    )
    serve_parser.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help=(
            "backpressure: reject new submissions (HTTP 429) once this many "
            "jobs are queued (default: unbounded)"
        ),
    )
    serve_parser.set_defaults(func=cmd_serve)

    cache_parser = subparsers.add_parser(
        "cache", help="manage the shared result cache of a serve data dir"
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    gc_parser = cache_sub.add_parser(
        "gc", help="expire old cache entries and/or cap the entry count"
    )
    gc_parser.add_argument(
        "--data-dir",
        default="serve-data",
        help="service state directory holding the cache (default: ./serve-data)",
    )
    gc_parser.add_argument(
        "--max-age",
        type=float,
        default=None,
        metavar="SECONDS",
        help="remove entries older than this many seconds",
    )
    gc_parser.add_argument(
        "--max-entries",
        type=int,
        default=None,
        help="keep at most this many entries (oldest removed first)",
    )
    _add_output_arguments(gc_parser)
    gc_parser.set_defaults(func=cmd_cache_gc)

    submit_parser = subparsers.add_parser(
        "submit", help="queue a campaign on a running 'repro serve' instance"
    )
    submit_parser.add_argument(
        "campaign",
        help=(
            "sweep JSON file (base + axes), scenario JSON file, or "
            "registered scenario name"
        ),
    )
    submit_parser.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="service URL (default: http://127.0.0.1:8080)",
    )
    submit_parser.add_argument(
        "--solver",
        choices=("fdm", "ice"),
        default=None,
        help="simulator family override (single-scenario submissions)",
    )
    submit_parser.add_argument(
        "--optimize",
        action="store_true",
        help="run the Sec. IV design flow instead of simulating",
    )
    submit_parser.add_argument(
        "--fresh",
        action="store_true",
        help=(
            "force a new job even if an identical one exists (typically "
            "served from the shared result cache without solving)"
        ),
    )
    submit_parser.add_argument(
        "--wait",
        action="store_true",
        help="poll until the job finishes and report its summary",
    )
    submit_parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="--wait timeout in seconds (default: 600)",
    )
    _add_output_arguments(submit_parser)
    submit_parser.set_defaults(func=cmd_submit)

    jobs_parser = subparsers.add_parser(
        "jobs", help="inspect the jobs of a running 'repro serve' instance"
    )
    jobs_parser.add_argument(
        "job_id", nargs="?", default=None, help="job id (default: list all)"
    )
    jobs_parser.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="service URL (default: http://127.0.0.1:8080)",
    )
    jobs_parser.add_argument(
        "--records",
        action="store_true",
        help="dump the job's stored records as NDJSON (requires a job id)",
    )
    _add_output_arguments(jobs_parser)
    jobs_parser.set_defaults(func=cmd_jobs)

    bench_parser = subparsers.add_parser(
        "bench", help="repeated runs: wall times and cache statistics"
    )
    _add_scenario_argument(bench_parser)
    bench_parser.add_argument(
        "--solver", choices=("fdm", "ice"), default=None
    )
    bench_parser.add_argument("--repeat", type=int, default=3)
    _add_backend_argument(bench_parser)
    _add_output_arguments(bench_parser)
    bench_parser.set_defaults(func=cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `repro run ... | head`
        return 0
    except (ValueError, OSError) as error:
        # User-input problems surface as ValueError (spec validation,
        # unknown names, bad JSON) or OSError (unreadable/unwritable
        # files); anything else is a bug and should show its traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
