"""Small compatibility helpers shared across the package."""

from __future__ import annotations

import importlib

import numpy as np

#: ``numpy.trapezoid`` on NumPy >= 2.0, falling back to the pre-2.0 name.
trapezoid = getattr(np, "trapezoid", None) or np.trapz


def import_attribute(path: str, context: str = "reference"):
    """Resolve a lazy ``"module:attr"`` (or ``"module.attr"``) reference.

    Used by the simulator and executor registries so third-party plugins
    can register by *name* without importing their implementation module
    -- the import happens on first use, making registration order
    irrelevant (and the reference shippable to worker processes).
    """
    if not isinstance(path, str) or not path:
        raise ValueError(f"{context}: expected a 'module:attr' string, got {path!r}")
    if ":" in path:
        module_name, _, attribute = path.partition(":")
    else:
        module_name, _, attribute = path.rpartition(".")
    if not module_name or not attribute:
        raise ValueError(
            f"{context}: {path!r} is not a 'module:attr' reference"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as error:
        raise ValueError(
            f"{context}: cannot import module {module_name!r} ({error})"
        ) from None
    try:
        return getattr(module, attribute)
    except AttributeError:
        raise ValueError(
            f"{context}: module {module_name!r} has no attribute {attribute!r}"
        ) from None


__all__ = ["trapezoid", "import_attribute"]
