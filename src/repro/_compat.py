"""Small compatibility helpers shared across the package."""

from __future__ import annotations

import numpy as np

#: ``numpy.trapezoid`` on NumPy >= 2.0, falling back to the pre-2.0 name.
trapezoid = getattr(np, "trapezoid", None) or np.trapz

__all__ = ["trapezoid"]
