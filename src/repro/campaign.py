"""Streaming campaign results: the JSONL store and the result facade.

Long campaigns must survive interruption.  A :class:`CampaignStore` is an
append-only JSONL file -- one self-describing record per completed
scenario, flushed as soon as the executor yields it -- keyed by the
record's ``spec_hash`` (a content hash over the spec plus the effective
action/simulator family, see :meth:`repro.exec.base.CampaignTask.key`).
On restart, :meth:`Session.run_many` loads the store and skips every task
whose hash is already present with ``status == "ok"``: interrupt a
12-hour sweep after scenario 700 and the re-run computes only the
remaining 300, whatever executor either run used.

A torn final line (the process died mid-write) is tolerated and dropped;
any other malformed line raises, because silently skipping a *complete*
line would silently recompute -- or worse, double-report -- a scenario.

Million-scenario campaigns do not fit one append-only file comfortably:
every resume re-reads the whole history and every append contends on one
handle.  A store can therefore be **sharded** by spec-hash prefix: records
land in ``<path>.d/<xx>.jsonl`` (``xx`` = the first two hex digits of the
record's ``spec_hash``, 256 shards).  :meth:`load` always reads the legacy
single file *and* any shard directory, so old stores keep working and a
single-file store can be migrated by simply re-running the campaign with
``sharded=True``.  Torn-tail healing applies per physical file.

:class:`CampaignResult` is what :meth:`Session.run_many` returns: the
records in sweep order plus campaign-level provenance (executor, worker
count, wall time, and the solve/cache counters aggregated across workers).
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from .core.engine import EvaluationEngine

__all__ = ["CampaignStore", "CampaignResult", "summarize_records"]


class CampaignStore:
    """Append-only JSONL store of campaign records, keyed by spec hash.

    Parameters
    ----------
    path:
        The JSONL file; created on first :meth:`append`, loaded (if it
        exists) by :meth:`load`.
    sharded:
        ``True`` appends into per-prefix shard files under ``<path>.d/``
        instead of the single file; ``False`` forces the legacy single
        file; ``None`` (default) auto-detects -- a store whose shard
        directory already exists keeps sharding, anything else stays a
        single file.  Reads always cover both layouts.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        sharded: Optional[bool] = None,
    ) -> None:
        self.path = os.fspath(path)
        self.shard_dir = self.path + ".d"
        self._sharded = sharded
        self._handles: Dict[str, object] = {}
        self._closed = False
        self.n_dropped_torn = 0

    @property
    def is_sharded(self) -> bool:
        """Whether appends go to shard files (explicit or auto-detected)."""
        if self._sharded is not None:
            return self._sharded
        return os.path.isdir(self.shard_dir)

    @property
    def closed(self) -> bool:
        """True after :meth:`close`; appends raise until :meth:`reopen`."""
        return self._closed

    def shard_paths(self) -> List[str]:
        """The existing shard files, sorted by prefix."""
        return sorted(glob.glob(os.path.join(self.shard_dir, "??.jsonl")))

    # -- reading -----------------------------------------------------------

    def _read_file(
        self, path: str, records: Dict[str, Dict[str, object]]
    ) -> None:
        """Fold one physical JSONL file into ``records`` (later wins).

        A malformed *final* line is treated as a torn write from an
        interrupted campaign and dropped (counted in ``n_dropped_torn``);
        malformed interior lines raise ``ValueError`` -- the file is not a
        campaign store.
        """
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines):
                    self.n_dropped_torn += 1
                    continue
                raise ValueError(
                    f"{path}:{number}: malformed campaign record "
                    "(not JSON); is this really a campaign JSONL file?"
                ) from None
            if not isinstance(record, dict) or "spec_hash" not in record:
                raise ValueError(
                    f"{path}:{number}: campaign records must be JSON "
                    "objects with a 'spec_hash' key"
                )
            records[record["spec_hash"]] = record

    def load(self) -> Dict[str, Dict[str, object]]:
        """Stored records keyed by ``spec_hash`` (later records win).

        Reads the legacy single file first and any shard files second, so
        a store migrated to shards prefers the sharded records; each
        physical file gets its own torn-final-line tolerance.
        """
        records: Dict[str, Dict[str, object]] = {}
        if os.path.exists(self.path):
            self._read_file(self.path, records)
        for shard in self.shard_paths():
            self._read_file(shard, records)
        return records

    # -- writing -----------------------------------------------------------

    def _prepare_append(self, path: str) -> None:
        """Heal an interrupted file before appending to it.

        A campaign killed mid-write leaves a torn, newline-less final
        line.  Appending straight after it would glue the next record
        onto the partial one, corrupting *both*; so before the first
        append, a trailing partial line is truncated away (it is counted
        in ``n_dropped_torn``) -- unless it is actually a complete JSON
        record that merely lacks its newline, which is completed instead.
        """
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return
        if not data or data.endswith(b"\n"):
            return
        tail = data[data.rfind(b"\n") + 1:]
        try:
            json.loads(tail.decode("utf-8"))
            heal = True
        except (UnicodeDecodeError, json.JSONDecodeError):
            heal = False
        with open(path, "r+b") as handle:
            if heal:
                handle.seek(0, os.SEEK_END)
                handle.write(b"\n")
            else:
                handle.truncate(len(data) - len(tail))
                self.n_dropped_torn += 1

    def _target_path(self, spec_hash: str) -> str:
        """The physical file a record belongs to (shard or legacy)."""
        if not self.is_sharded:
            return self.path
        prefix = str(spec_hash)[:2].lower()
        if len(prefix) < 2 or any(c not in "0123456789abcdef" for c in prefix):
            # Records with non-hash keys (hand-written stores) fall into a
            # dedicated overflow shard instead of being rejected.
            prefix = "xx"
        return os.path.join(self.shard_dir, f"{prefix}.jsonl")

    def append(self, record: Dict[str, object]) -> None:
        """Append one record and flush, so interrupts lose at most one line."""
        if "spec_hash" not in record:
            raise ValueError("campaign records must carry a 'spec_hash' key")
        if self._closed:
            raise ValueError(
                f"campaign store {self.path!r} is closed; call reopen() (or "
                "build a new CampaignStore) before appending more records"
            )
        target = self._target_path(str(record["spec_hash"]))
        handle = self._handles.get(target)
        if handle is None:
            directory = os.path.dirname(target)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._prepare_append(target)
            handle = open(target, "a", encoding="utf-8")
            self._handles[target] = handle
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()

    def close(self) -> None:
        """Close every append handle and mark the store closed (idempotent)."""
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()
        self._closed = True

    def reopen(self) -> "CampaignStore":
        """Make a closed store appendable again (handles reopen lazily)."""
        self._closed = False
        return self

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        layout = "sharded" if self.is_sharded else "single-file"
        return f"<CampaignStore {self.path!r} ({layout})>"


def _sum_counters(records: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Sum the per-record engine counter deltas (absent counters count 0)."""
    return EvaluationEngine.merge_stats(
        [record.get("counters") or {} for record in records]
    )


def summarize_records(records: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Campaign-level roll-up of a sequence of campaign records.

    Shared by :meth:`CampaignResult.summary` and ``repro campaign
    summarize``, so a stored JSONL file summarizes exactly like a live
    campaign.
    """
    ok = [r for r in records if r.get("status") == "ok"]
    failed = [r for r in records if r.get("status") == "error"]
    peaks = [
        r["result"]["peak_temperature_K"]
        for r in ok
        if r.get("action") == "run" and isinstance(r.get("result"), dict)
        and "peak_temperature_K" in r["result"]
    ]
    wall = sum(float(r.get("wall_time_s", 0.0)) for r in records)
    summary: Dict[str, object] = {
        "n_records": len(records),
        "n_ok": len(ok),
        "n_failed": len(failed),
        # Thread-executor records carry counters: None (per-task deltas on
        # a shared session are not attributable); when any such record is
        # present the summed counters are a lower bound, flagged here.
        "counters_complete": all(r.get("counters") is not None for r in records),
        "actions": sorted({str(r.get("action")) for r in records}),
        "solvers": sorted(
            {str(r.get("solver")) for r in records if r.get("solver")}
        ),
        "workers_seen": sorted(
            {
                int(r["worker"]["pid"])
                for r in records
                if isinstance(r.get("worker"), dict) and "pid" in r["worker"]
            }
        ),
        "task_wall_time_s": wall,
        "counters": _sum_counters(records),
        "failures": [
            {"scenario": r.get("scenario"), "error": r.get("error")}
            for r in failed
        ],
    }
    if peaks:
        summary["peak_temperature_K_min"] = min(peaks)
        summary["peak_temperature_K_max"] = max(peaks)
    transients = [
        r["result"]["transient"]
        for r in ok
        if isinstance(r.get("result"), dict)
        and isinstance(r["result"].get("transient"), dict)
    ]
    if transients:
        transient_peaks = [
            t["peak_transient_temperature_K"]
            for t in transients
            if "peak_transient_temperature_K" in t
        ]
        summary["n_transient"] = len(transients)
        if transient_peaks:
            summary["peak_transient_temperature_K_min"] = min(transient_peaks)
            summary["peak_transient_temperature_K_max"] = max(transient_peaks)
        summary["time_above_threshold_s_total"] = sum(
            float(t.get("time_above_threshold_s", 0.0)) for t in transients
        )
        summary["pumping_energy_J_total"] = sum(
            float(t.get("pumping_energy_J", 0.0)) for t in transients
        )
        summary["policies_seen"] = sorted(
            {str(t.get("policy")) for t in transients if t.get("policy")}
        )
    return summary


@dataclass
class CampaignResult:
    """Outcome of one campaign: ordered records plus provenance.

    Attributes
    ----------
    name:
        The sweep name (or ``"campaign"`` for ad-hoc scenario lists).
    executor / workers:
        Which executor ran the fresh tasks and with how many workers.
    records:
        One plain-data record per scenario, in sweep order.  Records
        resumed from a store carry ``"source": "store"``; freshly-run
        records carry ``"source": "run"``.
    wall_time_s:
        End-to-end campaign wall time (fresh work only).
    n_from_store:
        How many scenarios were served from the campaign store.
    n_from_cache:
        How many scenarios were served from a shared result cache
        (see :class:`repro.serve.cache.ResultCache`) without solving.
    store_path:
        The JSONL file records were streamed to, if any.
    provenance:
        Campaign-level context, including ``counters`` -- the engine
        solve/cache counters attributable to this campaign, aggregated
        across threads and worker processes.
    """

    name: str
    executor: str
    workers: int
    records: List[Dict[str, object]]
    wall_time_s: float
    n_from_store: int = 0
    n_from_cache: int = 0
    store_path: Optional[str] = None
    provenance: Dict[str, object] = field(default_factory=dict)

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def n_ok(self) -> int:
        """Scenarios that completed successfully."""
        return sum(1 for r in self.records if r.get("status") == "ok")

    @property
    def n_failed(self) -> int:
        """Scenarios whose record is an error."""
        return sum(1 for r in self.records if r.get("status") == "error")

    def record_for(self, scenario: str) -> Dict[str, object]:
        """The record of a scenario by its expanded name."""
        for record in self.records:
            if record.get("scenario") == scenario:
                return record
        raise KeyError(f"no campaign record for scenario {scenario!r}")

    def results(self) -> List[Optional[Dict[str, object]]]:
        """The per-scenario result payloads in sweep order (None on error)."""
        return [record.get("result") for record in self.records]

    def metrics(self, key: str) -> List[Optional[float]]:
        """One result metric across the campaign (None for failed runs)."""
        return [
            (record.get("result") or {}).get(key) for record in self.records
        ]

    # -- reporting ---------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Roll-up of the campaign (counts, failures, aggregated counters)."""
        summary = summarize_records(self.records)
        summary.update(
            {
                "name": self.name,
                "executor": self.executor,
                "workers": self.workers,
                "wall_time_s": self.wall_time_s,
                "n_from_store": self.n_from_store,
                "n_from_cache": self.n_from_cache,
                "store_path": self.store_path,
                "counters": self.provenance.get("counters", summary["counters"]),
            }
        )
        return summary

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible representation (summary + full records)."""
        return {
            "name": self.name,
            "executor": self.executor,
            "workers": self.workers,
            "wall_time_s": self.wall_time_s,
            "n_from_store": self.n_from_store,
            "n_from_cache": self.n_from_cache,
            "store_path": self.store_path,
            "summary": self.summary(),
            "provenance": self.provenance,
            "records": self.records,
        }
