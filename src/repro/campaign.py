"""Streaming campaign results: the JSONL store and the result facade.

Long campaigns must survive interruption.  A :class:`CampaignStore` is an
append-only JSONL file -- one self-describing record per completed
scenario, flushed as soon as the executor yields it -- keyed by the
record's ``spec_hash`` (a content hash over the spec plus the effective
action/simulator family, see :meth:`repro.exec.base.CampaignTask.key`).
On restart, :meth:`Session.run_many` loads the store and skips every task
whose hash is already present with ``status == "ok"``: interrupt a
12-hour sweep after scenario 700 and the re-run computes only the
remaining 300, whatever executor either run used.

A torn final line (the process died mid-write) is tolerated and dropped;
any other malformed line raises, because silently skipping a *complete*
line would silently recompute -- or worse, double-report -- a scenario.

Million-scenario campaigns do not fit one append-only file comfortably:
every resume re-reads the whole history and every append contends on one
handle.  A store can therefore be **sharded** by spec-hash prefix: records
land in ``<path>.d/<xx>.jsonl`` (``xx`` = the first two hex digits of the
record's ``spec_hash``, 256 shards).  :meth:`load` always reads the legacy
single file *and* any shard directory, so old stores keep working and a
single-file store can be migrated by simply re-running the campaign with
``sharded=True``.  Torn-tail healing applies per physical file.

:class:`CampaignResult` is what :meth:`Session.run_many` returns: the
records in sweep order plus campaign-level provenance (executor, worker
count, wall time, and the solve/cache counters aggregated across workers).
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from .core.engine import EvaluationEngine

__all__ = ["CampaignStore", "CampaignResult", "summarize_records"]


class CampaignStore:
    """Append-only JSONL store of campaign records, keyed by spec hash.

    Parameters
    ----------
    path:
        The JSONL file; created on first :meth:`append`, loaded (if it
        exists) by :meth:`load`.
    sharded:
        ``True`` appends into per-prefix shard files under ``<path>.d/``
        instead of the single file; ``False`` forces the legacy single
        file; ``None`` (default) auto-detects -- a store whose shard
        directory already exists keeps sharding, anything else stays a
        single file.  Reads always cover both layouts.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        sharded: Optional[bool] = None,
    ) -> None:
        self.path = os.fspath(path)
        self.shard_dir = self.path + ".d"
        self._sharded = sharded
        self._handles: Dict[str, object] = {}
        self._closed = False
        self.n_dropped_torn = 0

    @property
    def is_sharded(self) -> bool:
        """Whether appends go to shard files (explicit or auto-detected)."""
        if self._sharded is not None:
            return self._sharded
        return os.path.isdir(self.shard_dir)

    @property
    def closed(self) -> bool:
        """True after :meth:`close`; appends raise until :meth:`reopen`."""
        return self._closed

    def shard_paths(self) -> List[str]:
        """The existing shard files, sorted by prefix."""
        return sorted(glob.glob(os.path.join(self.shard_dir, "??.jsonl")))

    # -- reading -----------------------------------------------------------

    def _scan_file(
        self, path: str, count_torn: bool = True
    ) -> Iterator[Tuple[int, Dict[str, object]]]:
        """Yield ``(line_number, record)`` pairs from one physical file.

        A malformed *final* line is treated as a torn write from an
        interrupted campaign and dropped (counted in ``n_dropped_torn``
        unless ``count_torn`` is ``False`` -- the second pass of
        :meth:`iter_records` re-reads files already counted once);
        malformed interior lines raise ``ValueError`` -- the file is not a
        campaign store.
        """
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines):
                    if count_torn:
                        self.n_dropped_torn += 1
                    continue
                raise ValueError(
                    f"{path}:{number}: malformed campaign record "
                    "(not JSON); is this really a campaign JSONL file?"
                ) from None
            if not isinstance(record, dict) or "spec_hash" not in record:
                raise ValueError(
                    f"{path}:{number}: campaign records must be JSON "
                    "objects with a 'spec_hash' key"
                )
            yield number, record

    def _read_file(
        self, path: str, records: Dict[str, Dict[str, object]]
    ) -> None:
        """Fold one physical JSONL file into ``records`` (later wins)."""
        for _, record in self._scan_file(path):
            records[record["spec_hash"]] = record

    def _physical_paths(self) -> List[str]:
        """Every physical file of the store, legacy first then shards."""
        paths: List[str] = []
        if os.path.exists(self.path):
            paths.append(self.path)
        paths.extend(self.shard_paths())
        return paths

    def load(self) -> Dict[str, Dict[str, object]]:
        """Stored records keyed by ``spec_hash`` (later records win).

        Reads the legacy single file first and any shard files second, so
        a store migrated to shards prefers the sharded records; each
        physical file gets its own torn-final-line tolerance.
        """
        records: Dict[str, Dict[str, object]] = {}
        for path in self._physical_paths():
            self._read_file(path, records)
        return records

    def iter_records(self) -> Iterator[Dict[str, object]]:
        """Stream the store's records one at a time, deduped by spec hash.

        Same later-wins / shard-over-legacy semantics as :meth:`load`
        (including torn-final-line tolerance per physical file), but only
        one record payload is held at a time: a first index pass notes
        *where* each spec hash's winning record lives (a hash-to-position
        map, no payloads), then a second pass re-reads the files in the
        same order and yields only the winners.  Appends racing the
        iteration are not guaranteed to be seen -- the view is the store
        as it was when the call began.

        Records stream in physical order (legacy file first, then shards
        sorted by prefix; line order within a file), so consumers like
        ``repro campaign summarize`` and :mod:`repro.ml.dataset` can fold
        arbitrarily large stores without materializing them.
        """
        paths = self._physical_paths()
        winners: Dict[str, Tuple[int, int]] = {}
        for file_index, path in enumerate(paths):
            for number, record in self._scan_file(path):
                winners[str(record["spec_hash"])] = (file_index, number)
        for file_index, path in enumerate(paths):
            try:
                for number, record in self._scan_file(path, count_torn=False):
                    key = str(record["spec_hash"])
                    if winners.get(key) == (file_index, number):
                        yield record
            except FileNotFoundError:
                # The file vanished between passes (e.g. a concurrent
                # migration); its winning records are simply skipped.
                continue

    # -- writing -----------------------------------------------------------

    def _prepare_append(self, path: str) -> None:
        """Heal an interrupted file before appending to it.

        A campaign killed mid-write leaves a torn, newline-less final
        line.  Appending straight after it would glue the next record
        onto the partial one, corrupting *both*; so before the first
        append, a trailing partial line is truncated away (it is counted
        in ``n_dropped_torn``) -- unless it is actually a complete JSON
        record that merely lacks its newline, which is completed instead.
        """
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return
        if not data or data.endswith(b"\n"):
            return
        tail = data[data.rfind(b"\n") + 1:]
        try:
            json.loads(tail.decode("utf-8"))
            heal = True
        except (UnicodeDecodeError, json.JSONDecodeError):
            heal = False
        with open(path, "r+b") as handle:
            if heal:
                handle.seek(0, os.SEEK_END)
                handle.write(b"\n")
            else:
                handle.truncate(len(data) - len(tail))
                self.n_dropped_torn += 1

    def _target_path(self, spec_hash: str) -> str:
        """The physical file a record belongs to (shard or legacy)."""
        if not self.is_sharded:
            return self.path
        prefix = str(spec_hash)[:2].lower()
        if len(prefix) < 2 or any(c not in "0123456789abcdef" for c in prefix):
            # Records with non-hash keys (hand-written stores) fall into a
            # dedicated overflow shard instead of being rejected.
            prefix = "xx"
        return os.path.join(self.shard_dir, f"{prefix}.jsonl")

    def append(self, record: Dict[str, object]) -> None:
        """Append one record and flush, so interrupts lose at most one line."""
        if "spec_hash" not in record:
            raise ValueError("campaign records must carry a 'spec_hash' key")
        if self._closed:
            raise ValueError(
                f"campaign store {self.path!r} is closed; call reopen() (or "
                "build a new CampaignStore) before appending more records"
            )
        target = self._target_path(str(record["spec_hash"]))
        handle = self._handles.get(target)
        if handle is None:
            directory = os.path.dirname(target)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._prepare_append(target)
            handle = open(target, "a", encoding="utf-8")
            self._handles[target] = handle
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()

    def close(self) -> None:
        """Close every append handle and mark the store closed (idempotent)."""
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()
        self._closed = True

    def reopen(self) -> "CampaignStore":
        """Make a closed store appendable again (handles reopen lazily)."""
        self._closed = False
        return self

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        layout = "sharded" if self.is_sharded else "single-file"
        return f"<CampaignStore {self.path!r} ({layout})>"


def summarize_records(
    records: Iterable[Dict[str, object]],
) -> Dict[str, object]:
    """Campaign-level roll-up of an iterable of campaign records.

    Shared by :meth:`CampaignResult.summary` and ``repro campaign
    summarize``, so a stored JSONL file summarizes exactly like a live
    campaign.  The fold is single-pass and holds only the running
    aggregates (plus the failure list), so it composes with
    :meth:`CampaignStore.iter_records` to summarize stores of any size
    without materializing them.
    """
    n_records = n_ok = n_failed = 0
    counters_complete = True
    actions: set = set()
    solvers: set = set()
    workers_seen: set = set()
    wall = 0.0
    counters = EvaluationEngine.merge_stats([])
    failures: List[Dict[str, object]] = []
    peak_min = peak_max = None
    n_transient = 0
    transient_peak_min = transient_peak_max = None
    time_above_total = 0.0
    pumping_total = 0.0
    policies_seen: set = set()
    n_laminar_violated = 0
    max_reynolds = None

    for record in records:
        n_records += 1
        status = record.get("status")
        result = record.get("result")
        if status == "ok":
            n_ok += 1
        elif status == "error":
            n_failed += 1
            failures.append(
                {"scenario": record.get("scenario"), "error": record.get("error")}
            )
        # Thread-executor records carry counters: None (per-task deltas on
        # a shared session are not attributable); when any such record is
        # present the summed counters are a lower bound, flagged here.
        if record.get("counters") is None:
            counters_complete = False
        counters = EvaluationEngine.merge_stats(
            [counters, record.get("counters") or {}]
        )
        actions.add(str(record.get("action")))
        if record.get("solver"):
            solvers.add(str(record.get("solver")))
        worker = record.get("worker")
        if isinstance(worker, dict) and "pid" in worker:
            workers_seen.add(int(worker["pid"]))
        wall += float(record.get("wall_time_s", 0.0))
        if status == "ok" and isinstance(result, dict):
            if (
                record.get("action") == "run"
                and "peak_temperature_K" in result
            ):
                peak = result["peak_temperature_K"]
                peak_min = peak if peak_min is None else min(peak_min, peak)
                peak_max = peak if peak_max is None else max(peak_max, peak)
            transient = result.get("transient")
            if isinstance(transient, dict):
                n_transient += 1
                if "peak_transient_temperature_K" in transient:
                    tpeak = transient["peak_transient_temperature_K"]
                    transient_peak_min = (
                        tpeak
                        if transient_peak_min is None
                        else min(transient_peak_min, tpeak)
                    )
                    transient_peak_max = (
                        tpeak
                        if transient_peak_max is None
                        else max(transient_peak_max, tpeak)
                    )
                time_above_total += float(
                    transient.get("time_above_threshold_s", 0.0)
                )
                pumping_total += float(transient.get("pumping_energy_J", 0.0))
                if transient.get("policy"):
                    policies_seen.add(str(transient.get("policy")))
                if transient.get("laminar_violated"):
                    n_laminar_violated += 1
                if "max_reynolds" in transient:
                    reynolds = float(transient["max_reynolds"])
                    max_reynolds = (
                        reynolds
                        if max_reynolds is None
                        else max(max_reynolds, reynolds)
                    )

    summary: Dict[str, object] = {
        "n_records": n_records,
        "n_ok": n_ok,
        "n_failed": n_failed,
        "counters_complete": counters_complete,
        "actions": sorted(actions),
        "solvers": sorted(solvers),
        "workers_seen": sorted(workers_seen),
        "task_wall_time_s": wall,
        "counters": counters,
        "failures": failures,
    }
    if peak_min is not None:
        summary["peak_temperature_K_min"] = peak_min
        summary["peak_temperature_K_max"] = peak_max
    if n_transient:
        summary["n_transient"] = n_transient
        if transient_peak_min is not None:
            summary["peak_transient_temperature_K_min"] = transient_peak_min
            summary["peak_transient_temperature_K_max"] = transient_peak_max
        summary["time_above_threshold_s_total"] = time_above_total
        summary["pumping_energy_J_total"] = pumping_total
        summary["policies_seen"] = sorted(policies_seen)
        # Correlation-validity roll-up: how many transient runs pushed the
        # flow past the laminar regime, and the worst Reynolds number seen.
        summary["n_laminar_violated"] = n_laminar_violated
        if max_reynolds is not None:
            summary["max_reynolds"] = max_reynolds
    return summary


@dataclass
class CampaignResult:
    """Outcome of one campaign: ordered records plus provenance.

    Attributes
    ----------
    name:
        The sweep name (or ``"campaign"`` for ad-hoc scenario lists).
    executor / workers:
        Which executor ran the fresh tasks and with how many workers.
    records:
        One plain-data record per scenario, in sweep order.  Records
        resumed from a store carry ``"source": "store"``; freshly-run
        records carry ``"source": "run"``.
    wall_time_s:
        End-to-end campaign wall time (fresh work only).
    n_from_store:
        How many scenarios were served from the campaign store.
    n_from_cache:
        How many scenarios were served from a shared result cache
        (see :class:`repro.serve.cache.ResultCache`) without solving.
    store_path:
        The JSONL file records were streamed to, if any.
    provenance:
        Campaign-level context, including ``counters`` -- the engine
        solve/cache counters attributable to this campaign, aggregated
        across threads and worker processes.
    """

    name: str
    executor: str
    workers: int
    records: List[Dict[str, object]]
    wall_time_s: float
    n_from_store: int = 0
    n_from_cache: int = 0
    store_path: Optional[str] = None
    provenance: Dict[str, object] = field(default_factory=dict)

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def n_ok(self) -> int:
        """Scenarios that completed successfully."""
        return sum(1 for r in self.records if r.get("status") == "ok")

    @property
    def n_failed(self) -> int:
        """Scenarios whose record is an error."""
        return sum(1 for r in self.records if r.get("status") == "error")

    def record_for(self, scenario: str) -> Dict[str, object]:
        """The record of a scenario by its expanded name."""
        for record in self.records:
            if record.get("scenario") == scenario:
                return record
        raise KeyError(f"no campaign record for scenario {scenario!r}")

    def results(self) -> List[Optional[Dict[str, object]]]:
        """The per-scenario result payloads in sweep order (None on error)."""
        return [record.get("result") for record in self.records]

    def metrics(self, key: str) -> List[Optional[float]]:
        """One result metric across the campaign (None for failed runs)."""
        return [
            (record.get("result") or {}).get(key) for record in self.records
        ]

    # -- reporting ---------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Roll-up of the campaign (counts, failures, aggregated counters)."""
        summary = summarize_records(self.records)
        summary.update(
            {
                "name": self.name,
                "executor": self.executor,
                "workers": self.workers,
                "wall_time_s": self.wall_time_s,
                "n_from_store": self.n_from_store,
                "n_from_cache": self.n_from_cache,
                "store_path": self.store_path,
                "counters": self.provenance.get("counters", summary["counters"]),
            }
        )
        return summary

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible representation (summary + full records)."""
        return {
            "name": self.name,
            "executor": self.executor,
            "workers": self.workers,
            "wall_time_s": self.wall_time_s,
            "n_from_store": self.n_from_store,
            "n_from_cache": self.n_from_cache,
            "store_path": self.store_path,
            "summary": self.summary(),
            "provenance": self.provenance,
            "records": self.records,
        }
