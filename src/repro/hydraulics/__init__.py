"""Hydraulics of the microchannel coolant delivery.

Implements the pressure-drop model of Eq. (9) of the paper (and a
rectangular-duct refinement), pumping power, and the single-reservoir flow
network used to check the equal-pressure-drop constraint of Eq. (10).
"""

from .pressure import (
    local_pressure_gradient,
    pressure_drop,
    pressure_drop_rectangular,
    uniform_width_pressure_drop,
)
from .network import ChannelHydraulics, FlowNetwork, pumping_power

__all__ = [
    "ChannelHydraulics",
    "FlowNetwork",
    "local_pressure_gradient",
    "pressure_drop",
    "pressure_drop_rectangular",
    "pumping_power",
    "uniform_width_pressure_drop",
]
