"""Fluid delivery network of a liquid-cooled 3D IC.

The paper assumes all channels of a cavity are fed from a single coolant
reservoir (Sec. IV-B-2), so that

* every channel sees the same inlet-to-outlet pressure difference, and
* the paper's assumption 3 fixes the volumetric flow rate per channel.

These two statements are only simultaneously consistent if the channel
geometries are balanced; the optimizer enforces the equal-pressure-drop
constraint of Eq. (10) explicitly.  This module provides the bookkeeping for
that flow network: per-channel hydraulic resistance, the flow split that a
*real* common-plenum network would produce for a given set of width
profiles, pumping power, and the imbalance metric used by tests and
benchmarks to verify that optimized designs are hydraulically balanced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..thermal.geometry import ChannelGeometry, WidthProfile
from ..thermal.properties import Coolant, TABLE_I
from .pressure import pressure_drop

__all__ = [
    "ChannelHydraulics",
    "FlowNetwork",
    "pumping_power",
]


def pumping_power(pressure_drop_pa: float, flow_rate: float) -> float:
    """Hydraulic pumping power ``P = dP * V_dot`` in W for one channel."""
    if pressure_drop_pa < 0.0 or flow_rate < 0.0:
        raise ValueError("pressure drop and flow rate must be non-negative")
    return pressure_drop_pa * flow_rate


@dataclass(frozen=True)
class ChannelHydraulics:
    """Hydraulic summary of one (possibly width-modulated) channel."""

    pressure_drop: float
    flow_rate: float
    hydraulic_resistance: float
    pumping_power: float

    @classmethod
    def from_profile(
        cls,
        width_profile: WidthProfile,
        geometry: ChannelGeometry,
        flow_rate: float,
        coolant: Coolant = TABLE_I.coolant,
    ) -> "ChannelHydraulics":
        """Evaluate Eq. (9) for a width profile at the given flow rate."""
        drop = pressure_drop(width_profile, geometry, flow_rate, coolant)
        resistance = drop / flow_rate if flow_rate > 0.0 else float("inf")
        return cls(
            pressure_drop=drop,
            flow_rate=flow_rate,
            hydraulic_resistance=resistance,
            pumping_power=pumping_power(drop, flow_rate),
        )


class FlowNetwork:
    """A single-reservoir network feeding ``N`` parallel channels.

    Laminar flow makes every channel a linear hydraulic resistor
    ``R_i = dP_i / V_dot_i`` (evaluated at the nominal flow rate), so the
    common-plenum flow split for a fixed *total* flow is proportional to
    ``1 / R_i``.  The network exposes:

    * the constant-flow pressure drops the paper's constraint (Eq. 9/10)
      reasons about,
    * the natural (equal-pressure) flow split that the same geometry would
      produce, together with an imbalance metric, and
    * total pumping power.
    """

    def __init__(
        self,
        geometry: ChannelGeometry,
        width_profiles: Sequence[WidthProfile],
        flow_rate_per_channel: float = TABLE_I.flow_rate_per_channel,
        coolant: Coolant = TABLE_I.coolant,
    ) -> None:
        if not width_profiles:
            raise ValueError("a flow network needs at least one channel")
        if flow_rate_per_channel <= 0.0:
            raise ValueError("flow rate per channel must be positive")
        self.geometry = geometry
        self.coolant = coolant
        self.flow_rate_per_channel = float(flow_rate_per_channel)
        self.width_profiles: List[WidthProfile] = list(width_profiles)
        self.channels: List[ChannelHydraulics] = [
            ChannelHydraulics.from_profile(
                profile, geometry, flow_rate_per_channel, coolant
            )
            for profile in self.width_profiles
        ]

    # -- constant-flow view (the paper's constraint) ---------------------------

    @property
    def n_channels(self) -> int:
        """Number of parallel channels."""
        return len(self.channels)

    @property
    def pressure_drops(self) -> np.ndarray:
        """Per-channel pressure drops at the nominal per-channel flow (Pa)."""
        return np.array([channel.pressure_drop for channel in self.channels])

    @property
    def max_pressure_drop(self) -> float:
        """Largest per-channel pressure drop (Pa) -- the Eq. (9) constraint."""
        return float(np.max(self.pressure_drops))

    @property
    def pressure_imbalance(self) -> float:
        """Relative spread of per-channel pressure drops (Eq. 10 residual).

        ``(max - min) / max`` of the constant-flow pressure drops; zero for a
        perfectly balanced design.
        """
        drops = self.pressure_drops
        top = float(np.max(drops))
        if top == 0.0:
            return 0.0
        return float((top - np.min(drops)) / top)

    @property
    def total_flow_rate(self) -> float:
        """Total coolant flow delivered by the reservoir (m^3/s)."""
        return self.flow_rate_per_channel * self.n_channels

    @property
    def total_pumping_power(self) -> float:
        """Total hydraulic pumping power across channels (W)."""
        return float(sum(channel.pumping_power for channel in self.channels))

    # -- equal-pressure (natural) flow split ------------------------------------

    def natural_flow_split(self) -> np.ndarray:
        """Flow rates per channel for a common plenum delivering the same total flow.

        Laminar hydraulic resistances are flow-independent, so for a shared
        pressure head the flow through channel ``i`` is proportional to
        ``1 / R_i``; the split is normalized to conserve the total flow.
        """
        resistances = np.array(
            [channel.hydraulic_resistance for channel in self.channels]
        )
        conductances = 1.0 / resistances
        return self.total_flow_rate * conductances / conductances.sum()

    def flow_imbalance(self) -> float:
        """Relative deviation of the natural split from the uniform split.

        ``max |V_i - V_nominal| / V_nominal``.  Small values mean the
        equal-flow assumption (paper assumption 3) and the equal-pressure
        constraint (Eq. 10) are mutually consistent for this design.
        """
        split = self.natural_flow_split()
        return float(
            np.max(np.abs(split - self.flow_rate_per_channel))
            / self.flow_rate_per_channel
        )

    def summary(self) -> Dict[str, float]:
        """Scalar metrics used by reports and benchmarks."""
        return {
            "n_channels": float(self.n_channels),
            "max_pressure_drop_Pa": self.max_pressure_drop,
            "pressure_imbalance": self.pressure_imbalance,
            "flow_imbalance": self.flow_imbalance(),
            "total_pumping_power_W": self.total_pumping_power,
            "total_flow_rate_m3_per_s": self.total_flow_rate,
        }
