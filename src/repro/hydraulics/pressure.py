"""Pressure-drop models for width-modulated microchannels.

The paper constrains the optimal design with the laminar Darcy-Weisbach
pressure drop of Eq. (9)::

    dP = Int_0^d  8 mu V_dot (H_C + w_C(z))^2 / (H_C w_C(z))^3  dz  <=  dP_max

which corresponds to a Poiseuille-type friction law with a constant
``f.Re = 16`` (the circular-duct value).  This module implements that exact
expression (so the constraint used by the optimizer matches the paper), plus
a refined variant that uses the Shah & London rectangular-duct ``f.Re``
correlation, which the ablation benchmarks compare against.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .._compat import trapezoid

from ..thermal import correlations
from ..thermal.geometry import ChannelGeometry, WidthProfile
from ..thermal.properties import Coolant, TABLE_I

__all__ = [
    "local_pressure_gradient",
    "pressure_drop",
    "pressure_drop_rectangular",
    "uniform_width_pressure_drop",
]

ArrayLike = Union[float, np.ndarray]


def local_pressure_gradient(
    channel_width: ArrayLike,
    channel_height: float,
    flow_rate: float,
    viscosity: float,
) -> ArrayLike:
    """Pressure gradient ``dP/dz`` of Eq. (9), in Pa/m.

    ``8 mu V_dot (H_C + w_C)^2 / (H_C w_C)^3`` -- laminar flow with the
    circular-duct friction constant, as written in the paper.
    """
    width = np.asarray(channel_width, dtype=float)
    if np.any(width <= 0.0):
        raise ValueError("channel width must be positive")
    if channel_height <= 0.0:
        raise ValueError("channel height must be positive")
    if flow_rate < 0.0:
        raise ValueError("flow rate must be non-negative")
    if viscosity <= 0.0:
        raise ValueError("viscosity must be positive")
    numerator = 8.0 * viscosity * flow_rate * (channel_height + width) ** 2
    denominator = (channel_height * width) ** 3
    result = numerator / denominator
    if np.isscalar(channel_width):
        return float(result)
    return result


def pressure_drop(
    width_profile: WidthProfile,
    geometry: ChannelGeometry,
    flow_rate: float,
    coolant: Coolant = TABLE_I.coolant,
    n_samples: int = 2001,
) -> float:
    """Total channel pressure drop of Eq. (9) in Pa (trapezoidal integration)."""
    z = np.linspace(0.0, geometry.length, n_samples)
    widths = np.atleast_1d(width_profile(z))
    gradients = local_pressure_gradient(
        widths, geometry.channel_height, flow_rate, coolant.dynamic_viscosity
    )
    return float(trapezoid(gradients, z))


def pressure_drop_rectangular(
    width_profile: WidthProfile,
    geometry: ChannelGeometry,
    flow_rate: float,
    coolant: Coolant = TABLE_I.coolant,
    n_samples: int = 2001,
) -> float:
    """Pressure drop using the Shah & London rectangular-duct friction factor.

    ``dP/dz = 2 (f.Re)(alpha) mu u / D_h^2`` with the aspect-ratio-dependent
    Fanning ``f.Re``.  More accurate than the paper's constant-``f.Re``
    expression for very flat channels; used by the ablation benchmarks.
    """
    z = np.linspace(0.0, geometry.length, n_samples)
    widths = np.atleast_1d(width_profile(z))
    gradients = np.empty_like(widths)
    for index, width in enumerate(widths):
        f_re = correlations.friction_factor_times_reynolds(
            width, geometry.channel_height
        )
        d_h = correlations.hydraulic_diameter(width, geometry.channel_height)
        velocity = correlations.mean_velocity(
            flow_rate, width, geometry.channel_height
        )
        gradients[index] = (
            2.0 * f_re * coolant.dynamic_viscosity * velocity / d_h**2
        )
    return float(trapezoid(gradients, z))


def uniform_width_pressure_drop(
    width: float,
    geometry: ChannelGeometry,
    flow_rate: float,
    coolant: Coolant = TABLE_I.coolant,
) -> float:
    """Closed-form pressure drop of a constant-width channel (Pa)."""
    gradient = local_pressure_gradient(
        width, geometry.channel_height, flow_rate, coolant.dynamic_viscosity
    )
    return float(gradient * geometry.length)
