"""Counterflow channel arrangement (flow-direction extension).

The related work cited by the paper (Brunschwiler et al., four-port fluid
access and hotspot-optimized cavities) explores changing *how* the coolant
is routed rather than the channel geometry.  The simplest such variant that
our cavity model can express is a counterflow arrangement: neighbouring
channel lanes carry coolant in opposite directions, so every lane's hot
outlet sits next to a neighbouring lane's cold inlet and lateral conduction
in the silicon evens out the along-flow ramp.

This module builds counterflow variants of a cavity and evaluates them with
the same solver and metrics as every other design, so the comparison
benchmark can rank channel modulation against flow-direction engineering.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from ..core.results import DesignEvaluation
from ..hydraulics.pressure import pressure_drop
from ..thermal.fdm import solve_finite_difference
from ..thermal.geometry import MultiChannelStructure

__all__ = ["alternating_counterflow", "evaluate_flow_directions"]


def evaluate_flow_directions(
    structure: MultiChannelStructure,
    reversed_lanes: Sequence[bool],
    label: str,
    n_points: int = 161,
) -> DesignEvaluation:
    """Evaluate the cavity with an explicit per-lane flow direction pattern."""
    flags = [bool(flag) for flag in reversed_lanes]
    if len(flags) != structure.n_lanes:
        raise ValueError("one flow-direction flag per lane is required")
    lanes = [
        lane.with_flow_reversed(flag)
        for lane, flag in zip(structure.lanes, flags)
    ]
    candidate = replace(structure, lanes=tuple(lanes))
    solution = solve_finite_difference(candidate, n_points=n_points)
    flow = structure.lanes[0].flow_rate
    drops = np.array(
        [
            pressure_drop(
                lane.width_profile, structure.geometry, flow, structure.coolant
            )
            for lane in structure.lanes
        ]
    )
    return DesignEvaluation(
        label=label,
        width_profiles=[lane.width_profile for lane in structure.lanes],
        solution=solution,
        pressure_drops=drops,
        metadata={"technique": "counterflow", "reversed_lanes": flags},
    )


def alternating_counterflow(
    structure: MultiChannelStructure, n_points: int = 161
) -> DesignEvaluation:
    """Alternate the flow direction of every other lane (classic counterflow)."""
    flags = [lane % 2 == 1 for lane in range(structure.n_lanes)]
    return evaluate_flow_directions(
        structure, flags, "alternating counterflow", n_points
    )
