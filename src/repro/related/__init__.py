"""Related-work baselines and flow-routing extensions.

Implementations of the alternative thermal-balancing techniques the paper
discusses in its related-work section, built on the same cavity model and
metrics so they can be compared directly against optimal channel-width
modulation: variable-flow channel clustering (Qian et al.), non-uniform
channel density (Shi et al.) and counterflow channel arrangements
(flow-direction engineering in the spirit of Brunschwiler et al.).
"""

from .flow_allocation import FlowClusteringOptimizer, proportional_allocation
from .channel_density import (
    allocate_channels,
    evaluate_density,
    power_proportional_density,
    uniform_density,
)
from .counterflow import alternating_counterflow, evaluate_flow_directions
from .comparison import compare_techniques

__all__ = [
    "FlowClusteringOptimizer",
    "proportional_allocation",
    "allocate_channels",
    "evaluate_density",
    "power_proportional_density",
    "uniform_density",
    "alternating_counterflow",
    "evaluate_flow_directions",
    "compare_techniques",
]
