"""Side-by-side comparison of thermal-balancing techniques.

The paper argues (Sec. II) that channel-width modulation attacks the
gradient problem more directly than the alternatives proposed in the related
work.  This module runs all the techniques implemented in the library on the
same cavity and returns one row per technique, so the comparison benchmark
and the examples can print a single ranking table:

* conventional uniform maximum-width channels,
* optimal channel-width modulation (the paper's contribution),
* per-lane uniform widths (lateral-only width adaptation),
* variable-flow clustering (per-lane flow rates, Qian-style),
* power-proportional channel density (Shi-style),
* alternating counterflow (flow-direction engineering).
"""

from __future__ import annotations

from typing import List, Optional

from ..core import ChannelModulationDesigner, OptimizerSettings
from ..core.results import DesignEvaluation
from ..thermal.geometry import MultiChannelStructure
from .channel_density import power_proportional_density
from .counterflow import alternating_counterflow
from .flow_allocation import FlowClusteringOptimizer, proportional_allocation

__all__ = ["compare_techniques"]


def compare_techniques(
    structure: MultiChannelStructure,
    settings: Optional[OptimizerSettings] = None,
    optimize_flow: bool = False,
    n_points: int = 161,
) -> List[DesignEvaluation]:
    """Evaluate every implemented balancing technique on one cavity.

    Parameters
    ----------
    structure:
        The cavity to balance (conventional uniform maximum-width channels
        are used as the starting design for every technique).
    settings:
        Optimizer settings for the channel-modulation run; a coarse default
        is used when omitted.
    optimize_flow:
        If True the variable-flow baseline uses the NLP allocator in
        addition to the proportional heuristic (slower).
    n_points:
        z-grid resolution of the evaluations.

    Returns
    -------
    list of DesignEvaluation
        One evaluation per technique, in presentation order.
    """
    if settings is None:
        settings = OptimizerSettings(
            n_segments=5, max_iterations=25, n_grid_points=n_points
        )
    designer = ChannelModulationDesigner(structure, settings)

    evaluations: List[DesignEvaluation] = []
    evaluations.append(designer.uniform_maximum())
    modulation = designer.design()
    evaluations.append(modulation.optimal)
    evaluations.append(designer.per_lane_uniform())
    evaluations.append(proportional_allocation(structure, n_points=n_points))
    if optimize_flow:
        evaluations.append(
            FlowClusteringOptimizer(
                structure, n_grid_points=n_points
            ).optimize()
        )
    evaluations.append(
        power_proportional_density(structure, n_points=n_points)
    )
    evaluations.append(alternating_counterflow(structure, n_points=n_points))
    return evaluations
