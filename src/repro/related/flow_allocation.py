"""Variable-flow channel clustering (the Qian et al. related-work baseline).

Section II of the paper discusses the channel-clustering approach of Qian et
al.: microchannels are grouped into clusters, and micro-pumps inject a
*different coolant flow rate* into each cluster so that the cooling effort
matches the local computing load.  The paper contrasts it with channel
modulation (which needs no extra pumps and can also react to hotspots lying
*along* a channel).

This module implements that baseline on top of the same multi-channel cavity
model so the comparison benchmark can put the techniques side by side:

* :func:`proportional_allocation` -- the intuitive heuristic: give each lane
  a flow rate proportional to the power it must remove, under a fixed total
  flow budget.
* :class:`FlowClusteringOptimizer` -- a small NLP (SLSQP) that tunes the
  per-lane flow rates to minimize the thermal gradient (or the Eq. 7 cost)
  under the total-flow budget and per-lane pressure limit.

Both return :class:`~repro.core.results.DesignEvaluation`-compatible results
(evaluated with the same solver and metrics as the channel-modulation
designs).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

import numpy as np
from scipy import optimize

from ..core.objectives import get_objective
from ..core.results import DesignEvaluation
from ..hydraulics.pressure import pressure_drop
from ..thermal.fdm import solve_finite_difference
from ..thermal.geometry import MultiChannelStructure
from ..thermal.properties import TABLE_I

__all__ = ["proportional_allocation", "FlowClusteringOptimizer"]


def _evaluate_with_flows(
    structure: MultiChannelStructure,
    flow_rates: Sequence[float],
    label: str,
    n_points: int,
) -> DesignEvaluation:
    """Evaluate the cavity with per-lane flow rates (one per modeled lane)."""
    if len(flow_rates) != structure.n_lanes:
        raise ValueError("one flow rate per lane is required")
    lanes = [
        lane.with_flow_rate(float(flow))
        for lane, flow in zip(structure.lanes, flow_rates)
    ]
    candidate = replace(structure, lanes=tuple(lanes))
    solution = solve_finite_difference(candidate, n_points=n_points)
    drops = np.array(
        [
            pressure_drop(
                lane.width_profile,
                structure.geometry,
                float(flow),
                structure.coolant,
            )
            for lane, flow in zip(structure.lanes, flow_rates)
        ]
    )
    return DesignEvaluation(
        label=label,
        width_profiles=[lane.width_profile for lane in structure.lanes],
        solution=solution,
        pressure_drops=drops,
        metadata={
            "technique": "variable-flow clustering",
            "flow_rates_m3_per_s": [float(flow) for flow in flow_rates],
        },
    )


def proportional_allocation(
    structure: MultiChannelStructure,
    total_flow: Optional[float] = None,
    minimum_fraction: float = 0.25,
    n_points: int = 161,
) -> DesignEvaluation:
    """Split the total flow across lanes in proportion to their power.

    ``minimum_fraction`` guarantees every lane at least that fraction of the
    uniform per-lane share, mirroring the practical requirement that no
    cluster is ever starved of coolant.
    """
    if not (0.0 <= minimum_fraction <= 1.0):
        raise ValueError("minimum_fraction must lie in [0, 1]")
    n_lanes = structure.n_lanes
    nominal = structure.lanes[0].flow_rate
    if total_flow is None:
        total_flow = nominal * n_lanes
    powers = np.array([lane.total_power for lane in structure.lanes])
    if powers.sum() <= 0.0:
        shares = np.full(n_lanes, 1.0 / n_lanes)
    else:
        shares = powers / powers.sum()
    floor = minimum_fraction * total_flow / n_lanes
    flows = floor + shares * (total_flow - floor * n_lanes)
    return _evaluate_with_flows(
        structure, flows, "variable-flow (proportional)", n_points
    )


@dataclass
class FlowClusteringOptimizer:
    """Optimize per-lane flow rates under a total-flow budget.

    Attributes
    ----------
    structure:
        The multi-channel cavity (width profiles stay fixed -- typically the
        conventional uniform maximum width).
    total_flow:
        Total coolant budget in m^3/s; defaults to ``n_lanes`` times the
        nominal per-lane flow so the comparison against channel modulation
        is iso-flow.
    objective:
        Objective name from :mod:`repro.core.objectives`.
    max_pressure_drop:
        Per-lane pressure limit (Table I value by default).
    minimum_fraction:
        Lower bound on each lane's share of the uniform split.
    n_grid_points:
        z-grid resolution of the thermal evaluations.
    max_iterations:
        SLSQP iteration limit.
    """

    structure: MultiChannelStructure
    total_flow: Optional[float] = None
    objective: str = "temperature_range"
    max_pressure_drop: float = TABLE_I.max_pressure_drop
    minimum_fraction: float = 0.25
    n_grid_points: int = 161
    max_iterations: int = 30

    def __post_init__(self) -> None:
        if self.total_flow is None:
            self.total_flow = (
                self.structure.lanes[0].flow_rate * self.structure.n_lanes
            )
        if self.total_flow <= 0.0:
            raise ValueError("total_flow must be positive")
        if not (0.0 <= self.minimum_fraction < 1.0):
            raise ValueError("minimum_fraction must lie in [0, 1)")
        self._objective: Callable = get_objective(self.objective)

    # -- helpers ------------------------------------------------------------------

    def _flows_from_shares(self, shares: np.ndarray) -> np.ndarray:
        """Map free share variables onto feasible per-lane flows.

        The shares are normalized so the budget is met exactly; the minimum
        fraction is then enforced by construction.
        """
        shares = np.clip(np.asarray(shares, dtype=float), 1e-6, None)
        shares = shares / shares.sum()
        floor = self.minimum_fraction * self.total_flow / self.structure.n_lanes
        return floor + shares * (
            self.total_flow - floor * self.structure.n_lanes
        )

    def _cost(self, shares: np.ndarray) -> float:
        flows = self._flows_from_shares(shares)
        lanes = [
            lane.with_flow_rate(float(flow))
            for lane, flow in zip(self.structure.lanes, flows)
        ]
        candidate = replace(self.structure, lanes=tuple(lanes))
        solution = solve_finite_difference(candidate, n_points=self.n_grid_points)
        return float(self._objective(solution))

    def _pressure_margin(self, shares: np.ndarray) -> np.ndarray:
        flows = self._flows_from_shares(shares)
        drops = np.array(
            [
                pressure_drop(
                    lane.width_profile,
                    self.structure.geometry,
                    float(flow),
                    self.structure.coolant,
                )
                for lane, flow in zip(self.structure.lanes, flows)
            ]
        )
        return 1.0 - drops / self.max_pressure_drop

    # -- main entry point --------------------------------------------------------------

    def optimize(self) -> DesignEvaluation:
        """Run the flow allocation and return the evaluated design."""
        n_lanes = self.structure.n_lanes
        start = np.full(n_lanes, 1.0 / n_lanes)
        result = optimize.minimize(
            self._cost,
            start,
            method="SLSQP",
            bounds=[(1e-6, 1.0)] * n_lanes,
            constraints=[{"type": "ineq", "fun": self._pressure_margin}],
            options={"maxiter": self.max_iterations, "ftol": 1e-6},
        )
        best_shares = np.asarray(result.x, dtype=float)
        flows = self._flows_from_shares(best_shares)
        evaluation = _evaluate_with_flows(
            self.structure, flows, "variable-flow (optimized)", self.n_grid_points
        )
        evaluation.metadata.update(
            {
                "converged": bool(result.success),
                "n_iterations": int(result.get("nit", 0)),
                "total_flow_m3_per_s": float(self.total_flow),
            }
        )
        return evaluation
