"""Non-uniform channel density (the Shi et al. related-work baseline).

Section II of the paper discusses the customized channel-allocation approach
of Shi et al.: instead of modulating the width of individual channels, the
*number* of etched microchannels per unit die width is varied so that
regions with higher cooling demands receive more channels.  The paper notes
that this lateral-only adaptation cannot react to hotspots distributed along
a channel's pathway.

The baseline is implemented on the same multi-channel cavity model by
re-distributing a fixed total number of physical channels across the modeled
lanes (each lane represents one lateral die region):

* :func:`power_proportional_density` -- allocate channels to lanes in
  proportion to the power they must remove (with a minimum per lane), the
  heuristic the related work motivates;
* :func:`uniform_density` -- the reference allocation with equally many
  channels per lane (identical to the conventional design, used as the
  sanity anchor in tests).

Per-lane channel counts are mapped onto the solver through the
``lane_cluster_sizes`` field of :class:`MultiChannelStructure`, so all
thermal and hydraulic metrics remain directly comparable with the
channel-modulation designs.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

import numpy as np

from ..core.results import DesignEvaluation
from ..hydraulics.pressure import pressure_drop
from ..thermal.fdm import solve_finite_difference
from ..thermal.geometry import MultiChannelStructure

__all__ = [
    "allocate_channels",
    "power_proportional_density",
    "uniform_density",
    "evaluate_density",
]


def allocate_channels(
    weights: Sequence[float], total_channels: int, minimum_per_lane: int = 1
) -> List[int]:
    """Integer allocation of ``total_channels`` proportional to ``weights``.

    Uses the largest-remainder method so the counts always sum exactly to the
    total while respecting the per-lane minimum.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 1 or weights.size == 0:
        raise ValueError("weights must be a non-empty 1-D sequence")
    if np.any(weights < 0.0):
        raise ValueError("weights must be non-negative")
    n_lanes = weights.size
    if total_channels < minimum_per_lane * n_lanes:
        raise ValueError(
            "not enough channels to give every lane the minimum allocation"
        )
    if weights.sum() == 0.0:
        weights = np.ones(n_lanes)

    distributable = total_channels - minimum_per_lane * n_lanes
    ideal = weights / weights.sum() * distributable
    base = np.floor(ideal).astype(int)
    remainder = distributable - int(base.sum())
    # Hand the leftover channels to the lanes with the largest fractional part.
    order = np.argsort(-(ideal - base))
    for index in order[:remainder]:
        base[index] += 1
    return list(minimum_per_lane + base)


def evaluate_density(
    structure: MultiChannelStructure,
    channels_per_lane: Sequence[int],
    label: str,
    n_points: int = 161,
) -> DesignEvaluation:
    """Evaluate the cavity with an explicit per-lane channel allocation.

    The heat entering each lane is a property of the floorplan band above it
    and therefore does not change with the allocation; only the cooling
    capacity (channel count, hence conductances and coolant flow) does.
    """
    counts = [int(count) for count in channels_per_lane]
    if len(counts) != structure.n_lanes:
        raise ValueError("one channel count per lane is required")
    if any(count < 1 for count in counts):
        raise ValueError("every lane needs at least one channel")
    candidate = replace(structure, lane_cluster_sizes=tuple(counts))
    solution = solve_finite_difference(candidate, n_points=n_points)
    flow = structure.lanes[0].flow_rate
    drops = np.array(
        [
            pressure_drop(
                lane.width_profile, structure.geometry, flow, structure.coolant
            )
            for lane in structure.lanes
        ]
    )
    return DesignEvaluation(
        label=label,
        width_profiles=[lane.width_profile for lane in structure.lanes],
        solution=solution,
        pressure_drops=drops,
        metadata={
            "technique": "non-uniform channel density",
            "channels_per_lane": counts,
        },
    )


def uniform_density(
    structure: MultiChannelStructure, n_points: int = 161
) -> DesignEvaluation:
    """The reference allocation: the structure's own per-lane channel counts."""
    counts = [
        structure.cluster_size_of_lane(lane) for lane in range(structure.n_lanes)
    ]
    return evaluate_density(structure, counts, "uniform channel density", n_points)


def power_proportional_density(
    structure: MultiChannelStructure,
    total_channels: Optional[int] = None,
    minimum_per_lane: int = 1,
    n_points: int = 161,
) -> DesignEvaluation:
    """Allocate channels to lanes in proportion to the power they remove."""
    if total_channels is None:
        total_channels = structure.n_physical_channels
    powers = [lane.total_power for lane in structure.lanes]
    counts = allocate_channels(powers, total_channels, minimum_per_lane)
    return evaluate_density(
        structure, counts, "power-proportional channel density", n_points
    )
