"""An asyncio HTTP/1.1 front door over :class:`CampaignService`.

Stdlib only (``asyncio.start_server`` plus a hand-rolled HTTP/1.1
request parser): the container must not grow dependencies, and the
surface is small enough -- seven routes, JSON in, JSON or NDJSON out --
that a framework would be mostly weight.  Connections are one request
each (``Connection: close``), which keeps the parser honest and is fine
for a job-submission API where the expensive part is the solve, not the
TCP handshake.

Routes::

    GET  /v1/healthz            service liveness + queue/cache stats
    GET  /v1/scenarios          registered scenario listing
    GET  /v1/jobs               all jobs (most recent first)
    GET  /v1/jobs/<id>          one job's state + progress + counts
    GET  /v1/jobs/<id>/records  stored records as streaming NDJSON
    POST /v1/run                {"scenario": ..., "solver"?, "fresh"?}
    POST /v1/sweep              {"sweep": ..., "fresh"?}
    POST /v1/optimize           {"scenario"|"sweep": ..., "fresh"?}
    POST /v1/predict            {"scenario": ..., "exact_if_std_above"?,
                                 "target"?, "solver"?}
    POST /v1/ml/fit             {"job_ids"?, "model"?, "targets"?}

Submission endpoints respond ``202 Accepted`` with the job dict (plus
``"resubmitted": true`` when the durable queue deduplicated the job).
``/v1/predict`` answers ``200`` with ``{"source": "surrogate", "mean",
"std"}`` when the model is confident, or ``202`` with the enqueued exact
job when the predictive std exceeds ``exact_if_std_above``.
Validation errors are 400s with ``{"error": ...}``; unknown jobs/routes
are 404s.  The server runs the asyncio loop on a dedicated thread
(:meth:`CampaignServer.start_in_thread`) or blocks the caller
(:meth:`CampaignServer.run`, used by ``repro serve``).
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Dict, Optional, Tuple

from .queue import QueueFullError

__all__ = ["CampaignServer"]

#: Largest accepted request body; campaign sweeps are small JSON.
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    """Internal: raised by handlers to produce a non-200 JSON response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class CampaignServer:
    """Serve one :class:`~repro.serve.service.CampaignService` over HTTP."""

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port  # 0 picks an ephemeral port; see .port after start
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle ---------------------------------------------------------

    async def _serve(self, started: Optional[threading.Event] = None) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if started is not None:
            started.set()
        async with self._server:
            await self._server.serve_forever()

    def run(self) -> None:
        """Run the server on the calling thread until cancelled (Ctrl-C)."""
        self.service.start()
        try:
            asyncio.run(self._serve())
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        finally:
            self.service.stop()

    def start_in_thread(self) -> "CampaignServer":
        """Start service + server on a background thread; returns when up."""
        self.service.start()

        def target() -> None:
            self._loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self._serve(self._ready))
            except asyncio.CancelledError:
                pass
            finally:
                self._loop.close()

        self._thread = threading.Thread(
            target=target, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("server failed to start within 10s")
        return self

    def stop(self) -> None:
        """Stop the HTTP listener and the service (thread-safe, idempotent)."""
        if self._loop is not None and self._thread is not None:
            loop = self._loop

            def cancel() -> None:
                if self._server is not None:
                    self._server.close()
                for task in asyncio.all_tasks(loop):
                    task.cancel()

            loop.call_soon_threadsafe(cancel)
            self._thread.join(timeout=10)
            self._thread = None
            self._loop = None
        self.service.stop()

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _HttpError as error:
                await self._send_json(
                    writer, error.status, {"error": str(error)}
                )
                return
            await self._dispatch(writer, method, path, body)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # stop() cancels in-flight handlers; end the task cleanly so
            # asyncio's stream done-callback doesn't log the cancellation.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        try:
            request_line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise _HttpError(400, "request line too long")
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed HTTP request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"request body over {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, body

    async def _send_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        content_type: str,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, document: object
    ) -> None:
        payload = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        await self._send_response(writer, status, payload, "application/json")

    # -- routing -----------------------------------------------------------

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        body: bytes,
    ) -> None:
        try:
            document = await self._route(writer, method, path, body)
        except _HttpError as error:
            await self._send_json(writer, error.status, {"error": str(error)})
            return
        except KeyError as error:
            await self._send_json(
                writer, 404, {"error": str(error).strip("'\"")}
            )
            return
        except ValueError as error:
            await self._send_json(writer, 400, {"error": str(error)})
            return
        except Exception as error:  # noqa: BLE001 - service must not die
            await self._send_json(
                writer, 500, {"error": f"{type(error).__name__}: {error}"}
            )
            return
        if document is not None:  # streaming routes respond themselves
            status = 202 if method == "POST" else 200
            await self._send_json(writer, status, document)

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        body: bytes,
    ) -> Optional[object]:
        segments = [segment for segment in path.split("/") if segment]
        if not segments or segments[0] != "v1":
            raise _HttpError(404, f"no such path: {path}")
        segments = segments[1:]

        if segments == ["healthz"]:
            self._require(method, "GET")
            return self.service.healthz()
        if segments == ["scenarios"]:
            self._require(method, "GET")
            return {"scenarios": self.service.scenario_rows()}
        if segments == ["jobs"]:
            self._require(method, "GET")
            jobs = [job.to_dict() for job in self.service.queue.jobs()]
            jobs.sort(key=lambda job: job["submitted_at"], reverse=True)
            return {"jobs": jobs}
        if len(segments) == 2 and segments[0] == "jobs":
            self._require(method, "GET")
            return await asyncio.to_thread(self.service.job_detail, segments[1])
        if len(segments) == 3 and segments[:1] == ["jobs"] and segments[2] == "records":
            self._require(method, "GET")
            await self._stream_records(writer, segments[1])
            return None
        if segments in (["run"], ["sweep"], ["optimize"]):
            self._require(method, "POST")
            return await asyncio.to_thread(
                self._submit, segments[0], body
            )
        if segments == ["predict"]:
            self._require(method, "POST")
            document = await asyncio.to_thread(self._predict, body)
            # Confident surrogate answers are complete (200); fallbacks
            # enqueue a job and mirror the submission endpoints (202).
            status = 202 if document.get("source") == "exact" else 200
            await self._send_json(writer, status, document)
            return None
        if segments == ["ml", "fit"]:
            self._require(method, "POST")
            document = await asyncio.to_thread(self._fit, body)
            await self._send_json(writer, 200, document)
            return None
        raise _HttpError(404, f"no such path: {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"method {method} not allowed; use {expected}")

    # -- handlers ----------------------------------------------------------

    def _submit(self, kind: str, body: bytes) -> Dict[str, object]:
        try:
            request = json.loads(body.decode("utf-8")) if body else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise _HttpError(400, f"request body is not JSON: {error}")
        if not isinstance(request, dict):
            raise _HttpError(400, "request body must be a JSON object")
        if kind == "sweep":
            campaign = request.get("sweep")
            missing = "'sweep'"
        elif kind == "run":
            campaign = request.get("scenario")
            missing = "'scenario'"
        else:  # optimize takes either a single scenario or a sweep
            campaign = request.get("scenario", request.get("sweep"))
            missing = "'scenario' or 'sweep'"
        if campaign is None:
            raise _HttpError(400, f"request must carry {missing}")
        try:
            job, resubmitted = self.service.submit(
                kind,
                campaign,
                solver=request.get("solver"),
                fresh=bool(request.get("fresh", False)),
            )
        except QueueFullError as error:
            raise _HttpError(429, str(error))
        document = job.to_dict()
        document["resubmitted"] = resubmitted
        return document

    @staticmethod
    def _json_body(body: bytes) -> Dict[str, object]:
        try:
            request = json.loads(body.decode("utf-8")) if body else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise _HttpError(400, f"request body is not JSON: {error}")
        if not isinstance(request, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return request

    def _predict(self, body: bytes) -> Dict[str, object]:
        request = self._json_body(body)
        scenario = request.get("scenario")
        if scenario is None:
            raise _HttpError(400, "request must carry 'scenario'")
        threshold = request.get("exact_if_std_above")
        if threshold is not None:
            try:
                threshold = float(threshold)
            except (TypeError, ValueError):
                raise _HttpError(
                    400, "'exact_if_std_above' must be a number"
                ) from None
        try:
            return self.service.predict(
                scenario,
                exact_if_std_above=threshold,
                target=request.get("target"),
                solver=request.get("solver"),
            )
        except QueueFullError as error:
            raise _HttpError(429, str(error)) from None
        except ValueError as error:
            raise _HttpError(400, str(error)) from None

    def _fit(self, body: bytes) -> Dict[str, object]:
        request = self._json_body(body)
        job_ids = request.get("job_ids")
        if job_ids is not None and (
            not isinstance(job_ids, list)
            or not all(isinstance(item, str) for item in job_ids)
        ):
            raise _HttpError(400, "'job_ids' must be a list of job id strings")
        targets = request.get("targets")
        if targets is not None and (
            not isinstance(targets, list)
            or not all(isinstance(item, str) for item in targets)
        ):
            raise _HttpError(400, "'targets' must be a list of metric paths")
        try:
            return self.service.fit_surrogate(
                job_ids=job_ids,
                model=str(request.get("model", "gp")),
                targets=targets,
            )
        except KeyError as error:
            raise _HttpError(404, str(error).strip("'\"")) from None
        except ValueError as error:
            raise _HttpError(400, str(error)) from None

    async def _stream_records(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> None:
        records = await asyncio.to_thread(self.service.job_records, job_id)
        payload = b"".join(
            (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
            for record in records
        )
        await self._send_response(
            writer, 200, payload, "application/x-ndjson"
        )
