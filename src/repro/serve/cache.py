"""A content-addressed shared result cache: ``spec_hash -> result JSON``.

The campaign store answers "did *this campaign* already run this task?";
the result cache answers the multi-tenant question -- "did *anyone* ever
run this task?".  Keys are the campaign resume keys
(:meth:`repro.exec.base.CampaignTask.key`): a sha256 over the full
scenario spec plus the effective action and simulator family, so a hit is
by construction the exact payload the solve would have produced.

Entries are one JSON file each, fanned out over two directory levels by
hash prefix (``<root>/<aa>/<bb>/<hash>.json``) so even million-entry
caches keep directory listings small.  Writes are atomic (temp file +
``os.replace``), which makes concurrent writers from different jobs,
worker threads or processes safe: the worst case is the same content
written twice.

:meth:`repro.api.Session.run_many` consults a cache (when given one, see
the ``cache`` argument) *before any solve*, which is how the serve layer
guarantees identical queries from different clients never recompute.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Dict, Iterator, Optional, Union

__all__ = ["ResultCache"]

#: Record fields a cache entry keeps.  Everything campaign-positional
#: (index, source, executor, wall time, counters, worker pid) is stripped:
#: a cached result is shared across campaigns, so only the content-derived
#: fields may survive.
_CACHED_FIELDS = (
    "spec_hash",
    "scenario",
    "action",
    "solver",
    "spec",
    "status",
    "result",
)


def cacheable_record(record: Dict[str, object]) -> Dict[str, object]:
    """The shareable subset of a campaign record (content fields only)."""
    return {key: record[key] for key in _CACHED_FIELDS if key in record}


class ResultCache:
    """Content-addressed on-disk cache of ok campaign records.

    Parameters
    ----------
    root:
        Directory the entries live under (created lazily on first put).
    """

    #: Root-level file the cumulative gc counters persist to.  It lives
    #: outside the two-level hash fan-out, so :meth:`keys` (which only
    #: descends directories) never mistakes it for an entry.
    GC_STATS_FILE = "gc-stats.json"

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = os.fspath(root)
        self.n_hits = 0
        self.n_misses = 0
        self.n_puts = 0
        # Unlike the per-handle traffic counters above, the gc counters
        # are durable: they reload from <root>/gc-stats.json so healthz
        # keeps reporting past gc work across service restarts.
        stats = self._load_gc_stats()
        self.n_gc_runs = stats["n_gc_runs"]
        self.n_gc_removed = stats["n_gc_removed"]

    def _check_key(self, key: str) -> str:
        if not isinstance(key, str) or len(key) < 8 or not all(
            c in "0123456789abcdef" for c in key
        ):
            raise ValueError(
                f"cache keys must be lowercase hex content hashes, got {key!r}"
            )
        return key

    def path_for(self, key: str) -> str:
        """The entry file of a key: ``<root>/<aa>/<bb>/<key>.json``."""
        key = self._check_key(key)
        return os.path.join(self.root, key[:2], key[2:4], f"{key}.json")

    # -- access ------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached record for a key, or None (counted as hit/miss)."""
        try:
            with open(self.path_for(key), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.n_misses += 1
            return None
        except json.JSONDecodeError:
            # A torn entry (writer died between replace steps cannot
            # happen, but a corrupted disk can): treat as a miss -- the
            # solve re-runs and the put overwrites the bad entry.
            self.n_misses += 1
            return None
        self.n_hits += 1
        return entry

    def put(self, key: str, record: Dict[str, object]) -> None:
        """Store an ok record under its content key (atomic, idempotent).

        Only successful records are cacheable -- errors must be retried,
        not replayed to other clients.
        """
        if record.get("status") != "ok":
            raise ValueError(
                "only status='ok' records are cacheable, got "
                f"{record.get('status')!r}"
            )
        path = self.path_for(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        payload = json.dumps(cacheable_record(record), sort_keys=True)
        descriptor, temp_path = tempfile.mkstemp(
            prefix=".tmp-", suffix=".json", dir=directory
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except FileNotFoundError:
                pass
            raise
        self.n_puts += 1

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path_for(key))

    def keys(self) -> Iterator[str]:
        """Every cached key (walks the fan-out directories)."""
        if not os.path.isdir(self.root):
            return
        for level_one in sorted(os.listdir(self.root)):
            first = os.path.join(self.root, level_one)
            if not os.path.isdir(first):
                continue
            for level_two in sorted(os.listdir(first)):
                second = os.path.join(first, level_two)
                if not os.path.isdir(second):
                    continue
                for name in sorted(os.listdir(second)):
                    if name.endswith(".json") and not name.startswith("."):
                        yield name[: -len(".json")]

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # -- garbage collection -------------------------------------------------

    def gc(
        self,
        max_age_s: Optional[float] = None,
        max_entries: Optional[int] = None,
    ) -> Dict[str, int]:
        """Expire old entries and cap the cache size (both optional).

        ``max_age_s`` removes entries whose file modification time is
        older than that many seconds; ``max_entries`` then removes the
        *oldest* surviving entries until at most that many remain.
        Removal is one atomic ``os.remove`` per entry, so readers racing
        a gc see either a hit or a clean miss, never a torn file; an
        entry another process already removed is counted as gone, not an
        error.  Returns ``{"n_scanned", "n_removed", "n_kept"}``.
        """
        if max_age_s is not None and max_age_s < 0:
            raise ValueError(f"max_age_s must be >= 0, got {max_age_s}")
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        now = time.time()
        entries = []  # (mtime, path)
        n_scanned = 0
        n_removed = 0
        for key in self.keys():
            path = self.path_for(key)
            try:
                mtime = os.path.getmtime(path)
            except FileNotFoundError:
                continue  # raced another gc / writer: already gone
            n_scanned += 1
            entries.append((mtime, path))
        survivors = []
        for mtime, path in entries:
            if max_age_s is not None and now - mtime > max_age_s:
                n_removed += self._remove(path)
            else:
                survivors.append((mtime, path))
        if max_entries is not None and len(survivors) > max_entries:
            survivors.sort()  # oldest first
            excess = len(survivors) - max_entries
            for _, path in survivors[:excess]:
                n_removed += self._remove(path)
            survivors = survivors[excess:]
        self.n_gc_runs += 1
        self.n_gc_removed += n_removed
        self._save_gc_stats()
        return {
            "n_scanned": n_scanned,
            "n_removed": n_removed,
            "n_kept": len(survivors),
        }

    @staticmethod
    def _remove(path: str) -> int:
        try:
            os.remove(path)
        except FileNotFoundError:
            pass  # concurrent removal: the entry is gone either way
        return 1

    # -- durable gc counters -------------------------------------------------

    def _gc_stats_path(self) -> str:
        return os.path.join(self.root, self.GC_STATS_FILE)

    def _load_gc_stats(self) -> Dict[str, int]:
        """The persisted cumulative gc counters (zeros when absent/torn)."""
        try:
            with open(self._gc_stats_path(), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return {"n_gc_runs": 0, "n_gc_removed": 0}
        if not isinstance(payload, dict):
            return {"n_gc_runs": 0, "n_gc_removed": 0}
        return {
            "n_gc_runs": int(payload.get("n_gc_runs", 0)),
            "n_gc_removed": int(payload.get("n_gc_removed", 0)),
        }

    def _save_gc_stats(self) -> None:
        """Atomically persist the cumulative gc counters (same temp +
        ``os.replace`` discipline as entry writes)."""
        os.makedirs(self.root, exist_ok=True)
        payload = json.dumps(
            {"n_gc_runs": self.n_gc_runs, "n_gc_removed": self.n_gc_removed},
            sort_keys=True,
        )
        descriptor, temp_path = tempfile.mkstemp(
            prefix=".tmp-", suffix=".json", dir=self.root
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            os.replace(temp_path, self._gc_stats_path())
        except BaseException:
            try:
                os.unlink(temp_path)
            except FileNotFoundError:
                pass
            raise

    def stats(self) -> Dict[str, int]:
        """Counters of this cache handle.

        The traffic counters (``n_hits/n_misses/n_puts``) are per handle
        and reset on restart; the gc counters are cumulative across every
        handle that ever gc'd this root (persisted in ``gc-stats.json``).
        """
        return {
            "n_hits": self.n_hits,
            "n_misses": self.n_misses,
            "n_puts": self.n_puts,
            "n_gc_runs": self.n_gc_runs,
            "n_gc_removed": self.n_gc_removed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<ResultCache {self.root!r}>"
