"""A durable on-disk job queue: JSONL journal, crash-safe replay.

Every state transition of every job is one appended JSON line in the
journal (``queue.jsonl``)::

    {"event": "submitted", "job_id": ..., "kind": ..., "payload": ..., ...}
    {"event": "running",   "job_id": ..., "at": ...}
    {"event": "done",      "job_id": ..., "summary": {...}, "at": ...}
    {"event": "failed",    "job_id": ..., "error": "...", "at": ...}

so the queue's full state is reconstructible by folding the journal.  On
startup, :class:`JobQueue` replays it: jobs whose last event is
``running`` were in flight when the previous process died -- they are
requeued (``recovered: true``) and their campaign stores make the re-run
cheap (every record already written is resumed, not recomputed).  A torn
final line is tolerated exactly like the campaign store's; malformed
interior lines raise.

Submission is **idempotent**: jobs are keyed by a content hash over their
campaign task keys (the same sha256 resume keys the campaign store uses),
so resubmitting an identical sweep returns the existing job instead of
queuing duplicate work.  ``fresh=True`` opts out and forces a new job --
which the shared result cache then typically serves without a single
solve.  Failed jobs never satisfy resubmission (errors must be retryable).

States move ``submitted -> running -> done | failed``.  All public
methods are thread-safe; :meth:`claim` blocks (with timeout) until work
is available, so worker threads can drain the queue without polling.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["Job", "JobQueue", "QueueFullError", "JOB_STATES"]

#: The lifecycle states a job moves through.
JOB_STATES = ("submitted", "running", "done", "failed")

#: Journal events and the states they put a job into.
_EVENT_STATE = {
    "submitted": "submitted",
    "running": "running",
    "done": "done",
    "failed": "failed",
}


class QueueFullError(RuntimeError):
    """Raised by :meth:`JobQueue.submit` when ``max_pending`` is reached.

    The HTTP layer maps this to 429 so clients can back off and retry;
    idempotent resubmissions of existing jobs never raise it (they queue
    no new work).
    """


def job_hash(kind: str, task_keys: List[str]) -> str:
    """Content hash identifying a job's work (the resubmission key).

    Built from the campaign task keys -- the same spec/action/solver
    hashes the campaign store resumes on -- so two submissions that expand
    to the same work hash identically whatever surface form (registered
    name, inline spec, sweep file) they were submitted in.
    """
    canonical = json.dumps(
        {"kind": kind, "tasks": list(task_keys)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class Job:
    """One queued unit of service work: a campaign plus its lifecycle.

    Attributes
    ----------
    job_id:
        Short unique id (a prefix of :attr:`hash`, suffixed on forced
        resubmission).
    kind:
        ``"run"``, ``"sweep"`` or ``"optimize"`` -- which endpoint
        submitted it (run/sweep both simulate; optimize runs the design
        flow).
    payload:
        The campaign input exactly as submitted (scenario mapping or
        name, or sweep mapping).
    options:
        Submission options (currently ``solver``).
    hash:
        The idempotency key (see :func:`job_hash`).
    n_total:
        Number of scenarios the campaign expands to (known at submission:
        payloads are validated and expanded before queueing).
    state / error / summary:
        Lifecycle state, the failure message (``failed`` only) and the
        campaign summary (``done`` only).
    progress:
        Live in-memory progress (fresh records completed so far); not
        journaled -- a recovered job recomputes it from its store.
    recovered:
        True when the job was requeued by journal replay after a crash.
    """

    job_id: str
    kind: str
    payload: object
    options: Dict[str, object]
    hash: str
    n_total: int
    state: str = "submitted"
    error: Optional[str] = None
    summary: Optional[Dict[str, object]] = None
    progress: Dict[str, object] = field(default_factory=dict)
    recovered: bool = False
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible representation (what ``GET /v1/jobs/<id>`` shows)."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "hash": self.hash,
            "n_total": self.n_total,
            "options": dict(self.options),
            "error": self.error,
            "summary": self.summary,
            "progress": dict(self.progress),
            "recovered": self.recovered,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


class JobQueue:
    """Durable FIFO job queue journaled to one JSONL file."""

    def __init__(
        self,
        path: Union[str, os.PathLike],
        max_pending: Optional[int] = None,
    ) -> None:
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.path = os.fspath(path)
        self.max_pending = max_pending
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._pending: List[str] = []
        self._handle = None
        self.n_recovered = 0
        self.n_rejected = 0
        self._replay()

    # -- journal -----------------------------------------------------------

    def _replay(self) -> None:
        """Rebuild queue state by folding the journal (crash-safe).

        Jobs whose last event is ``running`` are requeued as
        ``submitted`` with ``recovered=True``, preserving original
        submission order relative to still-pending jobs.
        """
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines):
                    continue  # torn final line from a dying process
                raise ValueError(
                    f"{self.path}:{number}: malformed queue journal line"
                ) from None
            if not isinstance(event, dict) or "event" not in event:
                raise ValueError(
                    f"{self.path}:{number}: journal lines must be JSON "
                    "objects with an 'event' key"
                )
            self._apply(event, f"{self.path}:{number}")
        for job_id, job in self._jobs.items():
            if job.state == "running":
                job.state = "submitted"
                job.recovered = True
                self.n_recovered += 1
                self._pending.append(job_id)
        # Requeue in original submission order.
        self._pending.sort(key=lambda jid: self._jobs[jid].submitted_at)

    def _apply(self, event: Dict[str, object], where: str) -> None:
        """Fold one journal event into the in-memory state."""
        name = event.get("event")
        if name not in _EVENT_STATE:
            raise ValueError(f"{where}: unknown queue journal event {name!r}")
        job_id = event.get("job_id")
        if name == "submitted":
            job = Job(
                job_id=job_id,
                kind=event.get("kind", "run"),
                payload=event.get("payload"),
                options=dict(event.get("options") or {}),
                hash=event.get("hash", ""),
                n_total=int(event.get("n_total", 0)),
                submitted_at=float(event.get("at", 0.0)),
            )
            self._jobs[job.job_id] = job
            self._pending.append(job.job_id)
            return
        job = self._jobs.get(job_id)
        if job is None:
            raise ValueError(f"{where}: event for unknown job {job_id!r}")
        job.state = _EVENT_STATE[name]
        if name == "running":
            job.started_at = float(event.get("at", 0.0))
            if job_id in self._pending:
                self._pending.remove(job_id)
        elif name == "done":
            job.summary = event.get("summary")
            job.finished_at = float(event.get("at", 0.0))
        elif name == "failed":
            job.error = str(event.get("error"))
            job.finished_at = float(event.get("at", 0.0))

    def _append(self, event: Dict[str, object]) -> None:
        """Append one journal event and flush (caller holds the lock)."""
        if self._handle is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._heal_tail()
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()

    def _heal_tail(self) -> None:
        """Truncate a torn final journal line before the first append."""
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return
        if not data or data.endswith(b"\n"):
            return
        tail = data[data.rfind(b"\n") + 1:]
        with open(self.path, "r+b") as handle:
            try:
                json.loads(tail.decode("utf-8"))
                handle.seek(0, os.SEEK_END)
                handle.write(b"\n")
            except (UnicodeDecodeError, json.JSONDecodeError):
                handle.truncate(len(data) - len(tail))

    # -- submission --------------------------------------------------------

    def submit(
        self,
        kind: str,
        payload: object,
        *,
        task_keys: List[str],
        options: Optional[Dict[str, object]] = None,
        fresh: bool = False,
    ) -> Tuple[Job, bool]:
        """Queue a job (idempotent); returns ``(job, resubmitted)``.

        ``resubmitted`` is True when an existing non-failed job with the
        same content hash satisfied the submission.  ``fresh=True`` always
        creates a new job (a forced re-run -- typically served from the
        shared result cache).

        When the queue was built with ``max_pending``, a submission that
        would queue *new* work while that many jobs are already pending
        raises :class:`QueueFullError` (backpressure).  Idempotent
        resubmissions are exempt -- they add nothing to the backlog -- and
        journal replay ignores the cap (recovered work is never dropped).
        """
        options = dict(options or {})
        content = job_hash(kind, task_keys)
        with self._work:
            if not fresh:
                for job in self._jobs.values():
                    if job.hash == content and job.state != "failed":
                        return job, True
            if (
                self.max_pending is not None
                and len(self._pending) >= self.max_pending
            ):
                self.n_rejected += 1
                raise QueueFullError(
                    f"job queue is full: {len(self._pending)} pending jobs "
                    f"(max_pending={self.max_pending}); retry once the "
                    "backlog drains"
                )
            job_id = content[:12]
            suffix = 1
            while job_id in self._jobs:
                suffix += 1
                job_id = f"{content[:12]}-r{suffix}"
            job = Job(
                job_id=job_id,
                kind=kind,
                payload=payload,
                options=options,
                hash=content,
                n_total=len(task_keys),
                submitted_at=time.time(),
            )
            self._append(
                {
                    "event": "submitted",
                    "job_id": job.job_id,
                    "kind": job.kind,
                    "payload": job.payload,
                    "options": job.options,
                    "hash": job.hash,
                    "n_total": job.n_total,
                    "at": job.submitted_at,
                }
            )
            self._jobs[job.job_id] = job
            self._pending.append(job.job_id)
            self._work.notify()
            return job, False

    # -- worker side -------------------------------------------------------

    def claim(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the oldest pending job and mark it running (blocking).

        Returns None when ``timeout`` elapses with nothing to do, so
        worker loops can check their stop flag between waits.
        """
        with self._work:
            if not self._pending:
                self._work.wait(timeout)
            if not self._pending:
                return None
            job = self._jobs[self._pending.pop(0)]
            job.state = "running"
            job.started_at = time.time()
            self._append(
                {"event": "running", "job_id": job.job_id, "at": job.started_at}
            )
            return job

    def mark_done(self, job_id: str, summary: Dict[str, object]) -> None:
        """Transition a running job to ``done`` with its campaign summary."""
        with self._work:
            job = self._require(job_id)
            job.state = "done"
            job.summary = summary
            job.finished_at = time.time()
            self._append(
                {
                    "event": "done",
                    "job_id": job_id,
                    "summary": summary,
                    "at": job.finished_at,
                }
            )

    def mark_failed(self, job_id: str, error: str) -> None:
        """Transition a running job to ``failed`` with its error message."""
        with self._work:
            job = self._require(job_id)
            job.state = "failed"
            job.error = error
            job.finished_at = time.time()
            self._append(
                {
                    "event": "failed",
                    "job_id": job_id,
                    "error": error,
                    "at": job.finished_at,
                }
            )

    def update_progress(self, job_id: str, **progress: object) -> None:
        """Merge live progress counters into a job (in memory only)."""
        with self._lock:
            self._require(job_id).progress.update(progress)

    # -- introspection -----------------------------------------------------

    def _require(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"no job {job_id!r} in queue {self.path!r}") from None

    def get(self, job_id: str) -> Job:
        """The job with this id (KeyError when unknown)."""
        with self._lock:
            return self._require(job_id)

    def jobs(self) -> List[Job]:
        """Every known job, oldest submission first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.submitted_at)

    def counts(self) -> Dict[str, int]:
        """Job counts per lifecycle state."""
        with self._lock:
            counts = dict.fromkeys(JOB_STATES, 0)
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts

    def notify_all(self) -> None:
        """Wake every blocked :meth:`claim` (used by supervisor shutdown)."""
        with self._work:
            self._work.notify_all()

    def close(self) -> None:
        """Close the journal handle (idempotent; reopened lazily on append)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<JobQueue {self.path!r} ({len(self._jobs)} jobs)>"
