"""A small HTTP client for the campaign service (stdlib ``http.client``).

Used by the ``repro submit`` / ``repro jobs`` CLI commands and by the
end-to-end tests, so the service is always exercised through real HTTP
rather than in-process shortcuts.  Errors come back as
:class:`ServiceError` carrying the HTTP status and the server's
``{"error": ...}`` message.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

__all__ = ["ServiceClient", "ServiceError", "ServiceConnectionError"]


class ServiceError(ValueError):
    """An HTTP error from the service (carries ``status`` and message)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceConnectionError(ValueError):
    """The service could not be reached (connection, timeout, protocol).

    A ``ValueError`` so the CLI's standard error path renders it as a
    one-line ``error: ...`` message with exit code 2 instead of dumping a
    raw ``ConnectionRefusedError`` (or ``http.client``-protocol) traceback
    at the user when the server is down or mid-restart.
    """

    def __init__(self, url: str, reason: BaseException) -> None:
        detail = str(reason).strip() or type(reason).__name__
        super().__init__(f"cannot reach the campaign service at {url}: {detail}")
        self.url = url
        self.reason = reason


class ServiceClient:
    """Talk to a :class:`~repro.serve.server.CampaignServer` at a URL."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(
                f"only http:// service URLs are supported, got {url!r}"
            )
        if not parts.hostname:
            raise ValueError(f"service URL has no host: {url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
    ) -> Tuple[int, str, bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
            content_type = response.getheader("Content-Type", "")
            return response.status, content_type, data
        except (OSError, http.client.HTTPException) as error:
            # OSError covers refused/reset connections and socket timeouts;
            # HTTPException (NOT an OSError) covers a server dying
            # mid-response.  Both become the CLI-friendly one-liner.
            raise ServiceConnectionError(self.url, error) from error
        finally:
            connection.close()

    def _json(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        status, _content_type, data = self._request(method, path, payload)
        try:
            document = json.loads(data.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            document = {"error": data.decode("utf-8", "replace").strip()}
        if status >= 400:
            raise ServiceError(status, str(document.get("error", "unknown")))
        return document

    # -- reads -------------------------------------------------------------

    def healthz(self) -> Dict[str, object]:
        return self._json("GET", "/v1/healthz")

    def scenarios(self) -> List[Dict[str, object]]:
        return self._json("GET", "/v1/scenarios")["scenarios"]

    def jobs(self) -> List[Dict[str, object]]:
        return self._json("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, object]:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def records(self, job_id: str) -> List[Dict[str, object]]:
        """The job's stored records (parses the NDJSON stream)."""
        status, _content_type, data = self._request(
            "GET", f"/v1/jobs/{job_id}/records"
        )
        if status >= 400:
            try:
                message = json.loads(data.decode("utf-8")).get("error", "")
            except (json.JSONDecodeError, UnicodeDecodeError):
                message = data.decode("utf-8", "replace").strip()
            raise ServiceError(status, str(message))
        return [
            json.loads(line)
            for line in data.decode("utf-8").splitlines()
            if line.strip()
        ]

    # -- submissions -------------------------------------------------------

    def submit_run(
        self,
        scenario: object,
        solver: Optional[str] = None,
        fresh: bool = False,
    ) -> Dict[str, object]:
        payload: Dict[str, object] = {"scenario": scenario, "fresh": fresh}
        if solver is not None:
            payload["solver"] = solver
        return self._json("POST", "/v1/run", payload)

    def submit_sweep(
        self, sweep: object, fresh: bool = False
    ) -> Dict[str, object]:
        return self._json("POST", "/v1/sweep", {"sweep": sweep, "fresh": fresh})

    def submit_optimize(
        self, campaign: object, fresh: bool = False
    ) -> Dict[str, object]:
        return self._json(
            "POST", "/v1/optimize", {"scenario": campaign, "fresh": fresh}
        )

    # -- surrogate serving -------------------------------------------------

    def predict(
        self,
        scenario: object,
        exact_if_std_above: Optional[float] = None,
        target: Optional[str] = None,
        solver: Optional[str] = None,
    ) -> Dict[str, object]:
        """``POST /v1/predict``: a surrogate answer or an exact fallback job."""
        payload: Dict[str, object] = {"scenario": scenario}
        if exact_if_std_above is not None:
            payload["exact_if_std_above"] = exact_if_std_above
        if target is not None:
            payload["target"] = target
        if solver is not None:
            payload["solver"] = solver
        return self._json("POST", "/v1/predict", payload)

    def fit(
        self,
        job_ids: Optional[List[str]] = None,
        model: str = "gp",
        targets: Optional[List[str]] = None,
    ) -> Dict[str, object]:
        """``POST /v1/ml/fit``: (re)train the serving surrogate."""
        payload: Dict[str, object] = {"model": model}
        if job_ids is not None:
            payload["job_ids"] = job_ids
        if targets is not None:
            payload["targets"] = targets
        return self._json("POST", "/v1/ml/fit", payload)

    # -- polling -----------------------------------------------------------

    def wait(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll_s: float = 0.1,
    ) -> Dict[str, object]:
        """Poll a job until it is done/failed; returns the final detail."""
        deadline = time.monotonic() + timeout
        while True:
            detail = self.job(job_id)
            if detail["state"] in ("done", "failed"):
                return detail
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {detail['state']!r} after {timeout}s"
                )
            time.sleep(poll_s)
