"""The worker-pool supervisor that drains the durable job queue.

A :class:`WorkerSupervisor` owns ``pool_size`` daemon threads, each
looping claim → run → mark done/failed against one
:class:`~repro.serve.service.CampaignService`.  Parallelism *within* a
job comes from the campaign executor the service was configured with
(``process`` scales past the GIL); the pool size only controls how many
jobs are in flight at once, so a single supervisor thread is the right
default for a small box.

Job failures are contained: an exception from ``run_job`` marks that job
failed (with the exception text in the journal) and the worker moves on.
Only claim/mark bookkeeping errors stop a worker, and those are logged
to stderr rather than silently swallowed.
"""

from __future__ import annotations

import sys
import threading
import traceback
from typing import List

__all__ = ["WorkerSupervisor"]


class WorkerSupervisor:
    """Drains ``service.queue`` through ``service.run_job`` on threads."""

    #: Seconds a worker blocks in ``claim`` before re-checking shutdown.
    CLAIM_TIMEOUT_S = 0.25

    def __init__(self, service, pool_size: int = 1) -> None:
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        self.service = service
        self.pool_size = int(pool_size)
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()

    @property
    def running(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    def start(self) -> "WorkerSupervisor":
        """Start the pool (idempotent while running)."""
        if self.running:
            return self
        self._stop.clear()
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            for index in range(self.pool_size)
        ]
        for thread in self._threads:
            thread.start()
        return self

    def stop(self, join: bool = True) -> None:
        """Signal the pool to stop; with ``join``, wait for in-flight jobs."""
        self._stop.set()
        self.service.queue.notify_all()
        if join:
            for thread in self._threads:
                thread.join()
        self._threads = []

    def _worker_loop(self) -> None:
        queue = self.service.queue
        while not self._stop.is_set():
            try:
                job = queue.claim(timeout=self.CLAIM_TIMEOUT_S)
            except Exception:  # journal trouble: stop this worker loudly
                traceback.print_exc(file=sys.stderr)
                return
            if job is None:
                continue
            try:
                summary = self.service.run_job(job)
            except Exception as error:
                queue.mark_failed(
                    job.job_id, f"{type(error).__name__}: {error}"
                )
            else:
                queue.mark_done(job.job_id, summary)
