"""The campaign service: queue + workers + sharded stores + shared cache.

:class:`CampaignService` is the transport-free core of ``repro serve``:
the HTTP front door (:mod:`repro.serve.server`) is a thin adapter over it,
and tests drive it directly.  It owns one data directory::

    <data_dir>/
      queue.jsonl                      durable job journal (JobQueue)
      cache/<aa>/<bb>/<hash>.json      shared result cache (ResultCache)
      jobs/<job_id>/campaign.jsonl.d/  sharded per-job campaign store
      models/<digest>/model.pkl        content-addressed surrogate bundles

Submissions are validated eagerly (the campaign is expanded to scenario
specs before anything is queued, so a bad spec is a 400 at submit time,
not a failed job later), deduplicated by content hash (see
:meth:`JobQueue.submit`), and drained by a :class:`WorkerSupervisor`
through :meth:`repro.api.Session.run_many` -- the exact code path batch
campaigns use, so service results are bit-identical to offline runs.
Every job consults the shared result cache before solving and feeds it
afterwards, so identical queries from different clients (or forced
re-runs of a finished job) never recompute.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..api import Session
from ..campaign import CampaignStore
from ..exec import available_executors
from ..exec.base import make_tasks
from ..ml.dataset import DEFAULT_TARGETS, build_dataset
from ..ml.models import load_model, make_surrogate, save_model
from ..scenarios import SCENARIOS, resolve_scenario
from ..sweeps import resolve_campaign
from .cache import ResultCache
from .queue import Job, JobQueue
from .workers import WorkerSupervisor

__all__ = ["CampaignService"]

#: Endpoint kinds and the campaign action each runs.
_KIND_ACTION = {"run": "run", "sweep": "run", "optimize": "optimize"}


class CampaignService:
    """Long-running multi-tenant campaign service over one data directory.

    Parameters
    ----------
    data_dir:
        Where the journal, cache and per-job stores live (created).
    executor / workers:
        The campaign executor jobs run under (any registered name;
        ``"process"`` is the one that scales past the GIL) and its worker
        count.
    pool_size:
        How many jobs run concurrently (supervisor threads).
    max_pending:
        Backpressure cap on *pending* (queued, not yet running) jobs;
        submissions of new work beyond it raise
        :class:`~repro.serve.queue.QueueFullError` (HTTP 429 at the
        front door).  None (default) keeps the queue unbounded.
    session:
        Optional shared :class:`~repro.api.Session`; by default the
        service builds one, so in-process executors share solution caches
        across jobs.
    """

    def __init__(
        self,
        data_dir: str,
        *,
        executor: str = "process",
        workers: int = 2,
        pool_size: int = 1,
        max_pending: Optional[int] = None,
        session: Optional[Session] = None,
    ) -> None:
        if executor not in available_executors():
            raise ValueError(
                f"unknown executor {executor!r}; available: "
                f"{available_executors()}"
            )
        self.data_dir = os.fspath(data_dir)
        os.makedirs(self.data_dir, exist_ok=True)
        self.executor = executor
        self.workers = int(workers)
        self.queue = JobQueue(
            os.path.join(self.data_dir, "queue.jsonl"),
            max_pending=max_pending,
        )
        self.cache = ResultCache(os.path.join(self.data_dir, "cache"))
        self.session = session or Session()
        self.supervisor = WorkerSupervisor(self, pool_size=pool_size)
        self.started_at = time.time()
        # Surrogate serving state: the model dir persists across
        # restarts, the in-memory handle loads lazily on first use.
        self.ml_dir = os.path.join(self.data_dir, "models")
        self._surrogate = None
        self._model_id: Optional[str] = None
        self._ml_lock = threading.Lock()
        self.n_surrogate_fits = 0
        self.n_surrogate_predictions = 0
        self.n_exact_fallbacks = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "CampaignService":
        """Start draining the queue (recovered jobs resume immediately)."""
        self.supervisor.start()
        return self

    def stop(self, join: bool = True) -> None:
        """Stop the workers and close the journal (idempotent)."""
        self.supervisor.stop(join=join)
        self.queue.close()

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- submission --------------------------------------------------------

    def submit(
        self,
        kind: str,
        campaign,
        *,
        solver: Optional[str] = None,
        fresh: bool = False,
    ) -> Tuple[Job, bool]:
        """Validate, deduplicate and queue a campaign; ``(job, resubmitted)``.

        ``kind`` is ``"run"`` / ``"sweep"`` / ``"optimize"`` (the three
        submission endpoints); ``campaign`` is anything
        :func:`repro.sweeps.resolve_campaign` accepts in its serialized
        form (a registered scenario name, a scenario mapping, or a sweep
        mapping).  Expansion happens *now*, so invalid specs raise
        ``ValueError`` here instead of failing the job later.
        """
        if kind not in _KIND_ACTION:
            raise ValueError(
                f"job kind must be one of {sorted(_KIND_ACTION)}, got {kind!r}"
            )
        action = _KIND_ACTION[kind]
        _, specs = resolve_campaign(campaign)
        if kind == "run" and len(specs) != 1:
            raise ValueError(
                f"'run' jobs take exactly one scenario, got {len(specs)}; "
                "submit families via the sweep endpoint"
            )
        tasks = make_tasks(specs, action=action, solver=solver)
        options: Dict[str, object] = {}
        if solver is not None:
            options["solver"] = solver
        return self.queue.submit(
            kind,
            campaign,
            task_keys=[task.key() for task in tasks],
            options=options,
            fresh=fresh,
        )

    # -- job execution (called from supervisor threads) --------------------

    def job_store(self, job_id: str) -> CampaignStore:
        """The sharded campaign store of one job."""
        return CampaignStore(
            os.path.join(self.data_dir, "jobs", job_id, "campaign.jsonl"),
            sharded=True,
        )

    def run_job(self, job: Job) -> Dict[str, object]:
        """Run one claimed job to completion and return its summary.

        Exceptions propagate to the supervisor, which marks the job
        failed; per-scenario errors do *not* raise -- they become error
        records in the job's store, visible in the summary.
        """
        self.queue.update_progress(job.job_id, n_total=job.n_total, n_done=0)
        done = {"count": 0}

        def progress(record: Dict[str, object]) -> None:
            done["count"] += 1
            self.queue.update_progress(job.job_id, n_done=done["count"])

        campaign = self.session.run_many(
            job.payload,
            executor=self.executor,
            workers=self.workers,
            solver=job.options.get("solver"),
            out=self.job_store(job.job_id),
            cache=self.cache,
            action=_KIND_ACTION[job.kind],
            progress=progress,
        )
        summary = campaign.summary()
        summary["job_id"] = job.job_id
        return summary

    # -- surrogate serving -------------------------------------------------

    def _job_ids(self) -> List[str]:
        """Every job id with a store on disk, oldest submission first."""
        jobs = sorted(self.queue.jobs(), key=lambda job: job.submitted_at)
        return [job.job_id for job in jobs]

    def fit_surrogate(
        self,
        job_ids: Optional[List[str]] = None,
        model: str = "gp",
        targets: Optional[List[str]] = None,
    ) -> Dict[str, object]:
        """Fit (and persist) a surrogate on stored job records.

        ``job_ids=None`` trains on every job the queue knows about --
        the whole data directory is one growing dataset.  The fitted
        model is saved to the content-addressed model dir and becomes
        the serving model immediately.
        """
        ids = job_ids if job_ids is not None else self._job_ids()
        for job_id in ids:
            self.queue.get(job_id)  # 404 on unknown ids before any I/O
        records = itertools.chain.from_iterable(
            self.job_store(job_id).iter_records() for job_id in ids
        )
        dataset = build_dataset(
            records, targets=tuple(targets or DEFAULT_TARGETS)
        )
        surrogate = make_surrogate(model).fit(dataset)
        with self._ml_lock:
            model_id = save_model(surrogate, self.ml_dir)
            self._surrogate = surrogate
            self._model_id = model_id
            self.n_surrogate_fits += 1
        payload = surrogate.describe()
        payload["model_id"] = model_id
        payload["dataset"] = dataset.summary()
        payload["job_ids"] = list(ids)
        return payload

    def _serving_model(self):
        """The in-memory surrogate, loading the persisted latest lazily."""
        with self._ml_lock:
            if self._surrogate is None:
                try:
                    with open(
                        os.path.join(self.ml_dir, "latest.json"),
                        "r",
                        encoding="utf-8",
                    ) as handle:
                        self._model_id = str(json.load(handle)["model_id"])
                    self._surrogate = load_model(self.ml_dir, self._model_id)
                except FileNotFoundError:
                    raise ValueError(
                        "no surrogate has been fitted yet; POST /v1/ml/fit "
                        "(or run 'repro ml fit') after a campaign completes"
                    ) from None
            return self._surrogate, self._model_id

    def predict(
        self,
        scenario,
        *,
        exact_if_std_above: Optional[float] = None,
        target: Optional[str] = None,
        solver: Optional[str] = None,
    ) -> Dict[str, object]:
        """Answer a scenario query from the surrogate, or fall through.

        Returns ``{"source": "surrogate", "mean": {...}, "std": {...}}``
        keyed per target when the model is confident.  When
        ``exact_if_std_above`` is given and the gating target's
        predictive std exceeds it, the query instead becomes an ordinary
        exact job (``{"source": "exact", "job": {...}}``) -- the same
        submission path as ``POST /v1/run``, so the answer lands in the
        job store, feeds the shared cache, and grows the surrogate's next
        training set.
        """
        spec = resolve_scenario(scenario)
        surrogate, model_id = self._serving_model()
        if target is None:
            gate_target = surrogate.targets[0]
        elif target in surrogate.targets:
            gate_target = target
        else:
            raise ValueError(
                f"model has no target {target!r}; it predicts "
                f"{list(surrogate.targets)}"
            )
        mean, std = surrogate.predict_specs([spec])
        means = {
            name: float(mean[0, i]) for i, name in enumerate(surrogate.targets)
        }
        stds = {
            name: float(std[0, i]) for i, name in enumerate(surrogate.targets)
        }
        gate_std = stds[gate_target]
        if exact_if_std_above is not None and gate_std > exact_if_std_above:
            with self._ml_lock:
                self.n_exact_fallbacks += 1
            job, resubmitted = self.submit(
                "run", spec.to_dict(), solver=solver
            )
            document = job.to_dict()
            document["resubmitted"] = resubmitted
            return {
                "source": "exact",
                "scenario": spec.name,
                "target": gate_target,
                "std": gate_std,
                "exact_if_std_above": exact_if_std_above,
                "job": document,
            }
        with self._ml_lock:
            self.n_surrogate_predictions += 1
        return {
            "source": "surrogate",
            "scenario": spec.name,
            "target": gate_target,
            "mean": means,
            "std": stds,
            "model_id": model_id,
            "exact_if_std_above": exact_if_std_above,
        }

    def ml_stats(self) -> Dict[str, object]:
        """Surrogate counters + serving-model identity (for healthz)."""
        with self._ml_lock:
            return {
                "n_surrogate_fits": self.n_surrogate_fits,
                "n_surrogate_predictions": self.n_surrogate_predictions,
                "n_exact_fallbacks": self.n_exact_fallbacks,
                "model_id": self._model_id,
                "targets": (
                    list(self._surrogate.targets)
                    if self._surrogate is not None
                    else []
                ),
            }

    # -- introspection -----------------------------------------------------

    def job_detail(self, job_id: str) -> Dict[str, object]:
        """Job state plus store-level record counts (``GET /v1/jobs/<id>``)."""
        detail = self.queue.get(job_id).to_dict()
        records = self.job_records(job_id)
        detail["n_records"] = len(records)
        detail["n_ok"] = sum(1 for r in records if r.get("status") == "ok")
        detail["n_failed"] = sum(
            1 for r in records if r.get("status") == "error"
        )
        return detail

    def job_records(self, job_id: str) -> List[Dict[str, object]]:
        """The stored records of a job so far, in sweep (index) order."""
        self.queue.get(job_id)  # 404 on unknown jobs, even before any record
        records = list(self.job_store(job_id).iter_records())
        records.sort(key=lambda record: record.get("index", 0))
        return records

    def scenario_rows(self) -> List[Dict[str, object]]:
        """The registered scenarios (``GET /v1/scenarios``)."""
        return [
            {
                "name": spec.name,
                "workload": spec.workload.kind,
                "simulator": spec.solver.simulator,
                "transient": spec.transient is not None,
                "description": spec.description,
            }
            for spec in SCENARIOS.values()
        ]

    def healthz(self) -> Dict[str, object]:
        """Service liveness + queue/cache statistics (``GET /v1/healthz``)."""
        return {
            "status": "ok",
            "uptime_s": time.time() - self.started_at,
            "data_dir": self.data_dir,
            "executor": self.executor,
            "workers": self.workers,
            "pool_size": self.supervisor.pool_size,
            "jobs": self.queue.counts(),
            "n_recovered": self.queue.n_recovered,
            "max_pending": self.queue.max_pending,
            "n_rejected": self.queue.n_rejected,
            "cache": self.cache.stats(),
            "ml": self.ml_stats(),
            "n_scenarios_registered": len(SCENARIOS),
        }
