"""``repro.serve`` -- the long-running campaign service.

The batch campaign layer (``repro.exec`` + ``repro.campaign``) turned
scenario specs into frozen, hashable, JSON-round-trippable work units;
this package puts a service in front of them:

- :class:`JobQueue` (``queue.py``): durable JSONL job journal with
  crash-safe replay and content-hash idempotent resubmission.
- :class:`ResultCache` (``cache.py``): content-addressed shared result
  cache consulted before any solve.
- :class:`WorkerSupervisor` (``workers.py``): worker pool draining the
  queue through the registered campaign executors.
- :class:`CampaignService` (``service.py``): the transport-free core
  tying queue + cache + workers + sharded per-job campaign stores to one
  data directory.
- :class:`CampaignServer` (``server.py``): the asyncio HTTP/1.1 front
  door (``repro serve``).
- :class:`ServiceClient` (``client.py``): the stdlib HTTP client used by
  ``repro submit`` / ``repro jobs`` and the tests.
"""

from .cache import ResultCache, cacheable_record
from .client import ServiceClient, ServiceConnectionError, ServiceError
from .queue import JOB_STATES, Job, JobQueue, QueueFullError, job_hash
from .server import CampaignServer
from .service import CampaignService
from .workers import WorkerSupervisor

__all__ = [
    "CampaignServer",
    "CampaignService",
    "Job",
    "JobQueue",
    "JOB_STATES",
    "QueueFullError",
    "ResultCache",
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceError",
    "WorkerSupervisor",
    "cacheable_record",
    "job_hash",
]
