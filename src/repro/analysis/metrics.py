"""Thermal metrics used throughout the paper's evaluation.

All metrics work on either :class:`~repro.thermal.solution.ThermalSolution`
objects (analytical / finite-difference solvers) or plain temperature arrays
(the finite-volume simulator maps), so the benchmarks can report the same
numbers regardless of which substrate produced them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Union

import numpy as np

from ..thermal.solution import ThermalSolution

__all__ = [
    "thermal_gradient",
    "peak_temperature",
    "gradient_reduction",
    "spatial_gradient_magnitude",
    "thermal_stress_proxy",
    "kelvin_to_celsius",
    "summarize_designs",
    "time_above_threshold",
    "thermal_cycling_amplitude",
    "piecewise_integral",
]

TemperatureField = Union[ThermalSolution, np.ndarray]


def _as_array(field: TemperatureField) -> np.ndarray:
    if isinstance(field, ThermalSolution):
        return field.temperatures
    return np.asarray(field, dtype=float)


def thermal_gradient(field: TemperatureField) -> float:
    """Max - min temperature over the field (K) -- the paper's gradient metric."""
    values = _as_array(field)
    return float(np.max(values) - np.min(values))


def peak_temperature(field: TemperatureField) -> float:
    """Maximum temperature of the field (K)."""
    return float(np.max(_as_array(field)))


def gradient_reduction(reference: TemperatureField, optimized: TemperatureField) -> float:
    """Fractional gradient reduction of ``optimized`` versus ``reference``.

    The paper's headline figure of merit: 0.31 for the 3D-MPSoC at peak
    power, about 0.32 for the single-channel tests.
    """
    ref = thermal_gradient(reference)
    if ref == 0.0:
        return 0.0
    return 1.0 - thermal_gradient(optimized) / ref


def spatial_gradient_magnitude(
    temperature_map: np.ndarray, cell_length: float, cell_width: float
) -> np.ndarray:
    """Pointwise ``|grad T|`` (K/m) of a 2-D thermal map.

    Used on finite-volume maps to locate where on the die the strongest
    gradients (and hence thermo-mechanical stresses) occur.
    """
    temperature_map = np.asarray(temperature_map, dtype=float)
    if temperature_map.ndim != 2:
        raise ValueError("temperature_map must be a 2-D array")
    if cell_length <= 0.0 or cell_width <= 0.0:
        raise ValueError("cell dimensions must be positive")
    d_dy, d_dx = np.gradient(temperature_map, cell_width, cell_length)
    return np.sqrt(d_dx**2 + d_dy**2)


def thermal_stress_proxy(
    temperature_map: np.ndarray, cell_length: float, cell_width: float
) -> float:
    """A scalar proxy for thermally-induced stress: mean ``|grad T|`` (K/m).

    The paper motivates gradient minimization by the uneven thermal stresses
    that gradients induce (Sec. I); this proxy lets the benchmarks report a
    stress-flavoured number alongside the max-min gradient.
    """
    return float(
        np.mean(spatial_gradient_magnitude(temperature_map, cell_length, cell_width))
    )


def kelvin_to_celsius(value: Union[float, np.ndarray]):
    """Convert Kelvin to degrees Celsius."""
    return np.asarray(value, dtype=float) - 273.15 if np.ndim(value) else value - 273.15


def time_above_threshold(
    times: np.ndarray, values: np.ndarray, threshold: float
) -> float:
    """Total time a step-wise temperature series spends above ``threshold``.

    ``values[i]`` is the state reached at ``times[i]`` (a backward-Euler
    trajectory): it is attributed to the step interval ``(times[i-1],
    times[i]]``, so the initial condition at ``times[0]`` contributes no
    time.  Used for the reliability-flavoured time-above-threshold metric
    of transient campaign records.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.shape != values.shape:
        raise ValueError(
            f"times and values must have matching shapes, got "
            f"{times.shape} vs {values.shape}"
        )
    if times.size < 2:
        return 0.0
    intervals = np.diff(times)
    if np.any(intervals <= 0.0):
        # A shuffled or duplicated time axis would silently add negative
        # (or zero-width) step intervals to the total.
        raise ValueError("times must be strictly increasing")
    return float(np.sum(intervals[values[1:] > threshold]))


def thermal_cycling_amplitude(
    values: np.ndarray, warmup_fraction: float = 0.5
) -> float:
    """Peak-to-valley swing (K) of a temperature series after warm-up.

    Thermal cycling -- the repeated expansion/contraction that drives
    fatigue -- is measured on the settled part of the trace: the first
    ``warmup_fraction`` of the samples (the heat-up from the initial
    condition) is discarded and the max-min swing of the remainder is
    returned.  For a converged steady workload this is ~0; for a duty-cycled
    trace it is the steady oscillation amplitude.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
        )
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return 0.0
    window = values[int(values.size * warmup_fraction):]
    return float(np.max(window) - np.min(window))


def piecewise_integral(
    times: np.ndarray, values: np.ndarray, end_time: float
) -> float:
    """Integral of a piecewise-constant series over ``[times[0], end_time]``.

    ``values[i]`` holds from ``times[i]`` until ``times[i+1]`` (the last
    value holds until ``end_time``).  Used to integrate pumping power over
    a transient run's flow-scale schedule into pumping energy (J).
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.shape != values.shape or times.size == 0:
        raise ValueError(
            "times and values must be non-empty with matching shapes, got "
            f"{times.shape} vs {values.shape}"
        )
    if np.any(np.diff(times) <= 0.0):
        raise ValueError("times must increase strictly")
    if end_time < times[-1]:
        raise ValueError(
            f"end_time {end_time} precedes the last breakpoint {times[-1]}"
        )
    edges = np.append(times, float(end_time))
    return float(np.sum(values * np.diff(edges)))


def summarize_designs(designs: Iterable) -> Dict[str, Dict[str, float]]:
    """Summaries of a collection of ``DesignEvaluation`` objects, keyed by label."""
    out: Dict[str, Dict[str, float]] = {}
    for design in designs:
        summary = design.summary()
        out[str(summary.pop("label"))] = summary
    return out
