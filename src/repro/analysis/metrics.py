"""Thermal metrics used throughout the paper's evaluation.

All metrics work on either :class:`~repro.thermal.solution.ThermalSolution`
objects (analytical / finite-difference solvers) or plain temperature arrays
(the finite-volume simulator maps), so the benchmarks can report the same
numbers regardless of which substrate produced them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Union

import numpy as np

from ..thermal.solution import ThermalSolution

__all__ = [
    "thermal_gradient",
    "peak_temperature",
    "gradient_reduction",
    "spatial_gradient_magnitude",
    "thermal_stress_proxy",
    "kelvin_to_celsius",
    "summarize_designs",
]

TemperatureField = Union[ThermalSolution, np.ndarray]


def _as_array(field: TemperatureField) -> np.ndarray:
    if isinstance(field, ThermalSolution):
        return field.temperatures
    return np.asarray(field, dtype=float)


def thermal_gradient(field: TemperatureField) -> float:
    """Max - min temperature over the field (K) -- the paper's gradient metric."""
    values = _as_array(field)
    return float(np.max(values) - np.min(values))


def peak_temperature(field: TemperatureField) -> float:
    """Maximum temperature of the field (K)."""
    return float(np.max(_as_array(field)))


def gradient_reduction(reference: TemperatureField, optimized: TemperatureField) -> float:
    """Fractional gradient reduction of ``optimized`` versus ``reference``.

    The paper's headline figure of merit: 0.31 for the 3D-MPSoC at peak
    power, about 0.32 for the single-channel tests.
    """
    ref = thermal_gradient(reference)
    if ref == 0.0:
        return 0.0
    return 1.0 - thermal_gradient(optimized) / ref


def spatial_gradient_magnitude(
    temperature_map: np.ndarray, cell_length: float, cell_width: float
) -> np.ndarray:
    """Pointwise ``|grad T|`` (K/m) of a 2-D thermal map.

    Used on finite-volume maps to locate where on the die the strongest
    gradients (and hence thermo-mechanical stresses) occur.
    """
    temperature_map = np.asarray(temperature_map, dtype=float)
    if temperature_map.ndim != 2:
        raise ValueError("temperature_map must be a 2-D array")
    if cell_length <= 0.0 or cell_width <= 0.0:
        raise ValueError("cell dimensions must be positive")
    d_dy, d_dx = np.gradient(temperature_map, cell_width, cell_length)
    return np.sqrt(d_dx**2 + d_dy**2)


def thermal_stress_proxy(
    temperature_map: np.ndarray, cell_length: float, cell_width: float
) -> float:
    """A scalar proxy for thermally-induced stress: mean ``|grad T|`` (K/m).

    The paper motivates gradient minimization by the uneven thermal stresses
    that gradients induce (Sec. I); this proxy lets the benchmarks report a
    stress-flavoured number alongside the max-min gradient.
    """
    return float(
        np.mean(spatial_gradient_magnitude(temperature_map, cell_length, cell_width))
    )


def kelvin_to_celsius(value: Union[float, np.ndarray]):
    """Convert Kelvin to degrees Celsius."""
    return np.asarray(value, dtype=float) - 273.15 if np.ndim(value) else value - 273.15


def summarize_designs(designs: Iterable) -> Dict[str, Dict[str, float]]:
    """Summaries of a collection of ``DesignEvaluation`` objects, keyed by label."""
    out: Dict[str, Dict[str, float]] = {}
    for design in designs:
        summary = design.summary()
        out[str(summary.pop("label"))] = summary
    return out
