"""Experiment reporting helpers.

The benchmarks regenerate the paper's tables and figures as plain-text
reports; this module centralizes the formatting so that every benchmark
produces rows with the same columns and the EXPERIMENTS.md comparison can be
assembled mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .maps import format_table

__all__ = ["ExperimentRow", "ExperimentReport", "paper_comparison_row"]


@dataclass
class ExperimentRow:
    """One row of an experiment report (one design or one configuration)."""

    experiment: str
    case: str
    design: str
    thermal_gradient_K: float
    peak_temperature_C: float
    max_pressure_drop_bar: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Flatten the row (including extras) into one dictionary."""
        row: Dict[str, object] = {
            "experiment": self.experiment,
            "case": self.case,
            "design": self.design,
            "thermal_gradient_K": self.thermal_gradient_K,
            "peak_temperature_C": self.peak_temperature_C,
        }
        if self.max_pressure_drop_bar is not None:
            row["max_pressure_drop_bar"] = self.max_pressure_drop_bar
        row.update(self.extra)
        return row


@dataclass
class ExperimentReport:
    """A titled collection of experiment rows with optional notes."""

    title: str
    rows: List[ExperimentRow] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, row: ExperimentRow) -> None:
        """Append a row to the report."""
        self.rows.append(row)

    def add_design_evaluation(
        self,
        experiment: str,
        case: str,
        evaluation,
        extra: Optional[Dict[str, float]] = None,
    ) -> None:
        """Append a row built from a ``DesignEvaluation``."""
        summary = evaluation.summary()
        self.rows.append(
            ExperimentRow(
                experiment=experiment,
                case=case,
                design=str(summary["label"]),
                thermal_gradient_K=float(summary["thermal_gradient_K"]),
                peak_temperature_C=float(summary["peak_temperature_C"]),
                max_pressure_drop_bar=float(summary["max_pressure_drop_Pa"]) / 1e5,
                extra=dict(extra or {}),
            )
        )

    def add_note(self, note: str) -> None:
        """Append a free-form note printed below the table."""
        self.notes.append(note)

    def to_text(self) -> str:
        """Render the report as an aligned plain-text table."""
        lines = [self.title, "=" * len(self.title)]
        lines.append(format_table([row.as_dict() for row in self.rows]))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def gradients_by_design(self) -> Dict[str, Dict[str, float]]:
        """``{case: {design: gradient}}`` -- the structure plotted in Fig. 8."""
        out: Dict[str, Dict[str, float]] = {}
        for row in self.rows:
            out.setdefault(row.case, {})[row.design] = row.thermal_gradient_K
        return out


def paper_comparison_row(
    experiment: str,
    metric: str,
    paper_value: float,
    measured_value: float,
    unit: str = "",
) -> Dict[str, object]:
    """One row of the paper-vs-measured comparison used in EXPERIMENTS.md."""
    deviation = None
    if paper_value not in (0.0, None):
        deviation = (measured_value - paper_value) / abs(paper_value)
    return {
        "experiment": experiment,
        "metric": metric,
        "paper": paper_value,
        "measured": measured_value,
        "unit": unit,
        "relative_deviation": deviation if deviation is not None else "n/a",
    }
