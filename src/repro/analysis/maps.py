"""Rendering of thermal maps and profiles in a terminal-friendly form.

The paper's Figs. 1, 5, 6 and 9 are images; in a library without plotting
dependencies the same information is exposed as

* numpy arrays (for downstream tooling and the tests), and
* compact ASCII renderings (for the examples and the benchmark logs), where
  each cell of a map is drawn with a character from a temperature ramp.

The ASCII renderings are intentionally small (they down-sample the map) so
that a benchmark run stays readable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "TEMPERATURE_RAMP",
    "render_map",
    "render_profile",
    "render_width_profile",
    "format_table",
]

#: Characters from cold to hot used by the ASCII map renderer.
TEMPERATURE_RAMP: str = " .:-=+*#%@"


def _downsample(values: np.ndarray, max_rows: int, max_cols: int) -> np.ndarray:
    rows, cols = values.shape
    row_step = max(int(np.ceil(rows / max_rows)), 1)
    col_step = max(int(np.ceil(cols / max_cols)), 1)
    trimmed = values[: (rows // row_step) * row_step, : (cols // col_step) * col_step]
    reshaped = trimmed.reshape(
        trimmed.shape[0] // row_step, row_step, trimmed.shape[1] // col_step, col_step
    )
    return reshaped.mean(axis=(1, 3))


def render_map(
    temperature_map: np.ndarray,
    *,
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
    max_rows: int = 20,
    max_cols: int = 60,
    celsius: bool = True,
    title: Optional[str] = None,
) -> str:
    """Render a 2-D temperature map as an ASCII picture.

    ``vmin``/``vmax`` fix the color scale (Kelvin) so that several maps can
    be compared on identical scales, as the paper does for Fig. 9.
    """
    values = np.asarray(temperature_map, dtype=float)
    if values.ndim != 2:
        raise ValueError("temperature_map must be a 2-D array")
    small = _downsample(values, max_rows, max_cols)
    low = float(np.min(values)) if vmin is None else float(vmin)
    high = float(np.max(values)) if vmax is None else float(vmax)
    span = max(high - low, 1e-12)
    indices = np.clip(
        ((small - low) / span * (len(TEMPERATURE_RAMP) - 1)).round().astype(int),
        0,
        len(TEMPERATURE_RAMP) - 1,
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    unit = "C" if celsius else "K"
    display_low = low - 273.15 if celsius else low
    display_high = high - 273.15 if celsius else high
    lines.append(
        f"scale: '{TEMPERATURE_RAMP[0]}' = {display_low:.1f} {unit}   "
        f"'{TEMPERATURE_RAMP[-1]}' = {display_high:.1f} {unit}"
    )
    # Row 0 of the array is y = 0; draw it at the bottom like a plot.
    for row in indices[::-1]:
        lines.append("".join(TEMPERATURE_RAMP[i] for i in row))
    return "\n".join(lines)


def render_profile(
    z: np.ndarray,
    values: np.ndarray,
    *,
    label: str = "",
    width: int = 60,
    height: int = 12,
    unit: str = "K",
) -> str:
    """Render a 1-D profile (e.g. temperature vs distance) as an ASCII chart."""
    z = np.asarray(z, dtype=float)
    values = np.asarray(values, dtype=float)
    if z.shape != values.shape:
        raise ValueError("z and values must have the same shape")
    if z.size < 2:
        raise ValueError("a profile needs at least two points")
    columns = np.interp(
        np.linspace(z[0], z[-1], width), z, values
    )
    low, high = float(np.min(columns)), float(np.max(columns))
    span = max(high - low, 1e-12)
    rows = np.clip(
        ((columns - low) / span * (height - 1)).round().astype(int), 0, height - 1
    )
    canvas = [[" "] * width for _ in range(height)]
    for col, row in enumerate(rows):
        canvas[height - 1 - row][col] = "*"
    lines = []
    if label:
        lines.append(label)
    lines.append(f"max = {high:.2f} {unit}")
    lines.extend("".join(row) for row in canvas)
    lines.append(f"min = {low:.2f} {unit}   (inlet -> outlet)")
    return "\n".join(lines)


def render_width_profile(
    width_profile,
    *,
    n_samples: int = 60,
    height: int = 10,
) -> str:
    """Render a channel width profile ``w_C(z)`` as an ASCII chart (um)."""
    z = np.linspace(0.0, width_profile.length, n_samples)
    widths = np.atleast_1d(width_profile(z)) * 1e6
    return render_profile(
        z, widths, label="channel width profile", unit="um", height=height
    )


def format_table(rows: Sequence[dict], columns: Optional[Sequence[str]] = None) -> str:
    """Format a list of dictionaries as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(column) for column in columns]]
    for row in rows:
        rendered.append(
            [
                f"{row.get(column, ''):.4g}"
                if isinstance(row.get(column), float)
                else str(row.get(column, ""))
                for column in columns
            ]
        )
    widths = [max(len(line[i]) for line in rendered) for i in range(len(columns))]
    lines = []
    for index, line in enumerate(rendered):
        lines.append(
            "  ".join(value.ljust(width) for value, width in zip(line, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
