"""Metrics, map rendering and experiment reporting."""

from .metrics import (
    gradient_reduction,
    kelvin_to_celsius,
    peak_temperature,
    piecewise_integral,
    spatial_gradient_magnitude,
    summarize_designs,
    thermal_cycling_amplitude,
    thermal_gradient,
    thermal_stress_proxy,
    time_above_threshold,
)
from .maps import (
    TEMPERATURE_RAMP,
    format_table,
    render_map,
    render_profile,
    render_width_profile,
)
from .reporting import ExperimentReport, ExperimentRow, paper_comparison_row

__all__ = [
    "gradient_reduction",
    "kelvin_to_celsius",
    "peak_temperature",
    "spatial_gradient_magnitude",
    "summarize_designs",
    "thermal_gradient",
    "thermal_stress_proxy",
    "piecewise_integral",
    "thermal_cycling_amplitude",
    "time_above_threshold",
    "TEMPERATURE_RAMP",
    "format_table",
    "render_map",
    "render_profile",
    "render_width_profile",
    "ExperimentReport",
    "ExperimentRow",
    "paper_comparison_row",
]
