"""Experiment-level configuration shared by examples, benchmarks and tests.

The physical constants of Table I live in
:class:`repro.thermal.properties.PaperParameters` (and its module-level
instance :data:`repro.thermal.properties.TABLE_I`).  This module layers the
*experiment* configuration on top: channel counts, grid resolutions,
optimizer settings, and one reproduction-specific adjustment documented
below.

Flow-rate consistency note
--------------------------
Table I of the paper quotes a coolant flow rate of 4.8 ml/min **per
channel**.  That value is not consistent with the paper's own reported
results: with 4.8 ml/min per 100 um channel the coolant capacity rate is
``c_v * V_dot = 0.33 W/K``, so the ~1 W absorbed by one channel of the
uniform 50 W/cm^2 Test A raises the coolant by only ~3 K -- yet Fig. 5(a)
reports a 28 C silicon gradient, and Test B (average ~3 W/channel) reports
72 C.  Both reported gradients are reproduced almost exactly if the
*effective* per-channel flow rate is about 0.6 ml/min (i.e. 4.8 ml/min
shared by a cluster of 8 channels): Test A then gives a ~24 K coolant rise
and Test B ~72 K.  The same effective flow also makes the pressure-drop
constraint meaningful (at 4.8 ml/min/channel even the *maximum*-width
channel already exceeds the 10 bar limit of Table I, which would leave no
feasible design at all).

We therefore default the experiments to an effective flow rate of
0.6 ml/min per channel and record the substitution here and in
EXPERIMENTS.md.  The literal Table I value remains available as
``TABLE_I.flow_rate_per_channel`` and every experiment accepts an explicit
override, so the sensitivity of the results to this choice can be explored
with the flow-rate ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .thermal.properties import PaperParameters, TABLE_I, ml_per_min_to_m3_per_s

__all__ = [
    "EFFECTIVE_FLOW_RATE_ML_PER_MIN",
    "ExperimentConfig",
    "DEFAULT_EXPERIMENT",
    "paper_parameters",
]

#: Effective per-channel flow rate (ml/min) that reproduces the paper's
#: reported coolant temperature rises; see the module docstring.
EFFECTIVE_FLOW_RATE_ML_PER_MIN: float = 0.6


def paper_parameters(effective_flow: bool = True) -> PaperParameters:
    """Table I parameters, optionally with the effective per-channel flow rate.

    ``effective_flow=True`` (default) replaces the per-channel flow rate by
    the 0.6 ml/min effective value discussed in the module docstring;
    ``False`` returns the literal Table I record.
    """
    if not effective_flow:
        return TABLE_I
    return TABLE_I.with_overrides(
        flow_rate_per_channel=ml_per_min_to_m3_per_s(EFFECTIVE_FLOW_RATE_ML_PER_MIN)
    )


@dataclass(frozen=True)
class ExperimentConfig:
    """Settings shared by the paper-reproduction experiments.

    Attributes
    ----------
    params:
        Physical parameters (Table I with the effective flow rate).
    n_grid_points:
        Points of the z-grid used by the thermal solvers.
    n_segments:
        Number of piecewise-constant width segments given to the direct
        sequential optimizer (the paper does not state its discretization;
        10 segments over the 1 cm channel resolves the Fig. 6 profiles).
    n_lanes:
        Number of modeled channel lanes for the 3D-MPSoC cavities (physical
        channels are clustered into this many lanes, as allowed by the
        multi-channel extension in Sec. III).
    test_b_segments:
        Number of random heat-flux segments of the Test B strip (Fig. 4b).
    test_b_flux_range:
        Low/high bounds (W/cm^2) of the Test B random heat fluxes.
    random_seed:
        Seed used for the Test B workload generator so that runs are
        reproducible.
    solver_backend:
        Linear-solver backend of the thermal solves (a registry name from
        :mod:`repro.thermal.backends`: ``"auto"``, ``"sparse-lu"``,
        ``"sparse-iterative"`` or ``"dense"``).
    n_workers:
        Thread-pool width for batched candidate evaluation (multistart
        warm-up and design-space sweeps); 1 solves sequentially.
    """

    params: PaperParameters = field(default_factory=paper_parameters)
    n_grid_points: int = 241
    n_segments: int = 10
    n_lanes: int = 5
    test_b_segments: int = 10
    test_b_flux_range: tuple[float, float] = (50.0, 250.0)
    random_seed: int = 2012
    solver_backend: str = "auto"
    n_workers: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.params, PaperParameters):
            raise ValueError(
                f"params must be a PaperParameters record, "
                f"got {type(self.params).__name__}"
            )
        for attr, minimum in (
            ("n_grid_points", 3),
            ("n_segments", 1),
            ("n_lanes", 1),
            ("test_b_segments", 1),
            ("n_workers", 1),
        ):
            value = getattr(self, attr)
            if int(value) != value:
                raise ValueError(f"{attr} must be an integer, got {value!r}")
            object.__setattr__(self, attr, int(value))
            if getattr(self, attr) < minimum:
                raise ValueError(
                    f"{attr} must be at least {minimum}, got {getattr(self, attr)}"
                )
        flux_range = tuple(float(value) for value in self.test_b_flux_range)
        if len(flux_range) != 2:
            raise ValueError(
                "test_b_flux_range must be a (low, high) pair, "
                f"got {self.test_b_flux_range!r}"
            )
        if not (0.0 <= flux_range[0] <= flux_range[1]):
            raise ValueError(
                "test_b_flux_range must satisfy 0 <= low <= high, "
                f"got {flux_range}"
            )
        object.__setattr__(self, "test_b_flux_range", flux_range)
        object.__setattr__(self, "random_seed", int(self.random_seed))
        if not isinstance(self.solver_backend, str) or not self.solver_backend:
            raise ValueError(
                "solver_backend must be a non-empty backend name, "
                f"got {self.solver_backend!r}"
            )

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Return a copy with the given attributes replaced."""
        return replace(self, **kwargs)

    def optimizer_settings(self, **overrides):
        """Build :class:`repro.core.OptimizerSettings` from this config.

        The experiment-level knobs (segment count, grid resolution, solver
        backend, worker count) are threaded through; any keyword override
        wins over the config value.
        """
        from .core.optimizer import OptimizerSettings

        values = {
            "n_segments": self.n_segments,
            "n_grid_points": self.n_grid_points,
            "solver_backend": self.solver_backend,
            "n_workers": self.n_workers,
        }
        values.update(overrides)
        return OptimizerSettings(**values)


#: Default experiment configuration used by examples and benchmarks.
DEFAULT_EXPERIMENT = ExperimentConfig()
