"""Declarative scenario specifications -- the serializable front door.

Every experiment of the paper (the Fig. 4 Test A/B workloads, the Fig. 7
Niagara stackings, the Sec. IV modulation flow) is described by one frozen
:class:`ScenarioSpec`: the structure/stacking, the workload, the grids, the
solver backend and the optimizer settings.  Specs round-trip losslessly
through :meth:`ScenarioSpec.to_dict` / :meth:`ScenarioSpec.from_dict` (and
their JSON twins), so a scenario can live in a file, travel over the wire,
or be checked into a repository -- the same move 3D-ICE makes with its
stack-description files.

A spec knows how to build both model families of the library:

* :meth:`ScenarioSpec.build_structure` -- the analytical multi-channel
  cavity consumed by the finite-difference solver and the optimizer;
* :meth:`ScenarioSpec.build_stack` -- the finite-volume layer stack
  consumed by the 3D-ICE-like simulator.

The module also keeps a process-wide registry of named scenarios,
pre-populated with the paper's experiments (``test-a``, ``test-b`` and the
three ``niagara-arch*`` stackings); :func:`resolve_scenario` turns a name,
a JSON file path, a dictionary or a spec into a :class:`ScenarioSpec`.

Example::

    from repro.scenarios import get_scenario

    spec = get_scenario("test-a")
    assert ScenarioSpec.from_json(spec.to_json()) == spec
    structure = spec.build_structure()      # analytical cavity
    stack = spec.build_stack()              # finite-volume stack
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, fields as dataclass_fields, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .config import ExperimentConfig, paper_parameters
from .core.optimizer import OptimizerSettings
from .floorplan.architectures import architecture_names, get_architecture
from .floorplan.workloads import (
    TEST_A_FLUX,
    test_a_structure,
    test_b_fluxes,
    test_b_structure,
)
from .ice.builders import two_die_stack_from_architecture, two_die_stack_from_maps
from .ice.stack import LayerStack
from .thermal.geometry import (
    ChannelGeometry,
    HeatInputProfile,
    MultiChannelStructure,
    TestStructure,
    WidthProfile,
)
from .thermal.properties import get_coolant_model
from .transient import (
    PolicySpec,
    RomSpec,
    TraceSpec,
    TransientSpec,
    _check_keys,
    _set,
)

__all__ = [
    "WorkloadSpec",
    "GridSpec",
    "SolverSpec",
    "OptimizerSpec",
    "ScenarioSpec",
    "SCENARIOS",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "resolve_scenario",
]

#: Workload families a spec can describe.
WORKLOAD_KINDS: Tuple[str, ...] = ("test-a", "test-b", "architecture")

#: Simulator families a spec can request.
SIMULATOR_KINDS: Tuple[str, ...] = ("fdm", "ice")

#: Power scenarios of the floorplan power model.
POWER_SCENARIOS: Tuple[str, ...] = ("peak", "average")

#: PaperParameters fields a spec may override (all scalar, SI units).
PARAMETER_OVERRIDE_FIELDS: Tuple[str, ...] = (
    "channel_pitch",
    "silicon_height",
    "channel_height",
    "flow_rate_per_channel",
    "inlet_temperature",
    "max_pressure_drop",
    "min_channel_width",
    "max_channel_width",
    "channel_length",
)


def _non_default_fields(obj, *names) -> Dict[str, object]:
    """Serialize late-added optional fields only when set away from default.

    Spec-hash stability policy: the canonical plain-data form of a spec is
    frozen by :meth:`ScenarioSpec.spec_hash` (campaign stores and the serve
    queue key on it), so optional fields added *after* a release must be
    omitted from :meth:`to_dict` while they hold their dataclass defaults.
    Otherwise every registered scenario's hash would churn on upgrade and
    all resume keys would silently miss.  New sub-spec fields should go
    through this helper; pre-existing fields keep serializing
    unconditionally (their presence is part of the frozen form).
    """
    defaults = {field.name: field.default for field in dataclass_fields(obj)}
    return {
        name: getattr(obj, name)
        for name in names
        if getattr(obj, name) != defaults[name]
    }


@dataclass(frozen=True)
class WorkloadSpec:
    """What heats the stack: a Fig. 4 test workload or a Fig. 7 stacking.

    Attributes
    ----------
    kind:
        ``"test-a"`` (uniform single-channel flux), ``"test-b"`` (random
        per-segment single-channel fluxes) or ``"architecture"`` (one of
        the two-die Niagara stackings).
    flux_w_per_cm2:
        Areal heat flux per active layer for ``"test-a"`` (W/cm^2).
    segments / flux_range / seed:
        Test B strip discretization, flux bounds (W/cm^2) and RNG seed.
    architecture / power:
        Stacking name (``"arch1"``..``"arch3"``) and power scenario
        (``"peak"`` or ``"average"``) for ``"architecture"`` workloads.
    """

    kind: str = "test-a"
    flux_w_per_cm2: float = TEST_A_FLUX
    segments: int = 10
    flux_range: Tuple[float, float] = (50.0, 250.0)
    seed: int = 2012
    architecture: str = ""
    power: str = "peak"

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(
                f"workload.kind must be one of {list(WORKLOAD_KINDS)}, "
                f"got {self.kind!r}"
            )
        _set(self, flux_w_per_cm2=float(self.flux_w_per_cm2))
        if self.flux_w_per_cm2 < 0.0:
            raise ValueError(
                f"workload.flux_w_per_cm2 must be non-negative, "
                f"got {self.flux_w_per_cm2}"
            )
        _set(self, segments=int(self.segments), seed=int(self.seed))
        if self.segments < 1:
            raise ValueError(
                f"workload.segments must be at least 1, got {self.segments}"
            )
        flux_range = tuple(float(value) for value in self.flux_range)
        if len(flux_range) != 2:
            raise ValueError(
                "workload.flux_range must be a (low, high) pair, "
                f"got {self.flux_range!r}"
            )
        if flux_range[0] > flux_range[1] or flux_range[0] < 0.0:
            raise ValueError(
                "workload.flux_range must satisfy 0 <= low <= high, "
                f"got {flux_range}"
            )
        _set(self, flux_range=flux_range, power=str(self.power))
        if self.power not in POWER_SCENARIOS:
            raise ValueError(
                f"workload.power must be one of {list(POWER_SCENARIOS)}, "
                f"got {self.power!r}"
            )
        if self.kind == "architecture":
            if self.architecture not in architecture_names():
                raise ValueError(
                    f"workload.architecture must be one of "
                    f"{architecture_names()}, got {self.architecture!r}"
                )

    @property
    def is_single_channel(self) -> bool:
        """True for the single-channel Test A / Test B workloads."""
        return self.kind in ("test-a", "test-b")


@dataclass(frozen=True)
class GridSpec:
    """Discretizations of the two model families.

    Attributes
    ----------
    n_grid_points:
        z-grid resolution of the analytical finite-difference solves.
    n_lanes:
        Modeled channel lanes of the analytical cavity (architecture
        workloads cluster the physical channels into this many lanes;
        single-channel workloads always use one lane).
    n_rows / n_cols:
        Finite-volume cell grid (rows across the flow, columns along it).
        Single-channel workloads are a strip exactly one channel pitch
        wide, so :class:`ScenarioSpec` normalizes ``n_rows`` to 1 for
        them at construction.
    """

    n_grid_points: int = 241
    n_lanes: int = 5
    n_rows: int = 44
    n_cols: int = 44

    def __post_init__(self) -> None:
        _set(
            self,
            n_grid_points=int(self.n_grid_points),
            n_lanes=int(self.n_lanes),
            n_rows=int(self.n_rows),
            n_cols=int(self.n_cols),
        )
        if self.n_grid_points < 3:
            raise ValueError(
                f"grid.n_grid_points must be at least 3, got {self.n_grid_points}"
            )
        if self.n_lanes < 1:
            raise ValueError(f"grid.n_lanes must be at least 1, got {self.n_lanes}")
        if self.n_rows < 1:
            raise ValueError(f"grid.n_rows must be at least 1, got {self.n_rows}")
        if self.n_cols < 2:
            raise ValueError(f"grid.n_cols must be at least 2, got {self.n_cols}")


@dataclass(frozen=True)
class SolverSpec:
    """Which simulator runs the scenario and how.

    Attributes
    ----------
    simulator:
        Default simulator for :func:`repro.api.run`: ``"fdm"`` (analytical
        finite-difference path through the evaluation engine) or ``"ice"``
        (finite-volume solver).
    backend:
        Linear-solver backend (a registry name from
        :mod:`repro.thermal.backends`) used by both solve paths: the
        finite-difference solves and the finite-volume steady solves.
    n_workers:
        Thread-pool width of the evaluation engine (batched solves and
        concurrent multistart restarts).
    cache_size:
        Capacity of the engine's LRU solution cache.
    picard_tolerance_K / picard_max_iterations / picard_relaxation:
        Convergence knobs of the Picard outer iteration used when the
        scenario requests a temperature-dependent coolant model
        (``ScenarioSpec.coolant_model != "constant"``); ignored otherwise.
        See :class:`repro.core.picard.PicardSettings`.
    """

    simulator: str = "fdm"
    backend: str = "auto"
    n_workers: int = 1
    cache_size: int = 4096
    picard_tolerance_K: float = 1e-4
    picard_max_iterations: int = 25
    picard_relaxation: float = 1.0

    def __post_init__(self) -> None:
        if self.simulator not in SIMULATOR_KINDS:
            raise ValueError(
                f"solver.simulator must be one of {list(SIMULATOR_KINDS)}, "
                f"got {self.simulator!r}"
            )
        if not isinstance(self.backend, str) or not self.backend:
            raise ValueError(
                f"solver.backend must be a non-empty backend name, "
                f"got {self.backend!r}"
            )
        _set(self, n_workers=int(self.n_workers), cache_size=int(self.cache_size))
        if self.n_workers < 1:
            raise ValueError(
                f"solver.n_workers must be at least 1, got {self.n_workers}"
            )
        if self.cache_size < 1:
            raise ValueError(
                f"solver.cache_size must be at least 1, got {self.cache_size}"
            )
        _set(
            self,
            picard_tolerance_K=float(self.picard_tolerance_K),
            picard_max_iterations=int(self.picard_max_iterations),
            picard_relaxation=float(self.picard_relaxation),
        )
        if self.picard_tolerance_K <= 0.0:
            raise ValueError(
                f"solver.picard_tolerance_K must be positive, "
                f"got {self.picard_tolerance_K}"
            )
        if self.picard_max_iterations < 1:
            raise ValueError(
                f"solver.picard_max_iterations must be at least 1, "
                f"got {self.picard_max_iterations}"
            )
        if not 0.0 < self.picard_relaxation <= 1.0:
            raise ValueError(
                f"solver.picard_relaxation must be in (0, 1], "
                f"got {self.picard_relaxation}"
            )


@dataclass(frozen=True)
class OptimizerSpec:
    """Settings of the optimal channel-modulation design flow (Sec. IV).

    Mirrors the knobs of :class:`repro.core.optimizer.OptimizerSettings`
    that define the experiment; grid resolution and solver backend are
    taken from the scenario's :class:`GridSpec` / :class:`SolverSpec`.
    """

    n_segments: int = 10
    max_iterations: int = 80
    multistart: int = 1
    tolerance: float = 1e-8
    objective: str = "gradient_norm"
    gradient_mode: str = "adjoint"
    shared_profile: bool = False
    enforce_equal_pressure: bool = True
    max_pressure_drop_Pa: Optional[float] = None

    def __post_init__(self) -> None:
        _set(
            self,
            n_segments=int(self.n_segments),
            max_iterations=int(self.max_iterations),
            multistart=int(self.multistart),
            tolerance=float(self.tolerance),
            shared_profile=bool(self.shared_profile),
            enforce_equal_pressure=bool(self.enforce_equal_pressure),
        )
        if self.n_segments < 1:
            raise ValueError(
                f"optimizer.n_segments must be at least 1, got {self.n_segments}"
            )
        if self.max_iterations < 1:
            raise ValueError(
                f"optimizer.max_iterations must be at least 1, "
                f"got {self.max_iterations}"
            )
        if self.multistart < 1:
            raise ValueError(
                f"optimizer.multistart must be at least 1, got {self.multistart}"
            )
        if self.tolerance <= 0.0:
            raise ValueError(
                f"optimizer.tolerance must be positive, got {self.tolerance}"
            )
        if not isinstance(self.objective, str) or not self.objective:
            raise ValueError(
                f"optimizer.objective must be a non-empty objective name, "
                f"got {self.objective!r}"
            )
        from .core.optimizer import GRADIENT_MODES

        if self.gradient_mode not in GRADIENT_MODES:
            raise ValueError(
                f"optimizer.gradient_mode must be one of "
                f"{list(GRADIENT_MODES)}, got {self.gradient_mode!r}"
            )
        if self.max_pressure_drop_Pa is not None:
            _set(self, max_pressure_drop_Pa=float(self.max_pressure_drop_Pa))
            if self.max_pressure_drop_Pa <= 0.0:
                raise ValueError(
                    f"optimizer.max_pressure_drop_Pa must be positive, "
                    f"got {self.max_pressure_drop_Pa}"
                )


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-specified, serializable experiment.

    Attributes
    ----------
    name:
        Scenario name (the registry key and the provenance label).
    description:
        One-line human description.
    workload / grid / solver / optimizer:
        The sub-specifications documented on their classes.
    params:
        Scalar :class:`~repro.thermal.properties.PaperParameters` overrides
        in SI units, stored as a sorted tuple of ``(field, value)`` pairs
        (accepts a mapping at construction).  Overrides are applied on top
        of the effective-flow Table I defaults.
    design:
        Optional explicit channel-width design: one tuple of
        piecewise-constant segment widths (meters) per modeled lane.
        ``None`` means the uniform maximum-width (conventional) design.
    transient:
        Optional :class:`~repro.transient.TransientSpec` turning the
        scenario into a time-varying workload (power traces, runtime
        flow-control policy, integration settings).  Transient scenarios
        run through the finite-volume transient engine, so their solver
        family must be ``"ice"``.
    coolant_model:
        Name of a registered coolant property model
        (:data:`repro.thermal.properties.COOLANT_MODEL_LIBRARY`).  The
        default ``"constant"`` is the paper's frozen-property assumption
        and leaves every solve bit-identical to a spec without the field;
        any other model (e.g. ``"water"``) wraps the steady solves in the
        Picard outer iteration of :mod:`repro.core.picard`.  Temperature-
        dependent models are steady-state only: combining one with a
        transient spec raises at construction.
    """

    name: str
    description: str = ""
    workload: WorkloadSpec = WorkloadSpec()
    grid: GridSpec = GridSpec()
    solver: SolverSpec = SolverSpec()
    optimizer: OptimizerSpec = OptimizerSpec()
    params: Tuple[Tuple[str, float], ...] = ()
    design: Optional[Tuple[Tuple[float, ...], ...]] = None
    transient: Optional[TransientSpec] = None
    coolant_model: str = "constant"

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"scenario name must be a non-empty string, got {self.name!r}")
        _set(self, description=str(self.description))
        for attr, cls in (
            ("workload", WorkloadSpec),
            ("grid", GridSpec),
            ("solver", SolverSpec),
            ("optimizer", OptimizerSpec),
        ):
            if not isinstance(getattr(self, attr), cls):
                raise ValueError(
                    f"scenario.{attr} must be a {cls.__name__}, "
                    f"got {type(getattr(self, attr)).__name__}"
                )
        # A single-channel workload is a strip exactly one channel pitch
        # wide: the finite-volume grid has one row of cells by construction.
        # Normalizing here keeps the spec equal to what actually runs
        # (to_dict shows n_rows=1) instead of silently ignoring the field.
        if self.workload.is_single_channel and self.grid.n_rows != 1:
            _set(self, grid=replace(self.grid, n_rows=1))
        overrides = self.params
        if isinstance(overrides, Mapping):
            overrides = tuple(overrides.items())
        normalized = []
        for pair in overrides:
            try:
                key, value = pair
            except (TypeError, ValueError):
                raise ValueError(
                    "scenario.params must be a mapping or a sequence of "
                    f"(field, value) pairs, got {self.params!r}"
                ) from None
            if key not in PARAMETER_OVERRIDE_FIELDS:
                raise ValueError(
                    f"scenario.params: unknown parameter {key!r}; "
                    f"overridable parameters are {list(PARAMETER_OVERRIDE_FIELDS)}"
                )
            normalized.append((str(key), float(value)))
        _set(self, params=tuple(sorted(normalized)))
        # Building the parameter record eagerly surfaces range errors
        # (negative lengths, inverted width bounds, ...) at spec
        # construction instead of deep inside a solver.
        try:
            self._parameters()
        except ValueError as error:
            raise ValueError(f"scenario.params: {error}") from None
        if self.design is not None:
            design = []
            for lane, segments in enumerate(self.design):
                widths = tuple(float(width) for width in np.atleast_1d(segments))
                if not widths:
                    raise ValueError(
                        f"scenario.design lane {lane} has no segment widths"
                    )
                if any(width <= 0.0 for width in widths):
                    raise ValueError(
                        f"scenario.design lane {lane}: all widths must be "
                        f"positive, got {widths}"
                    )
                design.append(widths)
            _set(self, design=tuple(design))
        if self.transient is not None:
            transient = self.transient
            if isinstance(transient, Mapping):
                transient = TransientSpec.from_dict(transient)
            if not isinstance(transient, TransientSpec):
                raise ValueError(
                    "scenario.transient must be a TransientSpec (or mapping), "
                    f"got {type(transient).__name__}"
                )
            _set(self, transient=transient)
            # Transient scenarios run through the finite-volume transient
            # engine; like the n_rows normalization above, pinning the
            # simulator family here keeps the spec equal to what actually
            # runs (to_dict shows simulator="ice").
            if self.solver.simulator != "ice":
                _set(self, solver=replace(self.solver, simulator="ice"))
        _set(self, coolant_model=str(self.coolant_model))
        # Raises ValueError (listing the registered models) on unknown names.
        get_coolant_model(self.coolant_model)
        if self.transient is not None and self.coolant_model != "constant":
            raise ValueError(
                "scenario.coolant_model: temperature-dependent coolant "
                "models are steady-state only (the Picard outer iteration "
                "wraps steady solves); transient scenarios must use "
                f"'constant', got {self.coolant_model!r}"
            )

    # -- derived configuration --------------------------------------------

    def _parameters(self):
        """Effective Table I parameters with the spec's overrides applied."""
        return paper_parameters().with_overrides(**dict(self.params))

    def experiment_config(self) -> ExperimentConfig:
        """The :class:`~repro.config.ExperimentConfig` this spec describes."""
        return ExperimentConfig(
            params=self._parameters(),
            n_grid_points=self.grid.n_grid_points,
            n_segments=self.optimizer.n_segments,
            n_lanes=self.grid.n_lanes,
            test_b_segments=self.workload.segments,
            test_b_flux_range=self.workload.flux_range,
            random_seed=self.workload.seed,
            solver_backend=self.solver.backend,
            n_workers=self.solver.n_workers,
        )

    def optimizer_settings(self) -> OptimizerSettings:
        """The :class:`~repro.core.optimizer.OptimizerSettings` of this spec."""
        return OptimizerSettings(
            n_segments=self.optimizer.n_segments,
            shared_profile=self.optimizer.shared_profile,
            objective=self.optimizer.objective,
            gradient_mode=self.optimizer.gradient_mode,
            n_grid_points=self.grid.n_grid_points,
            max_iterations=self.optimizer.max_iterations,
            tolerance=self.optimizer.tolerance,
            multistart=self.optimizer.multistart,
            enforce_equal_pressure=self.optimizer.enforce_equal_pressure,
            solver_backend=self.solver.backend,
            n_workers=self.solver.n_workers,
            cache_size=self.solver.cache_size,
        )

    @property
    def n_lanes(self) -> int:
        """Modeled lanes of the analytical cavity for this workload."""
        return 1 if self.workload.is_single_channel else self.grid.n_lanes

    def channel_length(self) -> float:
        """Channel length (m): the die length for stackings, ``d`` otherwise."""
        if self.workload.kind == "architecture":
            return get_architecture(self.workload.architecture).die_length
        return self._parameters().channel_length

    def width_profiles(self) -> Optional[List[WidthProfile]]:
        """The explicit per-lane design as width profiles, or None."""
        if self.design is None:
            return None
        if len(self.design) != self.n_lanes:
            raise ValueError(
                f"scenario {self.name!r}: design has {len(self.design)} lane "
                f"profiles but the workload models {self.n_lanes} lane(s)"
            )
        length = self.channel_length()
        profiles = []
        for segments in self.design:
            if len(segments) == 1:
                profiles.append(WidthProfile.uniform(segments[0], length))
            else:
                profiles.append(
                    WidthProfile.piecewise_constant(list(segments), length)
                )
        return profiles

    # -- model builders ---------------------------------------------------

    def build_structure(self) -> Union[TestStructure, MultiChannelStructure]:
        """The analytical cavity model (finite-difference / optimizer path)."""
        config = self.experiment_config()
        workload = self.workload
        profiles = self.width_profiles()
        if workload.kind == "architecture":
            return get_architecture(workload.architecture).cavity(
                workload.power,
                config=config,
                n_lanes=self.grid.n_lanes,
                n_cols=self.grid.n_cols,
                width_profiles=profiles,
            )
        profile = profiles[0] if profiles is not None else None
        if workload.kind == "test-a":
            structure = test_a_structure(config, width_profile=profile)
            if workload.flux_w_per_cm2 != TEST_A_FLUX:
                heat = HeatInputProfile.from_areal_flux(
                    workload.flux_w_per_cm2,
                    structure.geometry.pitch,
                    structure.geometry.length,
                )
                structure = replace(structure, heat_top=heat, heat_bottom=heat)
            return structure
        return test_b_structure(config, width_profile=profile)

    def build_stack(self) -> LayerStack:
        """The finite-volume layer stack (3D-ICE-like validation path)."""
        config = self.experiment_config()
        workload = self.workload
        profiles = self.width_profiles()
        if workload.kind == "architecture":
            architecture = get_architecture(workload.architecture)
            if profiles is None:
                width_argument = None
            elif len(profiles) == 1:
                width_argument = profiles[0]
            else:
                width_argument = architecture.per_channel_width_profiles(
                    profiles, config=config
                )
            return two_die_stack_from_architecture(
                architecture,
                workload.power,
                config=config,
                n_cols=self.grid.n_cols,
                n_rows=self.grid.n_rows,
                width_profile=width_argument,
            )
        geometry = ChannelGeometry.from_parameters(config.params)
        n_cols = self.grid.n_cols
        if workload.kind == "test-a":
            top = bottom = workload.flux_w_per_cm2
        else:
            top_fluxes, bottom_fluxes = test_b_fluxes(config)
            x_centers = (np.arange(n_cols) + 0.5) * geometry.length / n_cols
            index = np.minimum(
                (x_centers / geometry.length * workload.segments).astype(int),
                workload.segments - 1,
            )
            top = top_fluxes[index][None, :]
            bottom = bottom_fluxes[index][None, :]
        return two_die_stack_from_maps(
            top,
            bottom,
            die_length=geometry.length,
            die_width=geometry.pitch,
            config=config,
            n_cols=n_cols,
            n_rows=self.grid.n_rows,  # normalized to 1 in __post_init__
            width_profile=profiles[0] if profiles is not None else None,
        )

    # -- functional updates ------------------------------------------------

    def with_overrides(self, **kwargs) -> "ScenarioSpec":
        """Return a copy with the given top-level fields replaced."""
        return replace(self, **kwargs)

    def with_solver(
        self, simulator: Optional[str] = None, backend: Optional[str] = None
    ) -> "ScenarioSpec":
        """Return a copy with the simulator and/or backend replaced."""
        updates = {}
        if simulator is not None:
            updates["simulator"] = simulator
        if backend is not None:
            updates["backend"] = backend
        return replace(self, solver=replace(self.solver, **updates))

    def with_design(
        self, profiles: Sequence[Union[WidthProfile, Mapping, Sequence[float]]]
    ) -> "ScenarioSpec":
        """Return a copy pinning an explicit per-lane channel-width design.

        Accepts :class:`WidthProfile` objects (uniform or piecewise), the
        mappings :meth:`WidthProfile.to_dict` emits (e.g. lifted from a
        ``repro optimize --json`` payload), or raw per-segment width
        sequences in meters.
        """
        design = []
        for profile in profiles:
            if isinstance(profile, Mapping):
                profile = WidthProfile.from_dict(profile)
            if isinstance(profile, WidthProfile):
                design.append(tuple(float(w) for w in profile.segment_widths))
            else:
                design.append(tuple(float(w) for w in np.atleast_1d(profile)))
        return replace(self, design=tuple(design))

    def with_params(self, **overrides) -> "ScenarioSpec":
        """Return a copy with extra Table I parameter overrides merged in."""
        merged = dict(self.params)
        merged.update(overrides)
        return replace(self, params=tuple(sorted(merged.items())))

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-data (JSON-compatible) representation of the spec.

        Fields added after the spec-hash freeze (the Picard solver knobs
        and ``coolant_model``) are serialized through
        :func:`_non_default_fields` -- present only when set away from
        their defaults -- so pre-existing specs keep their canonical form
        and :meth:`spec_hash` byte-for-byte.
        """
        data = {
            "name": self.name,
            "description": self.description,
            "workload": {
                "kind": self.workload.kind,
                "flux_w_per_cm2": self.workload.flux_w_per_cm2,
                "segments": self.workload.segments,
                "flux_range": list(self.workload.flux_range),
                "seed": self.workload.seed,
                "architecture": self.workload.architecture,
                "power": self.workload.power,
            },
            "grid": {
                "n_grid_points": self.grid.n_grid_points,
                "n_lanes": self.grid.n_lanes,
                "n_rows": self.grid.n_rows,
                "n_cols": self.grid.n_cols,
            },
            "solver": {
                "simulator": self.solver.simulator,
                "backend": self.solver.backend,
                "n_workers": self.solver.n_workers,
                "cache_size": self.solver.cache_size,
            },
            "optimizer": {
                "n_segments": self.optimizer.n_segments,
                "max_iterations": self.optimizer.max_iterations,
                "multistart": self.optimizer.multistart,
                "tolerance": self.optimizer.tolerance,
                "objective": self.optimizer.objective,
                "gradient_mode": self.optimizer.gradient_mode,
                "shared_profile": self.optimizer.shared_profile,
                "enforce_equal_pressure": self.optimizer.enforce_equal_pressure,
                "max_pressure_drop_Pa": self.optimizer.max_pressure_drop_Pa,
            },
            "params": dict(self.params),
            "design": (
                None
                if self.design is None
                else [list(segments) for segments in self.design]
            ),
            "transient": (
                None if self.transient is None else self.transient.to_dict()
            ),
        }
        data["solver"].update(
            _non_default_fields(
                self.solver,
                "picard_tolerance_K",
                "picard_max_iterations",
                "picard_relaxation",
            )
        )
        data.update(_non_default_fields(self, "coolant_model"))
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (with validation)."""
        if not isinstance(data, Mapping):
            raise ValueError(
                f"a scenario must be a mapping, got {type(data).__name__}"
            )
        _check_keys(cls, data, "scenario")
        if "name" not in data:
            raise ValueError("scenario: the 'name' field is required")
        sections = {}
        for attr, sub_cls in (
            ("workload", WorkloadSpec),
            ("grid", GridSpec),
            ("solver", SolverSpec),
            ("optimizer", OptimizerSpec),
        ):
            section = data.get(attr, {})
            if isinstance(section, sub_cls):
                sections[attr] = section
                continue
            if not isinstance(section, Mapping):
                raise ValueError(
                    f"scenario.{attr} must be a mapping, "
                    f"got {type(section).__name__}"
                )
            _check_keys(sub_cls, section, f"scenario.{attr}")
            sections[attr] = sub_cls(**section)
        design = data.get("design")
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            params=data.get("params", ()),
            design=None if design is None else tuple(
                tuple(segments) if not np.isscalar(segments) else (segments,)
                for segments in design
            ),
            transient=data.get("transient"),
            coolant_model=data.get("coolant_model", "constant"),
            **sections,
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON representation of the spec."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def spec_hash(self) -> str:
        """Content hash of the spec (sha256 over the canonical JSON form).

        Two specs have equal hashes exactly when they are equal as specs
        (same canonical plain-data form), so campaign stores can use the
        hash as a resume key across processes and sessions.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, os.PathLike]) -> None:
        """Write the spec to a JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "ScenarioSpec":
        """Read a spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


# -- named-scenario registry ------------------------------------------------

#: Process-wide registry of named scenarios.
SCENARIOS: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, overwrite: bool = False) -> ScenarioSpec:
    """Add a scenario to the registry (refusing silent overwrites)."""
    if not isinstance(spec, ScenarioSpec):
        raise TypeError(f"expected a ScenarioSpec, got {type(spec).__name__}")
    if spec.name in SCENARIOS and not overwrite:
        raise ValueError(
            f"scenario {spec.name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; registered scenarios: {scenario_names()}"
        ) from None


def scenario_names() -> List[str]:
    """Names of the registered scenarios, in registration order."""
    return list(SCENARIOS)


def resolve_scenario(
    scenario: Union[ScenarioSpec, str, os.PathLike, Mapping]
) -> ScenarioSpec:
    """Turn a spec, registered name, JSON file path or mapping into a spec."""
    if isinstance(scenario, ScenarioSpec):
        return scenario
    if isinstance(scenario, Mapping):
        return ScenarioSpec.from_dict(scenario)
    if isinstance(scenario, (str, os.PathLike)):
        text = os.fspath(scenario)
        if text in SCENARIOS:
            return SCENARIOS[text]
        if os.path.exists(text):
            return ScenarioSpec.load(text)
        raise ValueError(
            f"{text!r} is neither a registered scenario nor a scenario file; "
            f"registered scenarios: {scenario_names()}"
        )
    raise TypeError(
        "scenario must be a ScenarioSpec, a registered name, a JSON file "
        f"path or a mapping, got {type(scenario).__name__}"
    )


def _register_paper_scenarios() -> None:
    """Pre-populate the registry with the paper's experiments."""
    register_scenario(
        ScenarioSpec(
            name="test-a",
            description=(
                "Test A (Fig. 4a): uniform 50 W/cm^2 on both active layers "
                "of the single-channel test structure"
            ),
            workload=WorkloadSpec(kind="test-a"),
            grid=GridSpec(n_grid_points=241, n_lanes=1, n_rows=1, n_cols=80),
            optimizer=OptimizerSpec(n_segments=10, max_iterations=60),
        )
    )
    register_scenario(
        ScenarioSpec(
            name="test-b",
            description=(
                "Test B (Fig. 4b): random per-segment heat fluxes in "
                "[50, 250] W/cm^2 along the single channel"
            ),
            workload=WorkloadSpec(kind="test-b", segments=10, seed=2012),
            grid=GridSpec(n_grid_points=241, n_lanes=1, n_rows=1, n_cols=80),
            optimizer=OptimizerSpec(n_segments=10, max_iterations=80),
        )
    )
    descriptions = {
        "arch1": "segregated two-die stack: compute die over memory die",
        "arch2": "complementary mixed dies: core bands on opposite sides",
        "arch3": "aligned mixed dies: identical dies, cores stacked",
    }
    for arch in ("arch1", "arch2", "arch3"):
        register_scenario(
            ScenarioSpec(
                name=f"niagara-{arch}",
                description=f"Fig. 7 {arch}: {descriptions[arch]} (peak power)",
                workload=WorkloadSpec(kind="architecture", architecture=arch),
                grid=GridSpec(n_grid_points=161, n_lanes=5, n_rows=44, n_cols=44),
                optimizer=OptimizerSpec(n_segments=6, max_iterations=40),
            )
        )


def _register_transient_scenarios() -> None:
    """Pre-populate the registry with trace-driven transient workloads."""
    register_scenario(
        ScenarioSpec(
            name="test-a-burst",
            description=(
                "Test A structure under a bursty duty cycle: the top die "
                "toggles 100/10 W/cm^2 every 0.1 s (finite-volume transient)"
            ),
            workload=WorkloadSpec(kind="test-a"),
            grid=GridSpec(n_grid_points=241, n_lanes=1, n_rows=1, n_cols=80),
            solver=SolverSpec(simulator="ice"),
            transient=TransientSpec(
                duration_s=1.0,
                time_step_s=0.01,
                traces=(
                    TraceSpec(
                        layer="top_die",
                        kind="periodic",
                        period_s=0.2,
                        duty=0.5,
                        high=100.0,
                        low=10.0,
                    ),
                ),
                policy=PolicySpec(kind="constant", control_interval_s=0.1),
                store_every=5,
                threshold_K=330.0,
            ),
        )
    )
    register_scenario(
        ScenarioSpec(
            name="test-a-burst-rom",
            description=(
                "test-a-burst integrated through the Krylov reduced-order "
                "tier (order-48 basis, measured-error reporting)"
            ),
            workload=WorkloadSpec(kind="test-a"),
            grid=GridSpec(n_grid_points=241, n_lanes=1, n_rows=1, n_cols=80),
            solver=SolverSpec(simulator="ice"),
            transient=TransientSpec(
                duration_s=1.0,
                time_step_s=0.01,
                traces=(
                    TraceSpec(
                        layer="top_die",
                        kind="periodic",
                        period_s=0.2,
                        duty=0.5,
                        high=100.0,
                        low=10.0,
                    ),
                ),
                policy=PolicySpec(kind="constant", control_interval_s=0.1),
                store_every=5,
                threshold_K=330.0,
                rom=RomSpec(mode="rom", order=48),
            ),
        )
    )
    register_scenario(
        ScenarioSpec(
            name="niagara-arch1-dvfs",
            description=(
                "Fig. 7 arch1 under a DVFS-like power-state trace: the "
                "compute die steps 120 -> 40 -> 90 W/cm^2 (finite-volume "
                "transient)"
            ),
            workload=WorkloadSpec(kind="architecture", architecture="arch1"),
            grid=GridSpec(n_grid_points=161, n_lanes=5, n_rows=44, n_cols=44),
            solver=SolverSpec(simulator="ice"),
            transient=TransientSpec(
                duration_s=0.6,
                time_step_s=0.02,
                traces=(
                    TraceSpec(
                        layer="top_die",
                        kind="piecewise",
                        times=(0.0, 0.2, 0.4),
                        values=(120.0, 40.0, 90.0),
                    ),
                ),
                policy=PolicySpec(kind="constant", control_interval_s=0.1),
                store_every=5,
                threshold_K=335.0,
            ),
        )
    )


_register_paper_scenarios()
_register_transient_scenarios()
