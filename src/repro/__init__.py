"""repro -- Thermal balancing of liquid-cooled 3D-MPSoCs using channel modulation.

The one way in is :func:`run`: every experiment of the DATE 2012 paper by
Sabry, Sridhar and Atienza is a declarative, JSON-serializable
:class:`~repro.scenarios.ScenarioSpec`, and ``run(spec)`` simulates it
through either model family behind one simulator protocol::

    from repro import run, optimize, get_scenario

    result = run("test-a")                  # analytical FDM path
    other = run("test-a", solver="ice")     # finite-volume cross-check
    print(result.thermal_gradient_K, other.thermal_gradient_K)

    best = optimize("test-a")               # Sec. IV design flow
    run(best.optimized_spec(), solver="ice")

Scenarios come from the registry (``test-a``, ``test-b`` and the Fig. 7
``niagara-arch1..3`` stackings, see :func:`scenario_names`), from JSON
files, or from :class:`~repro.scenarios.ScenarioSpec` built in code; a
:class:`~repro.api.Session` keeps solution caches alive across calls, and
the ``repro`` console script (:mod:`repro.cli`) exposes the same facade
from the shell (``repro list``, ``repro run test-a --json``, ``repro
optimize``, ``repro bench``).

Families of runs -- flux sweeps, architecture comparisons -- are first
class: a :class:`~repro.sweeps.SweepSpec` expands one base scenario plus
axes into an ordered scenario list, and :func:`run_many` executes it
through a pluggable executor (``serial``/``thread``/``process``; the
process executor scales past the GIL) while streaming records into a
resumable :class:`~repro.campaign.CampaignStore`::

    campaign = run_many("sweep.json", executor="process", workers=4,
                        out="campaign.jsonl")

Under the facade the package contains:

* :mod:`repro.scenarios` -- declarative scenario specs and the registry;
* :mod:`repro.sweeps` / :mod:`repro.exec` / :mod:`repro.campaign` -- the
  batch layer: sweep expansion, campaign executors, streaming stores;
* :mod:`repro.api` -- the simulator protocol (:class:`~repro.api.FDMSimulator`,
  :class:`~repro.api.ICESimulator`), the shared
  :class:`~repro.api.SimulationResult` schema and the session facade;
* :mod:`repro.thermal` -- the analytical per-unit-length thermal model of a
  microchannel-cooled 3D IC (Sec. III), its state-space/BVP form and a
  multi-channel finite-difference solver;
* :mod:`repro.hydraulics` -- pressure drop (Eq. 9), pumping power and the
  single-reservoir flow network (Eq. 10);
* :mod:`repro.ice` -- a 3D-ICE-like finite-volume thermal simulator used
  for validation and full-die thermal maps;
* :mod:`repro.floorplan` -- UltraSPARC T1 floorplans, the Fig. 7 stackings
  and the Fig. 4 synthetic workloads;
* :mod:`repro.core` -- the paper's contribution: the optimal channel-width
  modulation design flow (Sec. IV), served by a batched, LRU-cached
  :class:`~repro.core.engine.EvaluationEngine`;
* :mod:`repro.ml` -- surrogate models trained from campaign stores
  (exact GP / random-feature ridge), deterministic spec featurization and
  active-learning batch selection; served with uncertainty gating by
  :mod:`repro.serve` (``POST /v1/predict``);
* :mod:`repro.analysis` -- metrics, ASCII map rendering and experiment
  reporting.

The classic programmatic entry points (:class:`ChannelModulationDesigner`,
:func:`solve_structure`, :func:`test_a_structure`, ...) remain fully
supported -- the scenario API is a facade over them, and
``run("test-a")`` reproduces the designer path bit for bit.

The finite-difference hot path is split into a vectorized sparse assembly
(:mod:`repro.thermal.assembly`, with per-shape sparsity-pattern caching)
and pluggable linear-solver backends (:mod:`repro.thermal.backends`):
``"sparse-lu"`` (SuperLU with factorization reuse), ``"sparse-iterative"``
(ILU-preconditioned GMRES), ``"dense"`` and ``"auto"``.  Select a backend
via ``ScenarioSpec(solver=SolverSpec(backend=...))``,
``OptimizerSettings(solver_backend=...)`` or
``solve_structure(..., backend=...)``; list them with
:func:`available_backends`.
"""

from .api import (
    CrossValidationResult,
    FDMSimulator,
    ICESimulator,
    OptimizationRunResult,
    Session,
    SimulationResult,
    Simulator,
    available_simulators,
    cross_validate,
    get_simulator,
    optimize,
    optimize_many,
    register_simulator,
    run,
    run_many,
)
from .campaign import CampaignResult, CampaignStore
from .exec import available_executors, get_executor, register_executor
from .sweeps import SweepAxis, SweepSpec, expand_scenarios
from .config import (
    DEFAULT_EXPERIMENT,
    EFFECTIVE_FLOW_RATE_ML_PER_MIN,
    ExperimentConfig,
    paper_parameters,
)
from .scenarios import (
    GridSpec,
    OptimizerSpec,
    ScenarioSpec,
    SolverSpec,
    WorkloadSpec,
    get_scenario,
    register_scenario,
    resolve_scenario,
    scenario_names,
)
from .transient import PolicySpec, TraceSpec, TransientSpec
from .transient_engine import (
    TransientOutcome,
    simulate_transient,
    simulate_transient_many,
)
from .policies import (
    BangBangFlowPolicy,
    ConstantFlowPolicy,
    FlowPolicy,
    ProportionalFlowPolicy,
    available_policies,
    register_policy,
)
from .core import (
    ChannelModulationDesigner,
    ChannelModulationOptimizer,
    DesignEvaluation,
    EvaluationEngine,
    ModulationResult,
    OptimizerSettings,
)
from .floorplan import (
    Architecture,
    architecture_names,
    get_architecture,
    test_a_structure,
    test_b_structure,
)
from .ml import (
    FeatureSchema,
    GaussianProcessSurrogate,
    RandomFeatureSurrogate,
    Surrogate,
    build_dataset,
    infer_schema,
    load_model,
    make_surrogate,
    save_model,
    select_batch,
)
from .thermal import (
    ChannelGeometry,
    HeatInputProfile,
    MultiChannelStructure,
    PaperParameters,
    SolverBackend,
    TABLE_I,
    TestStructure,
    ThermalSolution,
    WidthProfile,
    available_backends,
    get_backend,
    register_backend,
    solve_finite_difference,
    solve_single_channel,
    solve_structure,
)

__version__ = "1.1.0"

__all__ = [
    "CrossValidationResult",
    "FDMSimulator",
    "ICESimulator",
    "OptimizationRunResult",
    "Session",
    "SimulationResult",
    "Simulator",
    "available_simulators",
    "cross_validate",
    "get_simulator",
    "optimize",
    "optimize_many",
    "register_simulator",
    "run",
    "run_many",
    "CampaignResult",
    "CampaignStore",
    "SweepAxis",
    "SweepSpec",
    "available_executors",
    "expand_scenarios",
    "get_executor",
    "register_executor",
    "GridSpec",
    "OptimizerSpec",
    "ScenarioSpec",
    "SolverSpec",
    "WorkloadSpec",
    "get_scenario",
    "register_scenario",
    "resolve_scenario",
    "scenario_names",
    "PolicySpec",
    "TraceSpec",
    "TransientSpec",
    "TransientOutcome",
    "simulate_transient",
    "simulate_transient_many",
    "BangBangFlowPolicy",
    "ConstantFlowPolicy",
    "FlowPolicy",
    "ProportionalFlowPolicy",
    "available_policies",
    "register_policy",
    "DEFAULT_EXPERIMENT",
    "EFFECTIVE_FLOW_RATE_ML_PER_MIN",
    "ExperimentConfig",
    "paper_parameters",
    "ChannelModulationDesigner",
    "ChannelModulationOptimizer",
    "DesignEvaluation",
    "EvaluationEngine",
    "ModulationResult",
    "OptimizerSettings",
    "FeatureSchema",
    "GaussianProcessSurrogate",
    "RandomFeatureSurrogate",
    "Surrogate",
    "build_dataset",
    "infer_schema",
    "load_model",
    "make_surrogate",
    "save_model",
    "select_batch",
    "Architecture",
    "architecture_names",
    "get_architecture",
    "test_a_structure",
    "test_b_structure",
    "ChannelGeometry",
    "HeatInputProfile",
    "MultiChannelStructure",
    "PaperParameters",
    "SolverBackend",
    "TABLE_I",
    "TestStructure",
    "ThermalSolution",
    "WidthProfile",
    "available_backends",
    "get_backend",
    "register_backend",
    "solve_finite_difference",
    "solve_single_channel",
    "solve_structure",
    "__version__",
]
