"""repro -- Thermal balancing of liquid-cooled 3D-MPSoCs using channel modulation.

A from-scratch Python reproduction of the DATE 2012 paper by Sabry, Sridhar
and Atienza.  The package contains:

* :mod:`repro.thermal` -- the analytical per-unit-length thermal model of a
  microchannel-cooled 3D IC (Sec. III), its state-space/BVP form and a
  multi-channel finite-difference solver;
* :mod:`repro.hydraulics` -- pressure drop (Eq. 9), pumping power and the
  single-reservoir flow network (Eq. 10);
* :mod:`repro.ice` -- a 3D-ICE-like finite-volume thermal simulator used
  for validation and full-die thermal maps;
* :mod:`repro.floorplan` -- UltraSPARC T1 floorplans, the Fig. 7 stackings
  and the Fig. 4 synthetic workloads;
* :mod:`repro.core` -- the paper's contribution: the optimal channel-width
  modulation design flow (Sec. IV), served by a batched, LRU-cached
  :class:`~repro.core.engine.EvaluationEngine`;
* :mod:`repro.analysis` -- metrics, ASCII map rendering and experiment
  reporting.

The finite-difference hot path is split into a vectorized sparse assembly
(:mod:`repro.thermal.assembly`, with per-shape sparsity-pattern caching)
and pluggable linear-solver backends (:mod:`repro.thermal.backends`):
``"sparse-lu"`` (SuperLU with factorization reuse), ``"sparse-iterative"``
(ILU-preconditioned GMRES), ``"dense"`` and ``"auto"``.  Select a backend
via ``OptimizerSettings(solver_backend=...)``,
``ExperimentConfig(solver_backend=...)`` or
``solve_structure(..., backend=...)``; list them with
:func:`available_backends`.

Quickstart::

    from repro import ChannelModulationDesigner, test_a_structure

    designer = ChannelModulationDesigner(test_a_structure())
    result = designer.design()
    print(result.summary()["gradient_reduction"])
    print(designer.engine.stats()["hit_rate"])
"""

from .config import (
    DEFAULT_EXPERIMENT,
    EFFECTIVE_FLOW_RATE_ML_PER_MIN,
    ExperimentConfig,
    paper_parameters,
)
from .core import (
    ChannelModulationDesigner,
    ChannelModulationOptimizer,
    DesignEvaluation,
    EvaluationEngine,
    ModulationResult,
    OptimizerSettings,
)
from .floorplan import (
    Architecture,
    architecture_names,
    get_architecture,
    test_a_structure,
    test_b_structure,
)
from .thermal import (
    ChannelGeometry,
    HeatInputProfile,
    MultiChannelStructure,
    PaperParameters,
    SolverBackend,
    TABLE_I,
    TestStructure,
    ThermalSolution,
    WidthProfile,
    available_backends,
    get_backend,
    register_backend,
    solve_finite_difference,
    solve_single_channel,
    solve_structure,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_EXPERIMENT",
    "EFFECTIVE_FLOW_RATE_ML_PER_MIN",
    "ExperimentConfig",
    "paper_parameters",
    "ChannelModulationDesigner",
    "ChannelModulationOptimizer",
    "DesignEvaluation",
    "EvaluationEngine",
    "ModulationResult",
    "OptimizerSettings",
    "Architecture",
    "architecture_names",
    "get_architecture",
    "test_a_structure",
    "test_b_structure",
    "ChannelGeometry",
    "HeatInputProfile",
    "MultiChannelStructure",
    "PaperParameters",
    "SolverBackend",
    "TABLE_I",
    "TestStructure",
    "ThermalSolution",
    "WidthProfile",
    "available_backends",
    "get_backend",
    "register_backend",
    "solve_finite_difference",
    "solve_single_channel",
    "solve_structure",
    "__version__",
]
