"""Declarative sweep specifications -- families of scenarios as one value.

The paper's headline results are not single runs but *families* of runs:
flux sweeps (Fig. 4), architecture comparisons (Fig. 7), design-space
explorations.  A :class:`SweepSpec` describes such a family declaratively
-- one base :class:`~repro.scenarios.ScenarioSpec` plus *axes* that vary
any spec field -- and expands deterministically into an ordered list of
named scenarios that the executor layer (:mod:`repro.exec`) can run
serially, over threads, or over worker processes.

Three expansion shapes are supported, mirroring common experiment designs:

* ``mode="grid"`` (default) -- the cartesian product of the axes, last
  axis fastest (row-major, like :func:`itertools.product`);
* ``mode="zip"`` -- axes advance in lockstep (all must share one length);
* ``overrides`` -- an explicit list of override mappings; when axes are
  also present every axis combination is crossed with every override.

Axis fields are dotted paths into the scenario dictionary
(:meth:`ScenarioSpec.to_dict`): ``"workload.flux_w_per_cm2"``,
``"workload.architecture"``, ``"grid.n_grid_points"``,
``"solver.backend"``, ``"optimizer.multistart"``,
``"params.flow_rate_per_channel"`` and so on.  Every expanded scenario is
rebuilt through :meth:`ScenarioSpec.from_dict`, so spec validation applies
to each point of the sweep, and expansion is pure: the same sweep always
produces the same scenarios with the same names.

Like scenarios, sweeps round-trip losslessly through JSON
(:meth:`SweepSpec.to_json` / :meth:`SweepSpec.from_json`), so a whole
campaign can live in one checked-in file::

    {
      "name": "flux-arch",
      "base": "niagara-arch1",
      "axes": [
        {"field": "workload.flux_w_per_cm2", "values": [50, 100, 150]},
        {"field": "workload.architecture", "values": ["arch1", "arch2"]}
      ]
    }

Example::

    from repro.sweeps import SweepAxis, SweepSpec
    from repro.scenarios import get_scenario

    sweep = SweepSpec(
        name="flux",
        base=get_scenario("test-a"),
        axes=(SweepAxis("workload.flux_w_per_cm2", (50.0, 100.0)),),
    )
    specs = sweep.scenarios()        # 2 ScenarioSpecs, deterministic names
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .scenarios import ScenarioSpec, resolve_scenario

__all__ = [
    "SweepAxis",
    "SweepSpec",
    "apply_field_overrides",
    "expand_scenarios",
    "is_sweep_mapping",
    "resolve_campaign",
]

#: Expansion modes a sweep can request.
SWEEP_MODES: Tuple[str, ...] = ("grid", "zip")

#: Maximum length of the human-readable slug in expanded scenario names.
_MAX_SLUG = 72


def _set(instance, **values) -> None:
    """Assign coerced values on a frozen dataclass instance."""
    for name, value in values.items():
        object.__setattr__(instance, name, value)


def _canonical(value):
    """Deep-convert a value to its canonical JSON shape.

    Tuples become lists and mapping keys become strings, so an axis value
    written in Python (``(30e-6, 40e-6)``, ``{"n_cols": 10}``) compares,
    serializes and round-trips identically to the same value loaded from
    a sweep JSON file.
    """
    if isinstance(value, Mapping):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    return value


def _format_value(value) -> Optional[str]:
    """Compact rendering of an axis value for scenario names, or None."""
    if isinstance(value, bool):
        return "on" if value else "off"
    if isinstance(value, (int, float)):
        return format(value, "g")
    if isinstance(value, str) and value:
        return value.replace("/", "-").replace(" ", "-")
    return None


def _assign(data: Dict[str, object], dotted: str, value) -> None:
    """Set a dotted-path field inside a scenario dictionary in place."""
    parts = dotted.split(".")
    node = data
    for part in parts[:-1]:
        child = node.get(part)
        if not isinstance(child, dict):
            raise ValueError(
                f"sweep field {dotted!r}: {part!r} is not a section of a "
                f"scenario (sections: {sorted(k for k, v in data.items() if isinstance(v, dict))})"
            )
        node = child
    node[parts[-1]] = value


def apply_field_overrides(
    base: ScenarioSpec,
    overrides: Mapping[str, object],
    name: Optional[str] = None,
    description: Optional[str] = None,
) -> ScenarioSpec:
    """Rebuild ``base`` with dotted-path field overrides applied.

    Overrides go through the plain-data representation and back through
    :meth:`ScenarioSpec.from_dict`, so every expanded point is validated
    exactly like a hand-written spec (unknown fields, range errors and
    inconsistent sections are rejected with the scenarios' own messages).
    """
    data = base.to_dict()
    for field, value in overrides.items():
        _assign(data, field, value)
    if name is not None:
        data["name"] = name
    if description is not None:
        data["description"] = description
    return ScenarioSpec.from_dict(data)


@dataclass(frozen=True)
class SweepAxis:
    """One varied spec field: a dotted path and the values it takes.

    Attributes
    ----------
    field:
        Dotted path into :meth:`ScenarioSpec.to_dict` (for example
        ``"workload.flux_w_per_cm2"`` or ``"solver.backend"``).
    values:
        The ordered values the field takes across the sweep.
    label:
        Optional short label used in expanded scenario names; defaults to
        the last path segment.
    """

    field: str
    values: Tuple[object, ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.field, str) or not self.field:
            raise ValueError(
                f"axis.field must be a non-empty dotted path, got {self.field!r}"
            )
        if self.field == "name" or self.field.startswith("name."):
            raise ValueError(
                "axis.field must not be 'name': expanded scenarios are "
                "named deterministically by the sweep"
            )
        values = tuple(_canonical(value) for value in self.values)
        if not values:
            raise ValueError(f"axis {self.field!r} has no values")
        _set(self, values=values, label=str(self.label))

    @property
    def display_label(self) -> str:
        """The label used in expanded scenario names."""
        return self.label or self.field.rsplit(".", 1)[-1]

    def to_dict(self) -> Dict[str, object]:
        """Plain-data (JSON-compatible) representation of the axis."""
        payload: Dict[str, object] = {
            "field": self.field,
            "values": list(self.values),  # values are canonical already
        }
        if self.label:
            payload["label"] = self.label
        return payload

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepAxis":
        """Rebuild an axis from :meth:`to_dict` output (with validation)."""
        if not isinstance(data, Mapping):
            raise ValueError(f"a sweep axis must be a mapping, got {type(data).__name__}")
        unknown = sorted(set(data) - {"field", "values", "label"})
        if unknown:
            raise ValueError(
                f"sweep axis: unknown field(s) {unknown}; allowed fields are "
                "['field', 'label', 'values']"
            )
        if "field" not in data:
            raise ValueError("sweep axis: the 'field' key is required")
        return cls(
            field=data["field"],
            values=tuple(data.get("values", ())),
            label=data.get("label", ""),
        )


@dataclass(frozen=True)
class SweepSpec:
    """A family of scenarios: one base spec plus the axes that vary it.

    Attributes
    ----------
    name:
        Sweep name; expanded scenarios are named ``{name}/{index}-{slug}``.
    base:
        The :class:`ScenarioSpec` every expansion starts from (a registered
        scenario name or spec mapping is accepted at construction).
    axes:
        The varied fields (see :class:`SweepAxis`).
    mode:
        ``"grid"`` (cartesian product, last axis fastest) or ``"zip"``
        (lockstep; all axes must share one length).
    overrides:
        Optional explicit list of dotted-field override mappings; each
        axis combination is crossed with each override (override values
        win on shared fields).  With no axes, the overrides alone define
        the expansion.
    description:
        One-line human description of the campaign.
    """

    name: str
    base: ScenarioSpec = None  # validated/coerced in __post_init__
    axes: Tuple[SweepAxis, ...] = ()
    mode: str = "grid"
    overrides: Tuple[Tuple[Tuple[str, object], ...], ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"sweep name must be a non-empty string, got {self.name!r}")
        if self.base is None:
            raise ValueError("sweep.base is required (a ScenarioSpec, name or mapping)")
        if not isinstance(self.base, ScenarioSpec):
            _set(self, base=resolve_scenario(self.base))
        axes = []
        for axis in self.axes:
            if isinstance(axis, Mapping):
                axis = SweepAxis.from_dict(axis)
            if not isinstance(axis, SweepAxis):
                raise ValueError(
                    f"sweep.axes entries must be SweepAxis (or mappings), "
                    f"got {type(axis).__name__}"
                )
            axes.append(axis)
        _set(self, axes=tuple(axes), description=str(self.description))
        fields = [axis.field for axis in self.axes]
        duplicates = sorted({field for field in fields if fields.count(field) > 1})
        if duplicates:
            raise ValueError(f"sweep.axes repeat field(s) {duplicates}")
        if self.mode not in SWEEP_MODES:
            raise ValueError(
                f"sweep.mode must be one of {list(SWEEP_MODES)}, got {self.mode!r}"
            )
        if self.mode == "zip" and self.axes:
            lengths = {len(axis.values) for axis in self.axes}
            if len(lengths) > 1:
                raise ValueError(
                    "sweep.mode 'zip' needs axes of equal length, got lengths "
                    f"{[len(axis.values) for axis in self.axes]}"
                )
        overrides = []
        for entry in self.overrides:
            pairs_in = entry.items() if isinstance(entry, Mapping) else entry
            pairs = tuple((str(key), _canonical(value)) for key, value in pairs_in)
            for key, _ in pairs:
                if key == "name":
                    raise ValueError(
                        "sweep.overrides must not set 'name': expanded "
                        "scenarios are named deterministically by the sweep"
                    )
            overrides.append(pairs)
        _set(self, overrides=tuple(overrides))
        # Expanding eagerly surfaces bad fields/values at construction time
        # (each point runs through ScenarioSpec.from_dict validation)
        # instead of mid-campaign; the result is cached so later
        # scenarios() calls (CLI totals, run_many) pay nothing.
        _set(self, _expanded=tuple(self._expand()))

    # -- expansion ---------------------------------------------------------

    def _axis_combos(self) -> List[List[Tuple[str, object]]]:
        """Ordered (field, value) combinations produced by the axes."""
        if not self.axes:
            return [[]]
        per_axis = [
            [(axis.field, value) for value in axis.values] for axis in self.axes
        ]
        if self.mode == "zip":
            return [list(combo) for combo in zip(*per_axis)]
        return [list(combo) for combo in itertools.product(*per_axis)]

    @property
    def n_scenarios(self) -> int:
        """Number of scenarios the sweep expands into."""
        return len(self._expanded)

    def _slug(self, combo: Sequence[Tuple[str, object]], override_index: int) -> str:
        """Human-readable tail of an expanded scenario name."""
        labels = {axis.field: axis.display_label for axis in self.axes}
        parts = []
        for field, value in combo:
            rendered = _format_value(value)
            if rendered is not None:
                parts.append(f"{labels.get(field, field)}={rendered}")
        if len(self.overrides) > 1:
            parts.append(f"case{override_index}")
        slug = "_".join(parts)
        return slug[:_MAX_SLUG]

    def scenarios(self) -> List[ScenarioSpec]:
        """The ordered, named scenario specs this sweep expands into.

        Expansion is deterministic: grid mode walks the cartesian product
        with the last axis fastest, zip mode walks the axes in lockstep,
        and each combination is crossed with each explicit override (in
        list order).  Names are ``{sweep}/{index:03d}-{slug}``.  The
        expansion is computed once at construction and cached.
        """
        return list(self._expanded)

    def override_mappings(self) -> List[Dict[str, object]]:
        """The merged dotted-field overrides of each expansion point.

        One mapping per expanded scenario, aligned with :meth:`scenarios`
        (axis combination values first, explicit override values winning
        on shared fields).  This is the sweep's expansion *recipe* in
        plain data: ``SweepSpec(name, base, overrides=override_mappings())``
        reproduces the same points -- which is how
        :mod:`repro.ml.active` turns acquisition-selected candidates back
        into an ordinary, resumable campaign.
        """
        mappings: List[Dict[str, object]] = []
        overrides = [dict(pairs) for pairs in self.overrides] or [{}]
        for combo in self._axis_combos():
            for override in overrides:
                merged = dict(combo)
                merged.update(override)
                mappings.append(merged)
        return mappings

    def _expand(self) -> List[ScenarioSpec]:
        combos = self._axis_combos()
        n_overrides = len(self.overrides) or 1
        expanded: List[ScenarioSpec] = []
        for index, merged in enumerate(self.override_mappings()):
            combo = combos[index // n_overrides]
            override_index = index % n_overrides
            slug = self._slug(combo, override_index)
            name = f"{self.name}/{index:03d}" + (f"-{slug}" if slug else "")
            description = self.description or (
                f"{self.name} sweep point {index} over {self.base.name}"
            )
            expanded.append(
                apply_field_overrides(
                    self.base, merged, name=name, description=description
                )
            )
        return expanded

    def scenario_names(self) -> List[str]:
        """Names of the expanded scenarios, in expansion order."""
        return [spec.name for spec in self.scenarios()]

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-data (JSON-compatible) representation of the sweep.

        This form feeds the serve queue's ``job_hash`` resume keys, so the
        fields below are frozen: they serialize unconditionally, byte for
        byte.  Any optional field added in the future must be omitted
        while it holds its default (see
        :func:`repro.scenarios._non_default_fields`) so stored sweep
        hashes keep resolving.
        """
        return {
            "name": self.name,
            "description": self.description,
            "base": self.base.to_dict(),
            "axes": [axis.to_dict() for axis in self.axes],
            "mode": self.mode,
            "overrides": [dict(pairs) for pairs in self.overrides],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepSpec":
        """Rebuild a sweep from :meth:`to_dict` output (with validation).

        ``base`` may be a full scenario mapping, a registered scenario
        name, or a :class:`ScenarioSpec`.
        """
        if not isinstance(data, Mapping):
            raise ValueError(f"a sweep must be a mapping, got {type(data).__name__}")
        allowed = {"name", "description", "base", "axes", "mode", "overrides"}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ValueError(
                f"sweep: unknown field(s) {unknown}; allowed fields are "
                f"{sorted(allowed)}"
            )
        for key in ("name", "base"):
            if key not in data:
                raise ValueError(f"sweep: the {key!r} field is required")
        return cls(
            name=data["name"],
            base=data["base"],
            axes=tuple(data.get("axes", ())),
            mode=data.get("mode", "grid"),
            overrides=tuple(data.get("overrides", ())),
            description=data.get("description", ""),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON representation of the sweep."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Rebuild a sweep from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, os.PathLike]) -> None:
        """Write the sweep to a JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "SweepSpec":
        """Read a sweep from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def is_sweep_mapping(data) -> bool:
    """True when a mapping looks like a sweep (has a ``base`` section)."""
    return isinstance(data, Mapping) and "base" in data


def resolve_campaign(sweep) -> Tuple[str, List[ScenarioSpec]]:
    """Campaign name + ordered scenario specs of anything campaign-shaped.

    Accepts a :class:`SweepSpec`, a sweep mapping (with a ``base`` key), a
    path to a sweep *or* scenario JSON file, a sequence of scenario-likes,
    or any single scenario-like accepted by
    :func:`~repro.scenarios.resolve_scenario` (spec, registered name,
    mapping) -- the latter expand to a one-scenario campaign.  The name is
    the sweep's name (wherever the sweep came from), the single scenario's
    name, or ``"campaign"`` for ad-hoc scenario sequences.
    """
    if is_sweep_mapping(sweep):
        sweep = SweepSpec.from_dict(sweep)
    elif isinstance(sweep, (str, os.PathLike)):
        text = os.fspath(sweep)
        if os.path.exists(text):
            with open(text, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            sweep = (
                SweepSpec.from_dict(data)
                if is_sweep_mapping(data)
                else ScenarioSpec.from_dict(data)
            )
        else:
            sweep = resolve_scenario(text)
    if isinstance(sweep, SweepSpec):
        return sweep.name, sweep.scenarios()
    if isinstance(sweep, Sequence) and not isinstance(sweep, (str, bytes, Mapping)):
        return "campaign", [resolve_scenario(item) for item in sweep]
    spec = resolve_scenario(sweep)
    return spec.name, [spec]


def expand_scenarios(sweep) -> List[ScenarioSpec]:
    """The ordered scenario specs of anything campaign-shaped.

    See :func:`resolve_campaign` for the accepted shapes.
    """
    return resolve_campaign(sweep)[1]
