"""Trace-driven transient simulation: the policy-aware, batchable engine.

This module turns a transient scenario (a
:class:`~repro.scenarios.ScenarioSpec` carrying a
:class:`~repro.transient.TransientSpec`) into a
:class:`TransientOutcome`: the subsampled field history, per-step scalar
observables (peak silicon temperature, coolant rise), the flow-scale
schedule the runtime policy produced, and the transient metrics campaigns
record (peak transient temperature, time above threshold, thermal-cycling
amplitude, pumping energy).

Two solve paths share one stepping core
(:meth:`repro.ice.transient.TransientSolver.integrate`):

:func:`simulate_transient`
    The reference path: one scenario, stepped chunk by chunk.  At every
    control interval the flow policy observes the peak temperature and may
    change the flow scale; a scale change rebuilds the stack at the scaled
    flow (the assembly's cached sparsity pattern makes this cheap) and the
    solver backend's keyed factorization cache makes revisited scales --
    e.g. the two levels of a bang-bang controller -- pay only triangular
    solves.

:func:`simulate_transient_many`
    The vectorized path: scenarios whose implicit systems are
    content-identical (same stack geometry, widths, flow and time step --
    they may differ arbitrarily in traces and static heat maps) are
    *grouped* and stepped together, one multi-RHS
    :meth:`~repro.thermal.backends.SolverBackend.solve_matrix` call per
    time step over one shared factorization.  Every trajectory is
    bit-identical to what :func:`simulate_transient` produces for the same
    scenario (the backend tests and the transient test suite assert exact
    equality), so batching is purely a throughput optimization.

Long traces do not blow memory: full-field snapshots are kept every
``store_every`` steps only, while the scalar observables driving metrics
and policies are tracked at every step.
"""

from __future__ import annotations

import hashlib
import json
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from .analysis.metrics import (
    piecewise_integral,
    thermal_cycling_amplitude,
    time_above_threshold,
)
from .core.rom import ReducedTransientModel, build_reduced_model, reduced_model_for
from .hydraulics.network import FlowNetwork
from .ice.results import TransientResult
from .ice.transient import TransientSolver, result_from_snapshots
from .policies import FlowPolicy, policy_from_spec
from .scenarios import ScenarioSpec, resolve_scenario
from .thermal.backends import SolverBackend, resolve_backend
from .thermal.correlations import LAMINAR_REYNOLDS_LIMIT, reynolds_number
from .thermal.geometry import ChannelGeometry, WidthProfile

__all__ = [
    "TransientOutcome",
    "simulate_transient",
    "simulate_transient_many",
]

#: Flow scales are quantized to this many decimals before a stack is built
#: for them, so revisited levels (bang-bang toggling, a proportional
#: controller hovering at its clip) reuse contexts and factorizations
#: instead of accumulating near-duplicate matrices.
_SCALE_DECIMALS = 6


@dataclass
class TransientOutcome:
    """Everything one transient run produced.

    Attributes
    ----------
    scenario:
        Name of the scenario that ran.
    result:
        The subsampled per-layer field history
        (:class:`~repro.ice.results.TransientResult`, solid layers only).
    step_times_s / peak_history_K / coolant_rise_history_K:
        Scalar observables at *every* step (index 0 is the initial state):
        absolute time, peak silicon temperature over all solid cells, and
        the largest coolant outlet rise over the inlet temperature.
    flow_times_s / flow_scales:
        The flow-scale schedule the policy produced: ``flow_scales[i]``
        applied from ``flow_times_s[i]`` until the next entry (or the end
        of the run).
    metrics:
        The transient reducers campaigns record (peak transient
        temperature, time above threshold, cycling amplitude, pumping
        energy, ...).
    metadata:
        Provenance: backend, grouping, integration settings.
    """

    scenario: str
    result: TransientResult
    step_times_s: np.ndarray
    peak_history_K: np.ndarray
    coolant_rise_history_K: np.ndarray
    flow_times_s: np.ndarray
    flow_scales: np.ndarray
    metrics: Dict[str, float] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)


class _Context:
    """One scenario's solver state at one flow scale."""

    def __init__(
        self,
        spec: ScenarioSpec,
        scale: float,
        backend: SolverBackend,
    ) -> None:
        self.spec = spec
        self.scale = float(scale)
        transient = spec.transient
        if self.scale == 1.0:
            scaled = spec
        else:
            base_flow = spec.experiment_config().params.flow_rate_per_channel
            scaled = spec.with_params(
                flow_rate_per_channel=base_flow * self.scale
            )
        stack = scaled.build_stack()
        for trace in transient.traces:
            try:
                index = stack.layer_index(trace.layer)
            except KeyError:
                raise ValueError(
                    f"scenario {spec.name!r}: trace layer {trace.layer!r} is "
                    f"not a layer of the stack; solid layers: "
                    f"{stack.solid_layer_names()}"
                ) from None
            if stack.layers[index].is_cavity:
                raise ValueError(
                    f"scenario {spec.name!r}: trace layer {trace.layer!r} is "
                    "a cavity; traces drive solid layers only"
                )
        self.stack = stack
        self.solver = TransientSolver(
            stack, power_schedule=transient.schedule(), backend=backend
        )
        system = self.solver.system
        solid, coolant = [], []
        for layer_index, layer in enumerate(stack.layers):
            start = system.index(layer_index, 0, 0)
            cells = np.arange(start, start + system.n_cells_per_layer)
            (coolant if layer.is_cavity else solid).append(cells)
        self.solid_cells = np.concatenate(solid)
        self.coolant_cells = (
            np.concatenate(coolant) if coolant else np.empty(0, dtype=int)
        )
        self.inlet_temperature = float(
            spec.experiment_config().params.inlet_temperature
        )

    def peak(self, state: np.ndarray) -> float:
        """Peak silicon temperature of a state vector (K)."""
        return float(np.max(state[self.solid_cells]))

    def coolant_rise(self, state: np.ndarray) -> float:
        """Largest coolant rise over the inlet temperature (K)."""
        if self.coolant_cells.size == 0:
            return 0.0
        return float(np.max(state[self.coolant_cells]) - self.inlet_temperature)

    def start_temperature(self) -> float:
        """Initial uniform temperature of the run (K)."""
        initial = self.spec.transient.initial_temperature_K
        if initial is not None:
            return float(initial)
        return float(self.stack.ambient_temperature)


class _Recorder:
    """Per-scenario history bookkeeping shared by both solve paths."""

    def __init__(self, ctx: _Context, n_steps: int, store_every: int) -> None:
        self.ctx = ctx
        self.n_steps = int(n_steps)
        self.store_every = int(store_every)
        start = np.full(
            ctx.solver.system.n_unknowns, ctx.start_temperature()
        )
        self.state = start
        self.times: List[float] = [0.0]
        self.snapshots: List[np.ndarray] = [start.copy()]
        self.step_times: List[float] = [0.0]
        self.peaks: List[float] = [ctx.peak(start)]
        self.rises: List[float] = [ctx.coolant_rise(start)]
        self.flow_times: List[float] = [0.0]
        self.flow_scales: List[float] = [ctx.scale]

    def observe(self, global_step: int, time: float, state: np.ndarray) -> None:
        """Record one completed step (scalars always, fields subsampled)."""
        self.step_times.append(time)
        self.peaks.append(self.ctx.peak(state))
        self.rises.append(self.ctx.coolant_rise(state))
        if global_step % self.store_every == 0 or global_step == self.n_steps:
            self.times.append(time)
            self.snapshots.append(state.copy())

    def change_flow(self, time: float, ctx: _Context) -> None:
        """Record a policy-driven context (flow-scale) switch."""
        self.ctx = ctx
        self.flow_times.append(time)
        self.flow_scales.append(ctx.scale)


def _quantize(scale: float) -> float:
    return round(float(scale), _SCALE_DECIMALS)


def _hydraulics_at(
    spec: ScenarioSpec, ctx: _Context, scale: float
) -> tuple:
    """``(pumping power W, max pressure drop Pa)`` at one flow scale.

    Per-lane Eq. (9) pressure drops at the scaled per-channel flow feed
    the per-channel pumping power ``dP * V_dot``; the mean over the
    modeled lanes is scaled up to every physical channel of every cavity
    (the lanes are the cavity's symmetric manifold clusters).
    """
    params = spec.experiment_config().params.with_overrides(
        channel_length=spec.channel_length()
    )
    geometry = ChannelGeometry.from_parameters(params)
    profiles = spec.width_profiles()
    if profiles is None:
        profiles = [
            WidthProfile.uniform(geometry.max_width, geometry.length)
        ] * spec.n_lanes
    network = FlowNetwork(
        geometry,
        profiles,
        flow_rate_per_channel=params.flow_rate_per_channel * scale,
        coolant=params.coolant,
    )
    per_lane = network.total_pumping_power / network.n_channels
    n_cavities = len(ctx.stack.cavity_layer_names())
    n_physical = ctx.stack.channels_per_cavity() * max(n_cavities, 1)
    return per_lane * n_physical, network.max_pressure_drop


def _max_reynolds(spec: ScenarioSpec, flow_scales: np.ndarray) -> float:
    """Worst-case channel Reynolds number over the applied flow scales.

    The Shah & London correlations behind every convective conductance are
    laminar-only; a runtime policy scaling the flow up can silently push
    the channels past that regime.  Re is evaluated at the narrowest
    channel cross-section (fixed per-channel flow -> the smallest
    ``w + h`` maximizes ``Re = 2 rho V_dot / (mu (w + h))``) and at the
    largest applied flow scale.
    """
    params = spec.experiment_config().params.with_overrides(
        channel_length=spec.channel_length()
    )
    geometry = ChannelGeometry.from_parameters(params)
    profiles = spec.width_profiles()
    if profiles is None:
        min_width = geometry.max_width
    else:
        min_width = min(min(p.segment_widths) for p in profiles)
    peak_flow = params.flow_rate_per_channel * float(np.max(flow_scales))
    return float(
        reynolds_number(
            peak_flow, min_width, params.channel_height, params.coolant
        )
    )


def _finalize(
    spec: ScenarioSpec,
    recorder: _Recorder,
    backend: SolverBackend,
    *,
    batched: bool,
    group_size: int,
    wall_time_s: float,
    rom_stats: Optional[Dict[str, object]] = None,
) -> TransientOutcome:
    """Assemble histories, metrics and provenance into the outcome."""
    transient = spec.transient
    ctx = recorder.ctx
    system = ctx.solver.system
    result = result_from_snapshots(
        system,
        ctx.stack,
        recorder.times,
        recorder.snapshots,
        metadata={
            "solver": "ice-transient-backward-euler",
            "backend": backend.name,
            "assembly": system.method,
            "time_step": transient.time_step_s,
            "n_steps": transient.n_steps,
            "store_every": transient.store_every,
        },
    )
    step_times = np.asarray(recorder.step_times)
    peaks = np.asarray(recorder.peaks)
    rises = np.asarray(recorder.rises)
    flow_times = np.asarray(recorder.flow_times)
    flow_scales = np.asarray(recorder.flow_scales)
    hydraulics = [_hydraulics_at(spec, ctx, scale) for scale in flow_scales]
    pumping_powers = np.array([power for power, _ in hydraulics])
    # Time integrals run over the time actually simulated: when duration_s
    # is not a whole multiple of the step, round(duration/dt) steps were
    # taken and the final recorded time -- not the requested duration --
    # is the honest upper bound.
    end_time = float(step_times[-1])
    final = result.final_maps()
    metrics: Dict[str, float] = {
        "peak_transient_temperature_K": float(np.max(peaks)),
        "final_peak_temperature_K": float(peaks[-1]),
        "final_thermal_gradient_K": final.thermal_gradient(),
        "time_above_threshold_s": time_above_threshold(
            step_times, peaks, transient.threshold_K
        ),
        "threshold_K": transient.threshold_K,
        "thermal_cycling_amplitude_K": thermal_cycling_amplitude(peaks),
        "max_coolant_rise_K": float(np.max(rises)),
        "pumping_energy_J": piecewise_integral(
            flow_times, pumping_powers, end_time
        ),
        "mean_flow_scale": piecewise_integral(
            flow_times, flow_scales, end_time
        )
        / end_time,
        # The steady pressure_drops_Pa fields describe the channel design
        # at *nominal* flow; this is the Eq. (9) worst-case drop at the
        # largest flow scale the policy actually applied.
        "max_pressure_drop_at_peak_flow_Pa": float(
            max(drop for _, drop in hydraulics)
        ),
        "n_flow_changes": int(np.count_nonzero(np.diff(flow_scales))),
    }
    # Correlation-validity check: every conductance in the model comes
    # from laminar-only correlations, so flag (instead of silently
    # extrapolating) when the policy's peak flow leaves the laminar
    # regime at the narrowest channel cross-section.
    max_reynolds = _max_reynolds(spec, flow_scales)
    metrics["max_reynolds"] = max_reynolds
    metrics["laminar_violated"] = bool(max_reynolds >= LAMINAR_REYNOLDS_LIMIT)
    metadata: Dict[str, object] = {
        "backend": backend.name,
        "policy": transient.policy.kind,
        "batched": batched,
        "group_size": group_size,
        "n_steps": transient.n_steps,
        "time_step_s": transient.time_step_s,
        "duration_s": transient.duration_s,
        "simulated_duration_s": end_time,
        "store_every": transient.store_every,
        "n_unknowns": system.n_unknowns,
        "wall_time_s": wall_time_s,
    }
    if rom_stats is not None and (
        rom_stats.get("rom")
        or rom_stats.get("n_rom_builds")
        or rom_stats.get("n_rom_steps")
    ):
        # Measured-error contract: rom_* metrics appear exactly when the
        # trajectory itself was reduced; MPC rollouts over a full
        # trajectory surface only the build/step counters in metadata.
        if rom_stats.get("rom"):
            metrics["rom_order"] = int(rom_stats["rom_order"])
            metrics["rom_peak_abs_err_K"] = float(
                rom_stats["rom_peak_abs_err_K"]
            )
            metadata["rom_check_stride"] = int(rom_stats["rom_check_stride"])
        metadata["rom"] = bool(rom_stats.get("rom", False))
        metadata["rom_mode"] = transient.rom.mode
        metadata["n_rom_builds"] = int(rom_stats.get("n_rom_builds", 0))
        metadata["n_rom_steps"] = int(rom_stats.get("n_rom_steps", 0))
    return TransientOutcome(
        scenario=spec.name,
        result=result,
        step_times_s=step_times,
        peak_history_K=peaks,
        coolant_rise_history_K=rises,
        flow_times_s=flow_times,
        flow_scales=flow_scales,
        metrics=metrics,
        metadata=metadata,
    )


def _require_transient(spec: ScenarioSpec) -> None:
    if spec.transient is None:
        raise ValueError(
            f"scenario {spec.name!r} has no transient section; the transient "
            "engine runs transient scenarios only (use the steady simulators "
            "for steady specs)"
        )


def simulate_transient(
    scenario,
    backend: Union[None, str, SolverBackend] = None,
) -> TransientOutcome:
    """Run one transient scenario step by step (the reference path).

    ``backend`` overrides the spec's solver backend (a registry name from
    :mod:`repro.thermal.backends`, a backend instance, or None for the
    spec's own).  The run is chunked by the policy's control interval;
    with an inactive policy this is exactly one
    :meth:`~repro.ice.transient.TransientSolver.integrate` call, so the
    engine and the plain transient solver agree bit for bit.
    """
    spec = resolve_scenario(scenario)
    _require_transient(spec)
    backend = resolve_backend(
        backend if backend is not None else spec.solver.backend
    )
    start_wall = _time.perf_counter()
    transient = spec.transient
    policy = policy_from_spec(transient.policy)
    recorder, rom_stats = _integrate_controlled(spec, policy, backend)
    wall_time = _time.perf_counter() - start_wall
    return _finalize(
        spec,
        recorder,
        backend,
        batched=False,
        group_size=1,
        wall_time_s=wall_time,
        rom_stats=rom_stats,
    )


def _reduced_model_for(
    ctx: _Context, transient, backend: SolverBackend
) -> tuple:
    """``(model, built)`` for one context, through the bounded ROM cache.

    The cache key is derived from the same content the batched engine
    groups on -- the implicit matrix's byte digest -- extended with the
    input content (static-load digest, trace specs, duration) and the
    build settings, so any two scenarios that would build bit-identical
    bases share one.
    """
    solver = ctx.solver
    rom = transient.rom
    implicit, c_over_dt, token = solver.implicit_system(transient.time_step_s)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(implicit.data.tobytes())
    digest.update(implicit.indices.tobytes())
    digest.update(implicit.indptr.tobytes())
    base_rhs = solver.rhs_at(0.0)
    rhs_digest = hashlib.blake2b(base_rhs.tobytes(), digest_size=16)
    key = (
        "transient-rom",
        backend.name,
        token,
        digest.hexdigest(),
        implicit.shape[0],
        rhs_digest.hexdigest(),
        tuple(
            json.dumps(trace.to_dict(), sort_keys=True)
            for trace in transient.traces
        ),
        transient.time_step_s,
        transient.duration_s,
        rom.order,
        rom.tolerance,
    )

    system = solver.system
    row_blocks = []
    for trace in transient.traces:
        start = system.index(ctx.stack.layer_index(trace.layer), 0, 0)
        row_blocks.append(np.arange(start, start + system.n_cells_per_layer))
    input_rows = (
        np.unique(np.concatenate(row_blocks)) if row_blocks else None
    )

    def factory() -> ReducedTransientModel:
        # Sample the trace-driven load at a handful of times across the
        # run (plus the first step) so the starting block spans every
        # spatial pattern the schedule can produce.
        directions = []
        sample_times = sorted(
            {transient.time_step_s}
            | {
                fraction * transient.duration_s
                for fraction in (0.125, 0.375, 0.625, 0.875)
            }
        )
        for sample_time in sample_times:
            delta = solver.rhs_at(sample_time) - base_rhs
            if float(np.linalg.norm(delta)) > 0.0:
                directions.append(delta)

        def solve(rhs: np.ndarray) -> np.ndarray:
            return solver.backend.solve(implicit, rhs, token)

        return build_reduced_model(
            implicit,
            c_over_dt,
            solve,
            base_rhs,
            directions,
            solver.rhs_at,
            order=rom.order,
            tolerance=rom.tolerance,
            input_rows=input_rows,
            outputs={"solid": ctx.solid_cells, "coolant": ctx.coolant_cells},
        )

    return reduced_model_for(key, factory)


def _integrate_controlled(
    spec: ScenarioSpec, policy: FlowPolicy, backend: SolverBackend
) -> tuple:
    """Step one scenario to the end, consulting the policy each interval.

    Returns ``(recorder, rom_stats)``.  The trajectory advances through
    the full integrator or the reduced one depending on the spec's
    ``rom`` block; either way, a planning policy (one exposing
    ``bind_planner``) is handed a reduced-rollout planner, so MPC control
    is affordable even over full trajectories.
    """
    transient = spec.transient
    n_steps = transient.n_steps
    dt = transient.time_step_s
    control_steps = transient.control_steps
    contexts: Dict[float, _Context] = {}
    models: Dict[float, ReducedTransientModel] = {}
    rom_stats: Dict[str, object] = {"n_rom_builds": 0, "n_rom_steps": 0}

    def context_for(scale: float) -> _Context:
        scale = _quantize(scale)
        ctx = contexts.get(scale)
        if ctx is None:
            ctx = _Context(spec, scale, backend)
            contexts[scale] = ctx
        return ctx

    def model_for(ctx: _Context) -> ReducedTransientModel:
        model = models.get(ctx.scale)
        if model is None:
            model, built = _reduced_model_for(ctx, transient, backend)
            models[ctx.scale] = model
            if built:
                rom_stats["n_rom_builds"] += 1
        return model

    ctx = context_for(policy.initial_scale())
    recorder = _Recorder(ctx, n_steps, transient.store_every)

    if hasattr(policy, "bind_planner"):

        def plan(scale: float, horizon_s: float) -> float:
            """Predicted peak T over the horizon at one candidate scale."""
            model = model_for(context_for(_quantize(scale)))
            x = model.project(recorder.state)
            steps = max(1, int(round(horizon_s / dt)))
            base_step = int(round(recorder.step_times[-1] / dt))
            predicted = -np.inf
            for ahead in range(1, steps + 1):
                x = model.step(x, (base_step + ahead) * dt)
                predicted = max(predicted, model.output_max("solid", x))
            rom_stats["n_rom_steps"] += steps
            return float(predicted)

        policy.bind_planner(plan)

    if transient.rom_active:
        _advance_reduced(spec, policy, recorder, context_for, model_for, rom_stats)
    else:
        _advance_full(spec, policy, recorder, context_for)
    return recorder, rom_stats


def _advance_full(
    spec: ScenarioSpec,
    policy: FlowPolicy,
    recorder: _Recorder,
    context_for: Callable[[float], _Context],
) -> None:
    """The reference path: full-state backward-Euler stepping."""
    transient = spec.transient
    n_steps = transient.n_steps
    dt = transient.time_step_s
    control_steps = transient.control_steps
    global_step = 0
    while global_step < n_steps:
        chunk = min(control_steps, n_steps - global_step)
        offset = global_step

        def on_step(step: int, time: float, state: np.ndarray) -> None:
            recorder.observe(offset + step, time, state)

        recorder.state = recorder.ctx.solver.integrate(
            recorder.state,
            step_offset=offset,
            n_steps=chunk,
            time_step=dt,
            on_step=on_step,
        )
        global_step += chunk
        if global_step < n_steps and transient.policy.control_interval_s > 0.0:
            scale = _quantize(
                policy.update(recorder.step_times[-1], recorder.peaks[-1])
            )
            if scale != recorder.ctx.scale:
                recorder.change_flow(recorder.step_times[-1], context_for(scale))


def _advance_reduced(
    spec: ScenarioSpec,
    policy: FlowPolicy,
    recorder: _Recorder,
    context_for: Callable[[float], _Context],
    model_for: Callable[[_Context], ReducedTransientModel],
    rom_stats: Dict[str, object],
) -> None:
    """The reduced path: project, step in the Krylov subspace, lift on demand.

    Scalar observables (peak temperature, coolant rise) come from the
    model's output maps every step; full states are reconstructed only at
    stored-snapshot steps and control-interval boundaries.  At every
    ``check_stride`` steps (and at the final step) one *full* implicit
    step is taken from the lifted reduced state and its peak is compared
    to the reduced prediction -- the maximum discrepancy is reported as
    ``rom_peak_abs_err_K``.
    """
    transient = spec.transient
    n_steps = transient.n_steps
    dt = transient.time_step_s
    control_steps = transient.control_steps
    store_every = transient.store_every
    check_stride = transient.rom.check_every or max(1, n_steps // 4)
    max_abs_err = 0.0
    orders: List[int] = []
    global_step = 0
    while global_step < n_steps:
        chunk = min(control_steps, n_steps - global_step)
        ctx = recorder.ctx
        model = model_for(ctx)
        orders.append(model.order)
        implicit, c_over_dt, token = ctx.solver.implicit_system(dt)
        x = model.project(recorder.state)
        # The chunk advances through the factored recurrence
        # ``x_{k+1} = P x_k + M^{-1} Vᵀ b_k``: all rhs projections solve
        # in one dense call, each step is one order-sized matvec, and the
        # scalar observables of the whole chunk come from two BLAS-3
        # products over the stacked reduced states.
        times = (global_step + np.arange(1, chunk + 1)) * dt
        projected = np.empty((model.order, chunk))
        for column, time in enumerate(times):
            projected[:, column] = model.project_rhs(float(time))
        forced = model.solve_projected(projected)
        propagation = model.propagation
        states = np.empty((model.order, chunk))
        x_start = x
        for column in range(chunk):
            x = propagation @ x + forced[:, column]
            states[:, column] = x
        rom_stats["n_rom_steps"] = int(rom_stats["n_rom_steps"]) + chunk
        peaks = model.output_max_many("solid", states)
        if ctx.coolant_cells.size == 0:
            rises = np.zeros(chunk)
        else:
            rises = (
                model.output_max_many("coolant", states)
                - ctx.inlet_temperature
            )
        recorder.step_times.extend(float(time) for time in times)
        recorder.peaks.extend(float(peak) for peak in peaks)
        recorder.rises.extend(float(rise) for rise in rises)
        for column in range(chunk):
            global_index = global_step + column + 1
            checkpoint = (
                global_index % check_stride == 0 or global_index == n_steps
            )
            if checkpoint:
                x_prev = states[:, column - 1] if column else x_start
                reference = ctx.solver.backend.solve(
                    implicit,
                    ctx.solver.rhs_at(float(times[column]))
                    + c_over_dt @ model.lift(x_prev),
                    token,
                )
                max_abs_err = max(
                    max_abs_err,
                    abs(ctx.peak(reference) - float(peaks[column])),
                )
            if global_index % store_every == 0 or global_index == n_steps:
                recorder.times.append(float(times[column]))
                recorder.snapshots.append(model.lift(states[:, column]))
        recorder.state = model.lift(states[:, -1])
        global_step += chunk
        if global_step < n_steps and transient.policy.control_interval_s > 0.0:
            scale = _quantize(
                policy.update(recorder.step_times[-1], recorder.peaks[-1])
            )
            if scale != recorder.ctx.scale:
                recorder.change_flow(recorder.step_times[-1], context_for(scale))
    rom_stats["rom"] = True
    rom_stats["rom_order"] = max(orders)
    rom_stats["rom_peak_abs_err_K"] = float(max_abs_err)
    rom_stats["rom_check_stride"] = int(check_stride)


# -- batched path -----------------------------------------------------------


def _group_token(ctx: _Context, transient) -> tuple:
    """Hashable identity of a scenario's implicit system and time axis.

    Scenarios grouped under one token share the implicit matrix bit for
    bit (same sparsity pattern and coefficient values -- geometry, widths,
    flow and time step all agree), the same step count and the same
    initial temperature, so their trajectories can advance through one
    factorization; traces, static heat maps and thresholds may differ
    freely (they only shape the right-hand sides and the metrics).
    """
    implicit, c_over_dt, token = ctx.solver.implicit_system(
        transient.time_step_s
    )
    digest = hashlib.blake2b(digest_size=16)
    digest.update(implicit.data.tobytes())
    digest.update(implicit.indices.tobytes())
    digest.update(implicit.indptr.tobytes())
    return (
        token,
        digest.hexdigest(),
        implicit.shape,
        transient.time_step_s,
        transient.n_steps,
        transient.store_every,
        ctx.start_temperature(),
    )


def simulate_transient_many(
    scenarios: Sequence,
    backend: Union[None, str, SolverBackend] = None,
) -> List[TransientOutcome]:
    """Run many transient scenarios, batching compatible ones per step.

    Scenarios with an inactive (constant-flow) policy whose implicit
    systems are content-identical advance together: one
    :meth:`~repro.thermal.backends.SolverBackend.solve_matrix` call per
    time step back-substitutes every member through one shared
    factorization.  Scenarios with reactive policies -- whose flow (and
    hence matrix) can diverge mid-run -- and singleton groups fall back to
    :func:`simulate_transient`.  Results are returned in input order and
    are bit-identical to the per-scenario reference path.
    """
    specs = [resolve_scenario(scenario) for scenario in scenarios]
    for spec in specs:
        _require_transient(spec)
    outcomes: List[Optional[TransientOutcome]] = [None] * len(specs)
    groups: Dict[tuple, List[int]] = {}
    contexts: Dict[int, _Context] = {}
    for index, spec in enumerate(specs):
        spec_backend = resolve_backend(
            backend if backend is not None else spec.solver.backend
        )
        if spec.transient.rom_active or spec.transient.policy.is_reactive:
            # ROM scenarios route through the reference path: the global
            # model cache already amortizes basis builds across members,
            # and reusing one code path keeps serial/batched trajectories
            # bit-identical by construction.
            outcomes[index] = simulate_transient(spec, backend=spec_backend)
            continue
        policy = policy_from_spec(spec.transient.policy)
        ctx = _Context(spec, _quantize(policy.initial_scale()), spec_backend)
        contexts[index] = ctx
        key = (id(spec_backend),) + _group_token(ctx, spec.transient)
        groups.setdefault(key, []).append(index)
    for members in groups.values():
        if len(members) == 1:
            index = members[0]
            ctx = contexts[index]
            start_wall = _time.perf_counter()
            recorder = _Recorder(
                ctx, specs[index].transient.n_steps,
                specs[index].transient.store_every,
            )
            recorder.state = ctx.solver.integrate(
                recorder.state,
                step_offset=0,
                n_steps=specs[index].transient.n_steps,
                time_step=specs[index].transient.time_step_s,
                on_step=lambda step, time, state: recorder.observe(
                    step, time, state
                ),
            )
            outcomes[index] = _finalize(
                specs[index],
                recorder,
                ctx.solver.backend,
                batched=False,
                group_size=1,
                wall_time_s=_time.perf_counter() - start_wall,
            )
            continue
        outcomes_for = _integrate_group(
            [specs[index] for index in members],
            [contexts[index] for index in members],
        )
        for index, outcome in zip(members, outcomes_for):
            outcomes[index] = outcome
    return outcomes


def _integrate_group(
    specs: List[ScenarioSpec], contexts: List[_Context]
) -> List[TransientOutcome]:
    """Advance one group of matrix-compatible scenarios in lockstep."""
    start_wall = _time.perf_counter()
    transient = specs[0].transient
    n_steps = transient.n_steps
    dt = transient.time_step_s
    lead = contexts[0].solver
    implicit, c_over_dt, token = lead.implicit_system(dt)
    backend = lead.backend
    recorders = [
        _Recorder(ctx, spec.transient.n_steps, spec.transient.store_every)
        for spec, ctx in zip(specs, contexts)
    ]
    states = np.column_stack([recorder.state for recorder in recorders])
    solve_matrix = getattr(backend, "solve_matrix", None)
    for step in range(1, n_steps + 1):
        time = step * dt
        rhs = np.column_stack(
            [ctx.solver.rhs_at(time) for ctx in contexts]
        ) + c_over_dt @ states
        if solve_matrix is not None:
            states = solve_matrix(implicit, rhs, token)
        else:  # custom backend without multi-RHS support
            states = np.column_stack(
                [
                    backend.solve(implicit, rhs[:, column], token)
                    for column in range(rhs.shape[1])
                ]
            )
        for column, recorder in enumerate(recorders):
            recorder.observe(step, time, states[:, column])
    wall_time = _time.perf_counter() - start_wall
    # One lockstep loop served the whole group: each member's wall time is
    # its amortized share, so summing member times (what campaign
    # summaries do) reports the real cost, not group_size times it.
    outcomes = []
    for spec, recorder in zip(specs, recorders):
        outcome = _finalize(
            spec,
            recorder,
            backend,
            batched=True,
            group_size=len(specs),
            wall_time_s=wall_time / len(specs),
        )
        outcome.metadata["group_wall_time_s"] = wall_time
        outcomes.append(outcome)
    return outcomes
