"""Runtime coolant flow-control policies for transient scenarios.

The paper's design flow shapes the channels *statically*; the runtime
thermal-management companion work (fuzzy and flow-rate controllers for
liquid-cooled 3D-MPSoCs, see PAPERS.md) instead modulates the *coolant
flow* while the workload runs.  This module provides that runtime axis:
a :class:`FlowPolicy` observes the stack's peak temperature once per
control interval and answers with a flow *scale* -- the factor applied to
the scenario's nominal per-channel flow rate for the next interval.

Three built-in policies cover the classic control shapes:

``constant``
    A fixed scale (1.0 reproduces the uncontrolled scenario exactly).
``bang-bang``
    Two-level threshold control: ``high_scale`` while the observed peak
    temperature is at or above ``threshold_K``, ``low_scale`` below it.
``proportional``
    ``scale = clip(1 + gain_per_K * (T_peak - setpoint_K))`` between
    ``min_scale`` and ``max_scale``.
``mpc``
    Model-predictive planning: each control interval the policy rolls a
    reduced-order model (:mod:`repro.core.rom`) ``horizon_s`` seconds
    forward for each candidate flow scale and commits the *cheapest*
    (lowest) scale whose predicted peak temperature stays under
    ``threshold_K`` -- planning instead of reacting, affordable only
    because the rollouts are reduced.  The transient engine binds the
    rollout capability via :meth:`ModelPredictiveFlowPolicy.bind_planner`;
    without a planner the policy degrades to bang-bang on the observation.

Policies are deliberately *stateless* pure functions of the observation:
the same temperature history always produces the same flow trajectory, so
transient campaigns comparing policies are reproducible and the batched
transient engine can treat constant-flow scenarios as one group.  (The
MPC policy keeps this determinism: its planner is a deterministic
function of the simulation state.)

Custom policies register with :func:`register_policy`; anything exposing
``initial_scale()`` and ``update(time_s, peak_temperature_K) -> float``
works.  :func:`policy_from_spec` builds a policy from the serializable
:class:`~repro.transient.PolicySpec` carried by transient scenarios.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

__all__ = [
    "FlowPolicy",
    "ConstantFlowPolicy",
    "BangBangFlowPolicy",
    "ProportionalFlowPolicy",
    "ModelPredictiveFlowPolicy",
    "available_policies",
    "get_policy_factory",
    "register_policy",
    "policy_from_spec",
]


class FlowPolicy:
    """Interface of a runtime flow-control policy.

    A policy is queried once per control interval with the simulation time
    and the peak silicon temperature observed at that time, and returns
    the flow scale (a multiplier on the scenario's nominal per-channel
    flow rate) to apply over the *next* interval.
    """

    #: Registry name of the policy kind.
    name: str = "abstract"

    def initial_scale(self) -> float:
        """Flow scale applied before the first observation."""
        return 1.0

    def update(self, time_s: float, peak_temperature_K: float) -> float:
        """Flow scale for the next control interval."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} name={self.name!r}>"


class ConstantFlowPolicy(FlowPolicy):
    """Fixed flow scale; ``scale=1`` is the uncontrolled scenario."""

    name = "constant"

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0.0:
            raise ValueError(f"flow scale must be positive, got {scale}")
        self.scale = float(scale)

    def initial_scale(self) -> float:
        return self.scale

    def update(self, time_s, peak_temperature_K) -> float:
        return self.scale


class BangBangFlowPolicy(FlowPolicy):
    """Two-level threshold (bang-bang) control on the observed peak."""

    name = "bang-bang"

    def __init__(
        self,
        threshold_K: float = 350.0,
        low_scale: float = 1.0,
        high_scale: float = 1.5,
    ) -> None:
        if threshold_K <= 0.0:
            raise ValueError(f"threshold_K must be positive, got {threshold_K}")
        if low_scale <= 0.0 or high_scale <= 0.0:
            raise ValueError("flow scales must be positive")
        self.threshold_K = float(threshold_K)
        self.low_scale = float(low_scale)
        self.high_scale = float(high_scale)

    def initial_scale(self) -> float:
        return self.low_scale

    def update(self, time_s, peak_temperature_K) -> float:
        if peak_temperature_K >= self.threshold_K:
            return self.high_scale
        return self.low_scale


class ProportionalFlowPolicy(FlowPolicy):
    """Proportional control around a peak-temperature setpoint."""

    name = "proportional"

    def __init__(
        self,
        setpoint_K: float = 345.0,
        gain_per_K: float = 0.05,
        min_scale: float = 0.25,
        max_scale: float = 2.0,
    ) -> None:
        if setpoint_K <= 0.0:
            raise ValueError(f"setpoint_K must be positive, got {setpoint_K}")
        if min_scale <= 0.0 or max_scale < min_scale:
            raise ValueError(
                "flow scales must satisfy 0 < min_scale <= max_scale, got "
                f"({min_scale}, {max_scale})"
            )
        self.setpoint_K = float(setpoint_K)
        self.gain_per_K = float(gain_per_K)
        self.min_scale = float(min_scale)
        self.max_scale = float(max_scale)

    def _clip(self, scale: float) -> float:
        return min(max(scale, self.min_scale), self.max_scale)

    def initial_scale(self) -> float:
        return self._clip(1.0)

    def update(self, time_s, peak_temperature_K) -> float:
        error = peak_temperature_K - self.setpoint_K
        return self._clip(1.0 + self.gain_per_K * error)


class ModelPredictiveFlowPolicy(FlowPolicy):
    """Horizon-planning flow control over a reduced-order rollout model.

    Built from a whole :class:`~repro.transient.PolicySpec` (the custom-
    kind factory convention): ``threshold_K`` is the planning constraint,
    ``min_scale``/``max_scale`` bound ``n_candidates`` evenly spaced
    candidate scales, and ``horizon_s`` is the lookahead.  Each control
    interval the policy asks its planner -- bound by the transient engine
    via :meth:`bind_planner` -- for the predicted peak temperature of
    every candidate over the horizon, scanning cheapest (lowest pumping
    power, i.e. lowest scale) first, and commits the first candidate that
    keeps the prediction under the threshold; if none does it commits
    ``max_scale``.  Without a planner (e.g. a policy driven outside the
    transient engine) it degrades to bang-bang between the extreme
    candidates.
    """

    name = "mpc"

    def __init__(self, spec) -> None:
        threshold = float(spec.threshold_K)
        min_scale = float(spec.min_scale)
        max_scale = float(spec.max_scale)
        horizon = float(spec.horizon_s)
        n_candidates = int(spec.n_candidates)
        if threshold <= 0.0:
            raise ValueError(f"threshold_K must be positive, got {threshold}")
        if min_scale <= 0.0 or max_scale < min_scale:
            raise ValueError(
                "flow scales must satisfy 0 < min_scale <= max_scale, got "
                f"({min_scale}, {max_scale})"
            )
        if horizon <= 0.0:
            raise ValueError(f"horizon_s must be positive, got {horizon}")
        if n_candidates < 2:
            raise ValueError(
                f"n_candidates must be at least 2, got {n_candidates}"
            )
        self.threshold_K = threshold
        self.horizon_s = horizon
        # Ascending, so the planning scan commits the cheapest feasible
        # candidate first.
        self.candidates = tuple(
            min_scale + (max_scale - min_scale) * index / (n_candidates - 1)
            for index in range(n_candidates)
        )
        self._planner: Optional[Callable[[float, float], float]] = None

    def bind_planner(self, planner: Callable[[float, float], float]) -> None:
        """Attach ``planner(scale, horizon_s) -> predicted peak T (K)``."""
        self._planner = planner

    def initial_scale(self) -> float:
        # Nominal flow (clipped into the candidate band) until the first
        # planned decision: the planner has not seen the trace yet, and
        # opening at the cheapest candidate would let the first burst
        # overshoot before any control is possible.
        return min(max(1.0, self.candidates[0]), self.candidates[-1])

    def update(self, time_s, peak_temperature_K) -> float:
        if self._planner is None:  # no rollout model: react, don't plan
            if peak_temperature_K >= self.threshold_K:
                return self.candidates[-1]
            return self.candidates[0]
        for scale in self.candidates:
            if self._planner(scale, self.horizon_s) <= self.threshold_K:
                return scale
        return self.candidates[-1]


_REGISTRY: Dict[str, Callable[..., FlowPolicy]] = {}
_REGISTRY_LOCK = threading.Lock()


def register_policy(
    name: str, factory: Callable[..., FlowPolicy], overwrite: bool = False
) -> None:
    """Register a policy factory (class or callable) under ``name``."""
    if not isinstance(name, str) or not name:
        raise ValueError(f"policy name must be a non-empty string, got {name!r}")
    if not callable(factory):
        raise TypeError("policy factory must be callable")
    with _REGISTRY_LOCK:
        if name in _REGISTRY and not overwrite:
            raise ValueError(
                f"flow policy {name!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        _REGISTRY[name] = factory


def get_policy_factory(name: str) -> Callable[..., FlowPolicy]:
    """Look up a policy factory by registry name."""
    with _REGISTRY_LOCK:
        factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown flow policy {name!r}; available: {available_policies()}"
        )
    return factory


def available_policies() -> List[str]:
    """Sorted names of the registered flow policies."""
    with _REGISTRY_LOCK:
        return sorted(_REGISTRY)


def policy_from_spec(spec) -> FlowPolicy:
    """Build a :class:`FlowPolicy` from a serializable ``PolicySpec``.

    The mapping from spec fields to constructor arguments is fixed per
    built-in kind; custom registered kinds receive the whole spec.
    """
    kind = spec.kind
    if kind == "constant":
        return ConstantFlowPolicy(scale=spec.scale)
    if kind == "bang-bang":
        return BangBangFlowPolicy(
            threshold_K=spec.threshold_K,
            low_scale=spec.low_scale,
            high_scale=spec.high_scale,
        )
    if kind == "proportional":
        return ProportionalFlowPolicy(
            setpoint_K=spec.setpoint_K,
            gain_per_K=spec.gain_per_K,
            min_scale=spec.min_scale,
            max_scale=spec.max_scale,
        )
    if kind == "mpc":
        return ModelPredictiveFlowPolicy(spec)
    return get_policy_factory(kind)(spec)


register_policy("constant", ConstantFlowPolicy)
register_policy("bang-bang", BangBangFlowPolicy)
register_policy("proportional", ProportionalFlowPolicy)
register_policy("mpc", ModelPredictiveFlowPolicy)
