"""Deterministic spec -> feature-vector extraction for surrogate models.

A surrogate learns ``spec -> metrics`` from campaign records, so it needs
a *stable, numeric* view of a :class:`~repro.scenarios.ScenarioSpec`.  A
:class:`FeatureSchema` provides exactly that: an ordered tuple of
:class:`FeatureField` entries, each naming one dotted-path field of the
spec's plain-data form (the same paths :mod:`repro.sweeps` axes use --
``"workload.flux_w_per_cm2"``, ``"params.flow_rate_per_channel"``,
``"workload.architecture"``, ...), encoded as

* one column per **numeric** field (ints, floats, bools), or
* one column per vocabulary entry for a **categorical** (string) field
  (one-hot).  A value outside the stored vocabulary encodes as all
  zeros -- maximally far from every training point, so a GP's predictive
  std flags it as out-of-distribution instead of silently aliasing it
  onto a known category.

Schemas round-trip losslessly through JSON (:meth:`FeatureSchema.to_dict`
/ :meth:`FeatureSchema.from_dict`), so a pickled model can be audited and
a service can validate queries against the exact columns it was trained
on.  Extraction is pure: the same spec always produces the same vector,
whatever order its dictionary form lists the fields in.

:func:`infer_schema` builds a schema from example specs by flattening
each spec to its dotted scalar leaves and keeping the fields that are
present in *every* example (by default only those that actually vary --
constant columns carry no information for a surrogate, and dropping them
keeps kernels well-conditioned).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..scenarios import ScenarioSpec

__all__ = [
    "FeatureField",
    "FeatureSchema",
    "flatten_spec",
    "infer_schema",
]

#: Field kinds a schema can encode.
FIELD_KINDS: Tuple[str, ...] = ("numeric", "categorical")

#: Dotted paths never used as features: free-text provenance that varies
#: per expanded scenario without describing the physics.
EXCLUDED_PATHS: Tuple[str, ...] = ("name", "description")


def _is_excluded(path: str) -> bool:
    return any(
        path == prefix or path.startswith(prefix + ".")
        for prefix in EXCLUDED_PATHS
    )


def flatten_spec(spec: Union[ScenarioSpec, Mapping]) -> Dict[str, object]:
    """Flatten a spec (or its dict form) to ``{dotted path: scalar leaf}``.

    Numbers and bools stay as-is, strings are kept for categorical
    encoding, ``None`` leaves are skipped, and list entries get indexed
    path segments (``"design.0.1"``), so variable-length sections simply
    contribute different key sets.  The result is order-independent:
    flattening a spec dict with shuffled keys yields the same mapping.
    """
    if isinstance(spec, ScenarioSpec):
        spec = spec.to_dict()
    if not isinstance(spec, Mapping):
        raise ValueError(
            f"expected a ScenarioSpec or its mapping form, got "
            f"{type(spec).__name__}"
        )
    flat: Dict[str, object] = {}

    def walk(prefix: str, node: object) -> None:
        if isinstance(node, Mapping):
            for key, value in node.items():
                walk(f"{prefix}.{key}" if prefix else str(key), value)
        elif isinstance(node, (list, tuple)):
            for index, value in enumerate(node):
                walk(f"{prefix}.{index}", value)
        elif node is None:
            return
        elif isinstance(node, (bool, int, float, str)):
            if not _is_excluded(prefix):
                flat[prefix] = node

    walk("", spec)
    return flat


@dataclass(frozen=True)
class FeatureField:
    """One schema entry: a dotted path and how it encodes.

    Attributes
    ----------
    path:
        Dotted path into the flattened spec (see :func:`flatten_spec`).
    kind:
        ``"numeric"`` (one column, the float value) or ``"categorical"``
        (one column per vocabulary entry, one-hot).
    vocabulary:
        The ordered category values of a categorical field; empty for
        numeric fields.
    """

    path: str
    kind: str = "numeric"
    vocabulary: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.path, str) or not self.path:
            raise ValueError(
                f"feature path must be a non-empty dotted path, got {self.path!r}"
            )
        if self.kind not in FIELD_KINDS:
            raise ValueError(
                f"feature kind must be one of {list(FIELD_KINDS)}, got {self.kind!r}"
            )
        vocabulary = tuple(str(value) for value in self.vocabulary)
        if self.kind == "categorical" and not vocabulary:
            raise ValueError(
                f"categorical feature {self.path!r} needs a non-empty vocabulary"
            )
        if self.kind == "numeric" and vocabulary:
            raise ValueError(
                f"numeric feature {self.path!r} must not carry a vocabulary"
            )
        object.__setattr__(self, "vocabulary", vocabulary)

    @property
    def n_columns(self) -> int:
        """How many matrix columns this field occupies."""
        return len(self.vocabulary) if self.kind == "categorical" else 1

    def column_names(self) -> List[str]:
        """The column labels this field contributes."""
        if self.kind == "numeric":
            return [self.path]
        return [f"{self.path}={value}" for value in self.vocabulary]

    def encode(self, value: object) -> List[float]:
        """Encode one leaf value into this field's columns."""
        if self.kind == "numeric":
            if isinstance(value, bool):
                return [1.0 if value else 0.0]
            if not isinstance(value, (int, float)):
                raise ValueError(
                    f"feature {self.path!r} expects a number, got {value!r}"
                )
            return [float(value)]
        row = [0.0] * len(self.vocabulary)
        text = str(value)
        if text in self.vocabulary:
            row[self.vocabulary.index(text)] = 1.0
        # Unknown categories stay all-zero: far from every training
        # point, so uncertainty-gated serving routes them to an exact
        # solve instead of aliasing them onto a known category.
        return row

    def to_dict(self) -> Dict[str, object]:
        """Plain-data (JSON-compatible) representation of the field."""
        payload: Dict[str, object] = {"path": self.path, "kind": self.kind}
        if self.vocabulary:
            payload["vocabulary"] = list(self.vocabulary)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping) -> "FeatureField":
        """Rebuild a field from :meth:`to_dict` output (with validation)."""
        if not isinstance(data, Mapping):
            raise ValueError(
                f"a feature field must be a mapping, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"path", "kind", "vocabulary"})
        if unknown:
            raise ValueError(
                f"feature field: unknown key(s) {unknown}; allowed keys are "
                "['kind', 'path', 'vocabulary']"
            )
        return cls(
            path=data.get("path", ""),
            kind=data.get("kind", "numeric"),
            vocabulary=tuple(data.get("vocabulary", ())),
        )


@dataclass(frozen=True)
class FeatureSchema:
    """An ordered, JSON-round-trippable spec -> vector encoding.

    Attributes
    ----------
    fields:
        The encoded fields, in column order (see :class:`FeatureField`).
    """

    fields: Tuple[FeatureField, ...] = ()

    def __post_init__(self) -> None:
        fields = []
        for entry in self.fields:
            if isinstance(entry, Mapping):
                entry = FeatureField.from_dict(entry)
            if not isinstance(entry, FeatureField):
                raise ValueError(
                    "schema fields must be FeatureField (or mappings), got "
                    f"{type(entry).__name__}"
                )
            fields.append(entry)
        paths = [field.path for field in fields]
        duplicates = sorted({path for path in paths if paths.count(path) > 1})
        if duplicates:
            raise ValueError(f"feature schema repeats path(s) {duplicates}")
        object.__setattr__(self, "fields", tuple(fields))

    @property
    def n_features(self) -> int:
        """Total matrix columns across all fields."""
        return sum(field.n_columns for field in self.fields)

    def column_names(self) -> List[str]:
        """Ordered labels of every matrix column."""
        names: List[str] = []
        for field in self.fields:
            names.extend(field.column_names())
        return names

    def paths(self) -> List[str]:
        """The dotted paths the schema encodes, in order."""
        return [field.path for field in self.fields]

    # -- extraction --------------------------------------------------------

    def extract(self, spec: Union[ScenarioSpec, Mapping]) -> np.ndarray:
        """The feature vector of one spec (shape ``(n_features,)``).

        Raises ``ValueError`` when a numeric field is missing from the
        spec -- a schema mismatch must surface, not silently zero-fill.
        Missing *categorical* fields encode as all zeros (the same
        out-of-vocabulary encoding unknown categories get).
        """
        flat = flatten_spec(spec)
        row: List[float] = []
        for field in self.fields:
            if field.path in flat:
                row.extend(field.encode(flat[field.path]))
            elif field.kind == "categorical":
                row.extend([0.0] * field.n_columns)
            else:
                raise ValueError(
                    f"spec has no value at feature path {field.path!r}; it "
                    "cannot be encoded against this schema (was the model "
                    "trained on a different scenario family?)"
                )
        return np.asarray(row, dtype=float)

    def matrix(
        self, specs: Iterable[Union[ScenarioSpec, Mapping]]
    ) -> np.ndarray:
        """The stacked feature matrix of many specs (``(n, n_features)``)."""
        rows = [self.extract(spec) for spec in specs]
        if not rows:
            return np.empty((0, self.n_features), dtype=float)
        return np.vstack(rows)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-data (JSON-compatible) representation of the schema."""
        return {"fields": [field.to_dict() for field in self.fields]}

    @classmethod
    def from_dict(cls, data: Mapping) -> "FeatureSchema":
        """Rebuild a schema from :meth:`to_dict` output (with validation)."""
        if not isinstance(data, Mapping):
            raise ValueError(
                f"a feature schema must be a mapping, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"fields"})
        if unknown:
            raise ValueError(
                f"feature schema: unknown key(s) {unknown}; the only allowed "
                "key is 'fields'"
            )
        return cls(fields=tuple(data.get("fields", ())))

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON representation of the schema."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FeatureSchema":
        """Rebuild a schema from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


def infer_schema(
    specs: Sequence[Union[ScenarioSpec, Mapping]],
    include: Optional[Sequence[str]] = None,
    drop_constant: bool = True,
) -> FeatureSchema:
    """Build a :class:`FeatureSchema` from example specs.

    Flattens every spec and keeps the dotted paths present in *all* of
    them (a field some specs lack cannot be a dense matrix column);
    numeric leaves become numeric fields, string leaves categorical
    fields whose vocabulary is the sorted set of observed values.

    Parameters
    ----------
    specs:
        The example specs (``ScenarioSpec`` or mapping form).
    include:
        Optional explicit dotted paths; inference is then restricted to
        exactly these (missing or mixed-type paths raise).
    drop_constant:
        Drop fields taking a single value across the examples (default).
        Constant columns carry no information and degrade kernel
        conditioning; pass ``False`` to keep them (e.g. for CSV export,
        where every column is documentation).
    """
    if not specs:
        raise ValueError("cannot infer a feature schema from zero specs")
    flats = [flatten_spec(spec) for spec in specs]
    common = set(flats[0])
    for flat in flats[1:]:
        common &= set(flat)
    if include is not None:
        include = list(include)
        missing = sorted(set(include) - common)
        if missing:
            raise ValueError(
                f"feature path(s) {missing} are not present in every "
                "example spec; present everywhere: "
                f"{sorted(common)}"
            )
        paths = include
    else:
        paths = sorted(common)
    fields: List[FeatureField] = []
    for path in paths:
        values = [flat[path] for flat in flats]
        has_string = any(isinstance(value, str) for value in values)
        if has_string and not all(isinstance(value, str) for value in values):
            raise ValueError(
                f"feature path {path!r} mixes strings and numbers across "
                "the example specs; it cannot be encoded consistently"
            )
        if drop_constant and include is None and len(set(values)) < 2:
            continue
        if has_string:
            fields.append(
                FeatureField(
                    path=path,
                    kind="categorical",
                    vocabulary=tuple(sorted(set(values))),
                )
            )
        else:
            fields.append(FeatureField(path=path, kind="numeric"))
    if not fields:
        raise ValueError(
            "feature schema inference found no varying fields across the "
            "example specs; pass include=[...] or drop_constant=False"
        )
    return FeatureSchema(fields=tuple(fields))
