"""Active learning: pick the next campaign points a surrogate is unsure of.

An acquisition function scores candidate scenarios from a surrogate's
predictive mean and std; :func:`select_batch` takes the top-scoring
points of a candidate :class:`~repro.sweeps.SweepSpec` and re-emits them
as a *new* sweep of explicit override points (via
:meth:`SweepSpec.override_mappings`).  That sweep runs through the
ordinary :meth:`Session.run_many` machinery -- so an active-learning
round is just another resumable campaign: it streams into the same
store, can be interrupted and resumed, and the next ``repro ml fit``
picks its records up automatically.  Nothing in the execution path knows
it was chosen by a model.

Three acquisitions are provided, all phrased for **minimization** of the
target metric (the paper's co-design loop minimizes peak temperature):

``"max_variance"``
    Pure exploration: score = predictive std.  The right default for
    shrinking a surrogate's global uncertainty.
``"ucb"``
    Exploration/exploitation blend: score = kappa*std - mean (the lower
    confidence bound, negated so larger is better).
``"ei"``
    Expected improvement over the best observed value: classic
    Bayesian-optimization exploitation with a closed Gaussian form.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..exec.base import CampaignTask
from ..scenarios import ScenarioSpec
from ..sweeps import SweepSpec
from .models import Surrogate

__all__ = [
    "ACQUISITIONS",
    "ActiveSelection",
    "acquisition_scores",
    "candidate_keys",
    "physical_key",
    "select_batch",
]

#: Registered acquisition function names.
ACQUISITIONS: Tuple[str, ...] = ("max_variance", "ucb", "ei")


def _norm_cdf(z: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + np.vectorize(math.erf)(z / math.sqrt(2.0)))


def _norm_pdf(z: np.ndarray) -> np.ndarray:
    return np.exp(-0.5 * z**2) / math.sqrt(2.0 * math.pi)


def acquisition_scores(
    name: str,
    mean: np.ndarray,
    std: np.ndarray,
    best: Optional[float] = None,
    kappa: float = 2.0,
) -> np.ndarray:
    """Score candidates; larger means "run this one next".

    Parameters
    ----------
    name:
        One of :data:`ACQUISITIONS`.
    mean / std:
        1-D predictive mean and std of *one* target over the candidates.
    best:
        Best (lowest) observed target value so far -- required by
        ``"ei"``, ignored by the others.
    kappa:
        Exploration weight of ``"ucb"``.
    """
    mean = np.asarray(mean, dtype=float).reshape(-1)
    std = np.asarray(std, dtype=float).reshape(-1)
    if mean.shape != std.shape:
        raise ValueError(
            f"mean and std must align, got shapes {mean.shape} and {std.shape}"
        )
    if name == "max_variance":
        return std.copy()
    if name == "ucb":
        return kappa * std - mean
    if name == "ei":
        if best is None:
            raise ValueError(
                "acquisition 'ei' needs best= (the lowest observed target "
                "value so far)"
            )
        # EI for minimization: E[max(best - Y, 0)] under Y ~ N(mean, std^2).
        safe_std = np.where(std > 0.0, std, 1.0)
        z = (best - mean) / safe_std
        ei = (best - mean) * _norm_cdf(z) + safe_std * _norm_pdf(z)
        return np.where(std > 0.0, ei, np.maximum(best - mean, 0.0))
    raise ValueError(
        f"unknown acquisition {name!r}; registered: {list(ACQUISITIONS)}"
    )


def candidate_keys(
    sweep: SweepSpec, action: str = "run", solver: Optional[str] = None
) -> Tuple[str, ...]:
    """The campaign resume keys of a candidate sweep's scenarios.

    These are exactly the ``spec_hash`` values a campaign over the sweep
    would write, so intersecting them with a store's keys tells which
    candidates already have exact labels.
    """
    return tuple(
        CampaignTask(index=i, spec=spec, action=action, solver=solver).key()
        for i, spec in enumerate(sweep.scenarios())
    )


def physical_key(
    spec: Union[ScenarioSpec, Mapping],
    action: str = "run",
    solver: Optional[str] = None,
) -> str:
    """Identity of a scenario's *physics*: the resume key minus naming.

    :meth:`CampaignTask.key` hashes the full spec, ``name`` and
    ``description`` included, so the same physical point expanded under
    two differently-named sweeps gets two different resume keys.  That
    is right for store resume (records belong to their campaign) but
    wrong for "has this point already been labelled?" -- which is what
    active-learning exclusion asks.  This hash drops the naming fields
    (exactly the ones :func:`~repro.ml.features.flatten_spec` excludes
    from features) and keeps everything that changes the solve.
    """
    if not isinstance(spec, ScenarioSpec):
        spec = ScenarioSpec.from_dict(spec)
    task = CampaignTask(index=0, spec=spec, action=action, solver=solver)
    data = spec.to_dict()
    data.pop("name", None)
    data.pop("description", None)
    payload = {
        "spec": data,
        "action": action,
        "solver": task.effective_solver(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ActiveSelection:
    """Outcome of one acquisition pass over a candidate sweep.

    Attributes
    ----------
    sweep:
        The selected points as an explicit-overrides :class:`SweepSpec`
        (same base as the candidates) -- run it with
        :meth:`Session.run_many` like any other campaign.
    indices:
        Positions of the selected points in the candidate expansion.
    scores:
        Their acquisition scores, selection order (descending).
    acquisition / target:
        Which acquisition ranked them, on which target column.
    mean_std:
        Mean predictive std over *all* scored candidates -- refit after
        the round and compare to see the uncertainty shrink.
    n_candidates / n_excluded:
        How many points were scored and how many were skipped as already
        labelled.
    """

    sweep: SweepSpec
    indices: Tuple[int, ...]
    scores: Tuple[float, ...]
    acquisition: str
    target: str
    mean_std: float
    n_candidates: int
    n_excluded: int

    def to_dict(self) -> Dict[str, object]:
        """Plain-data summary (for CLI --json output and journals)."""
        return {
            "acquisition": self.acquisition,
            "target": self.target,
            "indices": list(self.indices),
            "scores": list(self.scores),
            "scenarios": self.sweep.scenario_names(),
            "mean_std": self.mean_std,
            "n_candidates": self.n_candidates,
            "n_excluded": self.n_excluded,
            "sweep": self.sweep.to_dict(),
        }


def select_batch(
    model: Surrogate,
    candidates: SweepSpec,
    n_points: int = 4,
    acquisition: str = "max_variance",
    target: Optional[str] = None,
    best: Optional[float] = None,
    kappa: float = 2.0,
    exclude: Sequence[Union[str, Mapping, ScenarioSpec]] = (),
    round_name: Optional[str] = None,
) -> ActiveSelection:
    """Pick the next batch of scenarios to run from a candidate sweep.

    Parameters
    ----------
    model:
        A fitted surrogate (its schema encodes the candidates).
    candidates:
        The candidate pool as a :class:`SweepSpec` (typically a denser
        grid over the same axes the training campaign swept).
    n_points:
        Batch size; fewer are returned when the pool is smaller.
    acquisition / best / kappa:
        See :func:`acquisition_scores`.  ``best`` defaults to the lowest
        predicted mean over the candidates when ``"ei"`` is used without
        an observed incumbent.
    target:
        Which model target to score on (default: the model's first).
    exclude:
        Points that already have exact labels and must not be re-run.
        Entries may be resume-key strings (matched against
        :func:`candidate_keys`, i.e. same-sweep naming) or spec
        mappings/:class:`ScenarioSpec` (matched by :func:`physical_key`,
        so labels from a *differently named* training sweep still
        exclude the same physical point -- pass ``dataset.specs``).
    round_name:
        Name of the emitted sweep (default ``"<candidates.name>-active"``).

    The returned sweep reproduces the selected points as explicit
    override mappings over the same base spec, so running it is an
    ordinary resumable campaign.
    """
    if n_points < 1:
        raise ValueError(f"n_points must be >= 1, got {n_points}")
    if target is None:
        target = model.targets[0]
    if target not in model.targets:
        raise ValueError(
            f"model has no target {target!r}; it predicts {list(model.targets)}"
        )
    target_index = list(model.targets).index(target)
    specs = candidates.scenarios()
    mappings = candidates.override_mappings()
    keys = candidate_keys(candidates)
    excluded: Set[str] = set()
    excluded_physical: Set[str] = set()
    for entry in exclude:
        if isinstance(entry, str):
            excluded.add(entry)
        else:
            excluded_physical.add(physical_key(entry))
    if excluded_physical:
        physical = [physical_key(spec) for spec in specs]
    else:
        physical = [""] * len(specs)
    live = [
        i
        for i, key in enumerate(keys)
        if key not in excluded and physical[i] not in excluded_physical
    ]
    if not live:
        raise ValueError(
            "every candidate point is excluded (already labelled?); widen "
            "the candidate sweep"
        )
    mean, std = model.predict_specs([specs[i] for i in live])
    mean_t = mean[:, target_index]
    std_t = std[:, target_index]
    if acquisition == "ei" and best is None:
        best = float(mean_t.min())
    scores = acquisition_scores(
        acquisition, mean_t, std_t, best=best, kappa=kappa
    )
    order = np.argsort(-scores, kind="stable")[: min(n_points, len(live))]
    chosen = [live[int(i)] for i in order]
    sweep = SweepSpec(
        name=round_name or f"{candidates.name}-active",
        base=candidates.base,
        overrides=tuple(
            tuple(sorted(mappings[i].items())) for i in chosen
        ),
        description=(
            f"active-learning batch ({acquisition} on {target}) from "
            f"{candidates.name}"
        ),
    )
    return ActiveSelection(
        sweep=sweep,
        indices=tuple(chosen),
        scores=tuple(float(scores[int(i)]) for i in order),
        acquisition=acquisition,
        target=target,
        mean_std=float(std_t.mean()),
        n_candidates=len(live),
        n_excluded=len(keys) - len(live),
    )
