"""Campaign stores as supervised datasets: records -> ``(X, y)`` matrices.

Every campaign JSONL is a labelled dataset in disguise -- each ok record
pairs a full :class:`~repro.scenarios.ScenarioSpec` (the ``"spec"`` field
records have carried since repro.ml landed) with the metrics the solver
produced.  :func:`build_dataset` streams a :class:`~repro.campaign.CampaignStore`
(legacy single-file and ``campaign.jsonl.d/`` shard layouts alike, via
:meth:`~repro.campaign.CampaignStore.iter_records`) into the numeric form
surrogates train on:

* ``X`` -- one row per unique ``spec_hash``, encoded by a
  :class:`~repro.ml.features.FeatureSchema` (inferred from the stored
  specs when not supplied);
* ``y`` -- one column per requested target metric, resolved by dotted
  path into the record's result payload (``"peak_temperature_K"``,
  ``"max_pressure_drop_Pa"``, ``"transient.pumping_energy_J"``, ...).

Only ``status == "ok"`` records of the requested action are used;
duplicates (the same task re-run) keep the *later* record, matching the
store's own resume semantics.  Records predating the ``"spec"`` field can
still train a model by passing ``specs=`` -- the candidate specs are
re-keyed with :meth:`~repro.exec.base.CampaignTask.key` and matched by
hash.  Everything skipped is counted, never silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..campaign import CampaignStore
from ..exec.base import CampaignTask
from ..scenarios import ScenarioSpec
from .features import FeatureSchema, infer_schema

__all__ = [
    "DEFAULT_TARGETS",
    "Dataset",
    "build_dataset",
    "target_value",
]

#: Commonly-modelled target metrics and the dotted result paths they
#: resolve to.  Any dotted path into the result payload is accepted;
#: these are just the ones the paper's co-design loop cares about.
DEFAULT_TARGETS: Tuple[str, ...] = (
    "peak_temperature_K",
    "max_pressure_drop_Pa",
)

#: All the curated targets the CLI advertises (transient metrics only
#: exist on records whose scenario ran a transient schedule).
KNOWN_TARGETS: Tuple[str, ...] = (
    "peak_temperature_K",
    "max_pressure_drop_Pa",
    "coolant_rise_K",
    "thermal_gradient_K",
    "transient.pumping_energy_J",
    "transient.peak_transient_temperature_K",
    "transient.time_above_threshold_s",
)


def target_value(record: Mapping, target: str) -> Optional[float]:
    """Resolve one dotted target path inside a record's result payload.

    Returns ``None`` when any path segment is missing or the leaf is not
    a number -- the caller decides whether that skips the record.
    """
    node: object = record.get("result")
    for segment in target.split("."):
        if not isinstance(node, Mapping) or segment not in node:
            return None
        node = node[segment]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


@dataclass(frozen=True)
class Dataset:
    """A supervised view of a campaign store.

    Attributes
    ----------
    X:
        Feature matrix, shape ``(n_samples, schema.n_features)``.
    y:
        Target matrix, shape ``(n_samples, len(targets))``.
    targets:
        The dotted result paths the ``y`` columns hold, in order.
    schema:
        The :class:`FeatureSchema` that produced ``X`` (ship it with any
        model fit on this dataset -- predictions must encode queries with
        the same columns).
    spec_hashes / scenarios:
        Row-aligned provenance: which task and expanded scenario name
        each sample came from.
    specs:
        Row-aligned plain-data spec payloads (useful for re-running or
        exporting samples).
    skipped:
        Why records were left out: ``{"not_ok", "wrong_action",
        "missing_spec", "missing_target"}`` counts.
    """

    X: np.ndarray
    y: np.ndarray
    targets: Tuple[str, ...]
    schema: FeatureSchema
    spec_hashes: Tuple[str, ...] = ()
    scenarios: Tuple[str, ...] = ()
    specs: Tuple[Mapping, ...] = ()
    skipped: Dict[str, int] = field(default_factory=dict)

    @property
    def n_samples(self) -> int:
        """Rows in the dataset."""
        return int(self.X.shape[0])

    def column(self, target: str) -> np.ndarray:
        """One target's column of ``y`` by its dotted path."""
        if target not in self.targets:
            raise KeyError(
                f"dataset has no target {target!r}; it holds {list(self.targets)}"
            )
        return self.y[:, self.targets.index(target)]

    def summary(self) -> Dict[str, object]:
        """Plain-data description (counts, targets, per-target ranges)."""
        ranges = {}
        for index, target in enumerate(self.targets):
            if self.n_samples:
                column = self.y[:, index]
                ranges[target] = {
                    "min": float(column.min()),
                    "max": float(column.max()),
                    "mean": float(column.mean()),
                }
        return {
            "n_samples": self.n_samples,
            "n_features": int(self.X.shape[1]),
            "targets": list(self.targets),
            "feature_columns": self.schema.column_names(),
            "skipped": dict(self.skipped),
            "target_ranges": ranges,
        }


def _iter_source(
    source: Union[CampaignStore, str, Iterable[Mapping]],
) -> Iterable[Mapping]:
    """Normalize a dataset source to an iterable of campaign records."""
    if isinstance(source, CampaignStore):
        return source.iter_records()
    if isinstance(source, (str, bytes)) or hasattr(source, "__fspath__"):
        return CampaignStore(source).iter_records()
    return source


def _spec_index(
    specs: Optional[Sequence[Union[ScenarioSpec, Mapping]]],
    action: str,
    solver: Optional[str],
) -> Dict[str, Dict[str, object]]:
    """Map task resume keys to spec payloads for pre-``spec``-field stores."""
    index: Dict[str, Dict[str, object]] = {}
    for entry in specs or ():
        spec = (
            entry
            if isinstance(entry, ScenarioSpec)
            else ScenarioSpec.from_dict(entry)
        )
        task = CampaignTask(index=0, spec=spec, action=action, solver=solver)
        index[task.key()] = spec.to_dict()
    return index


def build_dataset(
    source: Union[CampaignStore, str, Iterable[Mapping]],
    targets: Sequence[str] = DEFAULT_TARGETS,
    schema: Optional[FeatureSchema] = None,
    specs: Optional[Sequence[Union[ScenarioSpec, Mapping]]] = None,
    action: str = "run",
    solver: Optional[str] = None,
    drop_constant: bool = True,
) -> Dataset:
    """Stream a campaign store into a supervised :class:`Dataset`.

    Parameters
    ----------
    source:
        A :class:`CampaignStore`, a store path (legacy file and/or its
        ``.d/`` shard directory), or any iterable of campaign records
        (e.g. ``CampaignResult.records``).
    targets:
        Dotted result paths to regress on (see :data:`KNOWN_TARGETS` for
        the curated list).  A record missing *any* requested target is
        skipped (counted under ``"missing_target"``).
    schema:
        The feature encoding; inferred from the surviving specs with
        :func:`~repro.ml.features.infer_schema` when omitted.
    specs:
        Candidate specs for stores whose records predate the ``"spec"``
        field: they are re-keyed with the task resume key and matched by
        ``spec_hash``.  Records with neither an embedded spec nor a match
        here count under ``"missing_spec"``.
    action / solver:
        Which task family to train on (default: plain ``"run"`` records,
        any solver).  ``action=None`` accepts every action.
    drop_constant:
        Passed to :func:`infer_schema` when ``schema`` is omitted; keep
        ``False`` for exports where constant columns are documentation.
    """
    targets = tuple(targets)
    if not targets:
        raise ValueError("build_dataset needs at least one target metric")
    fallback = _spec_index(specs, action or "run", solver)
    skipped = {
        "not_ok": 0,
        "wrong_action": 0,
        "missing_spec": 0,
        "missing_target": 0,
    }
    # Later records win, matching CampaignStore.load(); iter_records()
    # already dedupes stores, this handles raw record iterables too.
    rows: Dict[str, Tuple[Dict[str, object], str, List[float]]] = {}
    for record in _iter_source(source):
        if record.get("status") != "ok":
            skipped["not_ok"] += 1
            continue
        if action is not None and record.get("action") != action:
            skipped["wrong_action"] += 1
            continue
        if solver is not None and record.get("solver") != solver:
            skipped["wrong_action"] += 1
            continue
        spec_hash = str(record.get("spec_hash"))
        spec = record.get("spec")
        if not isinstance(spec, Mapping):
            spec = fallback.get(spec_hash)
        if spec is None:
            skipped["missing_spec"] += 1
            continue
        values = [target_value(record, target) for target in targets]
        if any(value is None for value in values):
            skipped["missing_target"] += 1
            continue
        rows[spec_hash] = (
            dict(spec),
            str(record.get("scenario")),
            [float(value) for value in values],
        )

    spec_hashes = tuple(rows)
    spec_dicts = tuple(rows[key][0] for key in spec_hashes)
    scenarios = tuple(rows[key][1] for key in spec_hashes)
    if schema is None:
        if not rows:
            raise ValueError(
                "the campaign source produced no usable training records "
                f"(skipped: {skipped}); cannot infer a feature schema"
            )
        schema = infer_schema(spec_dicts, drop_constant=drop_constant)
    X = schema.matrix(spec_dicts)
    if rows:
        y = np.asarray([rows[key][2] for key in spec_hashes], dtype=float)
    else:
        y = np.empty((0, len(targets)), dtype=float)
    return Dataset(
        X=X,
        y=y,
        targets=targets,
        schema=schema,
        spec_hashes=spec_hashes,
        scenarios=scenarios,
        specs=spec_dicts,
        skipped=skipped,
    )
