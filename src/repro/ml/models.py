"""Surrogate regressors over campaign datasets (numpy/scipy only).

Two implementations of one :class:`Surrogate` protocol, both trained on a
:class:`~repro.ml.dataset.Dataset` and both returning a predictive
*mean and standard deviation* per target -- the std is what makes
uncertainty-gated serving and active learning possible:

``"gp"`` -- :class:`GaussianProcessSurrogate`
    An exact Gaussian-process regressor: RBF kernel with per-dimension
    (ARD) lengthscales on standardized inputs, Cholesky fit with jitter
    backoff, small log-marginal-likelihood grid search over lengthscale
    and noise scalings.  Exact and well-calibrated; O(n^3) fit, so best
    below a few thousand samples.

``"rff"`` -- :class:`RandomFeatureSurrogate`
    Bayesian ridge regression on random Fourier features (a Monte-Carlo
    approximation of the same RBF kernel; Rahimi & Recht 2007).  Fit cost
    is O(n·D^2) for D features, so it scales to large stores; the
    posterior-weight covariance still yields a usable predictive std.

Both targets-share-one-kernel: ``y`` may hold several metric columns
(peak temperature, pressure drop, ...) and the fit solves all of them
against the same Gram matrix.  Both are plain-attribute classes, so they
pickle; :func:`save_model` / :func:`load_model` store them in a
content-addressed model directory (``<dir>/<digest>/model.pkl`` plus a
human-readable ``meta.json``) where the digest commits to the exact
pickle bytes -- refitting on new data yields a new id, never a silent
overwrite.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Tuple,
    Union,
    runtime_checkable,
)

import numpy as np
import scipy.linalg

from ..scenarios import ScenarioSpec
from .dataset import Dataset
from .features import FeatureSchema

__all__ = [
    "SURROGATES",
    "GaussianProcessSurrogate",
    "RandomFeatureSurrogate",
    "Surrogate",
    "list_models",
    "load_model",
    "make_surrogate",
    "save_model",
]


@runtime_checkable
class Surrogate(Protocol):
    """Anything that regresses spec features to metric means + stds."""

    name: str

    def fit(self, dataset: Dataset) -> "Surrogate":  # pragma: no cover
        """Train on a dataset; returns self for chaining."""
        ...

    def predict(
        self, X: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:  # pragma: no cover
        """Predictive ``(mean, std)`` per row/target, shape ``(n, n_targets)``."""
        ...


class _FittedBase:
    """Shared plumbing: input standardization, target scaling, spec encoding."""

    name = "base"

    def __init__(self) -> None:
        self.schema: Optional[FeatureSchema] = None
        self.targets: Tuple[str, ...] = ()
        self.n_samples = 0
        self._x_mean: Optional[np.ndarray] = None
        self._x_scale: Optional[np.ndarray] = None
        self._y_mean: Optional[np.ndarray] = None
        self._y_scale: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self._x_mean is not None

    def _check_fitted(self) -> None:
        if not self.is_fitted:
            raise ValueError(
                f"{type(self).__name__} is not fitted; call fit(dataset) first"
            )

    def _standardize_fit(self, dataset: Dataset) -> Tuple[np.ndarray, np.ndarray]:
        X = np.asarray(dataset.X, dtype=float)
        y = np.asarray(dataset.y, dtype=float)
        if X.ndim != 2 or y.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError(
                f"dataset shapes are inconsistent: X {X.shape}, y {y.shape}"
            )
        if X.shape[0] < 2:
            raise ValueError(
                f"cannot fit a surrogate on {X.shape[0]} sample(s); run a "
                "campaign first (2+ distinct ok records required)"
            )
        self.schema = dataset.schema
        self.targets = tuple(dataset.targets)
        self.n_samples = int(X.shape[0])
        self._x_mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0  # constant columns pass through unscaled
        self._x_scale = scale
        self._y_mean = y.mean(axis=0)
        y_scale = y.std(axis=0)
        y_scale[y_scale == 0.0] = 1.0
        self._y_scale = y_scale
        return (X - self._x_mean) / self._x_scale, (y - self._y_mean) / y_scale

    def _standardize_x(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self._x_mean.shape[0]:
            raise ValueError(
                f"query has {X.shape[1]} feature column(s); the model was "
                f"fitted on {self._x_mean.shape[0]}"
            )
        return (X - self._x_mean) / self._x_scale

    def encode(
        self, specs: Iterable[Union[ScenarioSpec, Mapping]]
    ) -> np.ndarray:
        """Encode specs with the schema the model was trained on."""
        self._check_fitted()
        return self.schema.matrix(specs)

    def predict_specs(
        self, specs: Iterable[Union[ScenarioSpec, Mapping]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Predict straight from specs (encode + :meth:`predict`)."""
        return self.predict(self.encode(specs))

    def describe(self) -> Dict[str, object]:
        """Plain-data summary used for model metadata and healthz."""
        self._check_fitted()
        return {
            "model": self.name,
            "targets": list(self.targets),
            "n_samples": self.n_samples,
            "n_features": int(self._x_mean.shape[0]),
            "feature_columns": self.schema.column_names(),
            "schema": self.schema.to_dict(),
        }


def _cholesky_with_jitter(
    K: np.ndarray, jitter: float = 1e-10, max_tries: int = 8
) -> Tuple[np.ndarray, float]:
    """Lower Cholesky of a kernel matrix, escalating jitter on failure.

    Near-duplicate rows make campaign Gram matrices numerically
    semi-definite; rather than failing the fit, the diagonal is inflated
    by growing jitter (x10 per retry) until the factorization succeeds.
    Returns the factor and the jitter that worked.
    """
    current = jitter
    for _ in range(max_tries):
        try:
            L = scipy.linalg.cholesky(
                K + current * np.eye(K.shape[0]), lower=True
            )
            return L, current
        except scipy.linalg.LinAlgError:
            current *= 10.0
    raise ValueError(
        f"kernel matrix is not positive definite even with jitter {current:g}; "
        "the training data likely contains exactly duplicated rows with "
        "conflicting targets"
    )


class GaussianProcessSurrogate(_FittedBase):
    """Exact GP regression with an ARD RBF kernel (see module docstring).

    Parameters
    ----------
    lengthscale:
        Base per-dimension lengthscale in standardized-input units.
    noise:
        Base observation-noise variance (standardized-target units).
    optimize:
        Grid-search lengthscale/noise scalings by log marginal
        likelihood (default on; cheap -- a handful of Cholesky solves).
    """

    name = "gp"

    def __init__(
        self,
        lengthscale: float = 1.0,
        noise: float = 1e-6,
        optimize: bool = True,
    ) -> None:
        super().__init__()
        if lengthscale <= 0:
            raise ValueError(f"lengthscale must be > 0, got {lengthscale}")
        if noise < 0:
            raise ValueError(f"noise must be >= 0, got {noise}")
        self.lengthscale = float(lengthscale)
        self.noise = float(noise)
        self.optimize = bool(optimize)
        self._X: Optional[np.ndarray] = None
        self._L: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._lengthscales: Optional[np.ndarray] = None
        self._noise: float = noise
        self._jitter: float = 0.0
        self._calibration: Optional[np.ndarray] = None

    def _kernel(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """ARD RBF: exp(-0.5 * sum_d ((a_d - b_d) / l_d)^2)."""
        scaled_a = A / self._lengthscales
        scaled_b = B / self._lengthscales
        sq = (
            (scaled_a**2).sum(axis=1)[:, None]
            + (scaled_b**2).sum(axis=1)[None, :]
            - 2.0 * scaled_a @ scaled_b.T
        )
        return np.exp(-0.5 * np.maximum(sq, 0.0))

    def _log_marginal(
        self, X: np.ndarray, Y: np.ndarray, noise: float
    ) -> float:
        """Summed log marginal likelihood over the target columns."""
        K = self._kernel(X, X) + noise * np.eye(X.shape[0])
        try:
            L, _ = _cholesky_with_jitter(K)
        except ValueError:
            return -np.inf
        alpha = scipy.linalg.cho_solve((L, True), Y)
        n = X.shape[0]
        log_det = 2.0 * np.log(np.diag(L)).sum()
        total = 0.0
        for t in range(Y.shape[1]):
            total += (
                -0.5 * float(Y[:, t] @ alpha[:, t])
                - 0.5 * log_det
                - 0.5 * n * np.log(2.0 * np.pi)
            )
        return total

    def fit(self, dataset: Dataset) -> "GaussianProcessSurrogate":
        """Cholesky-fit the GP (with an optional hyperparameter grid)."""
        X, Y = self._standardize_fit(dataset)
        base = np.full(X.shape[1], self.lengthscale)
        best = (self.lengthscale, max(self.noise, 1e-8))
        if self.optimize:
            best_score = -np.inf
            # The training data is deterministic solver output, so true
            # observation noise is ~0; the noise grid stays tiny and acts
            # as a regularizer, not an error model.  The lengthscale grid
            # caps at 2x standardized spread: beyond that the marginal
            # likelihood happily degenerates toward a global linear trend
            # whose between-sample confidence the data cannot support
            # (a few points per axis see no curvature between samples),
            # and uncertainty gating would trust wrong interpolants.
            for ls_scale in (0.3, 0.5, 1.0, 2.0):
                self._lengthscales = base * ls_scale
                for noise in (1e-8, 1e-6, 1e-4):
                    noise = max(noise, self.noise)
                    score = self._log_marginal(X, Y, noise)
                    if score > best_score:
                        best_score = score
                        best = (self.lengthscale * ls_scale, noise)
        self._lengthscales = np.full(X.shape[1], best[0])
        self._noise = best[1]
        K = self._kernel(X, X) + self._noise * np.eye(X.shape[0])
        self._L, self._jitter = _cholesky_with_jitter(K)
        self._alpha = scipy.linalg.cho_solve((self._L, True), Y)
        self._X = X
        # Leave-one-out calibration: the hyperparameter grid is coarse
        # and near-noiseless interpolation is overconfident between the
        # training points, which would let uncertainty gating trust wrong
        # answers.  The closed-form LOO residuals and variances fall out
        # of the precomputed Cholesky (residual_i = alpha_i / [K^-1]_ii,
        # var_i = 1 / [K^-1]_ii), so scale each target's predictive std
        # by the RMS of its LOO z-scores -- never shrinking it below 1.
        K_inv_diag = np.diag(
            scipy.linalg.cho_solve((self._L, True), np.eye(X.shape[0]))
        )
        K_inv_diag = np.maximum(K_inv_diag, 1e-300)
        z_squared = self._alpha**2 / K_inv_diag[:, None]
        self._calibration = np.maximum(
            np.sqrt(z_squared.mean(axis=0)), 1.0
        )
        return self

    def predict(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Predictive mean and std per target, de-standardized.

        The std is *epistemic only* (the latent-function posterior, no
        observation-noise floor): the training data is deterministic
        solver output, so at a labelled point the model genuinely knows
        the answer and active learning can drive the std toward zero.
        The latent variance is shared across targets (one kernel); each
        target's std is scaled back by that target's training spread.
        """
        self._check_fitted()
        Xq = self._standardize_x(X)
        K_star = self._kernel(Xq, self._X)
        mean_std = K_star @ self._alpha
        v = scipy.linalg.solve_triangular(self._L, K_star.T, lower=True)
        # Prior variance is 1.0 (unit-signal kernel on standardized y).
        latent_var = np.maximum(1.0 - (v**2).sum(axis=0), 0.0)
        latent_std = np.sqrt(latent_var)
        mean = mean_std * self._y_scale + self._y_mean
        std = (
            latent_std[:, None] * self._calibration[None, :] * self._y_scale[None, :]
        )
        return mean, std

    def describe(self) -> Dict[str, object]:
        payload = super().describe()
        payload.update(
            {
                "lengthscale": float(self._lengthscales[0]),
                "noise": float(self._noise),
                "jitter": float(self._jitter),
                "calibration": [float(c) for c in self._calibration],
            }
        )
        return payload


class RandomFeatureSurrogate(_FittedBase):
    """Bayesian ridge on random Fourier features (RBF approximation).

    Parameters
    ----------
    n_features:
        Number of random Fourier features D (cos/sin pairs counted once).
    lengthscale:
        RBF lengthscale the feature frequencies are drawn for.
    noise:
        Observation-noise variance of the Bayesian ridge posterior.
    seed:
        Seed of the frequency draw -- fixed by default, so fits are
        deterministic and refits on the same data reproduce bit-identical
        models (which content-addressed saving relies on).
    """

    name = "rff"

    def __init__(
        self,
        n_features: int = 256,
        lengthscale: float = 1.0,
        noise: float = 1e-4,
        seed: int = 20120312,  # the paper's DATE 2012 session date
    ) -> None:
        super().__init__()
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        if lengthscale <= 0:
            raise ValueError(f"lengthscale must be > 0, got {lengthscale}")
        if noise <= 0:
            raise ValueError(f"noise must be > 0, got {noise}")
        self.n_features = int(n_features)
        self.lengthscale = float(lengthscale)
        self.noise = float(noise)
        self.seed = int(seed)
        self._W: Optional[np.ndarray] = None
        self._b: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None
        self._S_chol: Optional[np.ndarray] = None

    def _features(self, X: np.ndarray) -> np.ndarray:
        """phi(x) = sqrt(2/D) * cos(W x + b)."""
        projection = X @ self._W.T + self._b
        return np.sqrt(2.0 / self.n_features) * np.cos(projection)

    def fit(self, dataset: Dataset) -> "RandomFeatureSurrogate":
        """Closed-form Bayesian ridge over the random feature map."""
        X, Y = self._standardize_fit(dataset)
        rng = np.random.default_rng(self.seed)
        self._W = rng.standard_normal((self.n_features, X.shape[1])) / self.lengthscale
        self._b = rng.uniform(0.0, 2.0 * np.pi, size=self.n_features)
        Phi = self._features(X)
        # Posterior over weights w ~ N(mu, S) with unit Gaussian prior:
        # S^-1 = I + Phi^T Phi / noise,  mu = S Phi^T y / noise.
        A = np.eye(self.n_features) + (Phi.T @ Phi) / self.noise
        L, _ = _cholesky_with_jitter(A)
        self._weights = scipy.linalg.cho_solve((L, True), Phi.T @ Y) / self.noise
        # Keep the Cholesky of S^-1: predictive var needs phi^T S phi,
        # computed per query as ||L^-1 phi||^2.
        self._S_chol = L
        return self

    def predict(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior predictive mean and std per target, de-standardized.

        Epistemic only (posterior-weight uncertainty pushed through the
        feature map), matching :class:`GaussianProcessSurrogate`.
        """
        self._check_fitted()
        Phi = self._features(self._standardize_x(X))
        mean_std = Phi @ self._weights
        half = scipy.linalg.solve_triangular(self._S_chol, Phi.T, lower=True)
        latent_var = (half**2).sum(axis=0)
        latent_std = np.sqrt(latent_var)
        mean = mean_std * self._y_scale + self._y_mean
        std = latent_std[:, None] * self._y_scale[None, :]
        return mean, std

    def describe(self) -> Dict[str, object]:
        payload = super().describe()
        payload.update(
            {
                "n_random_features": self.n_features,
                "lengthscale": self.lengthscale,
                "noise": self.noise,
                "seed": self.seed,
            }
        )
        return payload


#: The surrogate registry: CLI/service model names to constructors.
SURROGATES: Dict[str, type] = {
    GaussianProcessSurrogate.name: GaussianProcessSurrogate,
    RandomFeatureSurrogate.name: RandomFeatureSurrogate,
}


def make_surrogate(name: str = "gp", **options) -> Surrogate:
    """Instantiate a registered surrogate by name."""
    if name not in SURROGATES:
        raise ValueError(
            f"unknown surrogate {name!r}; registered: {sorted(SURROGATES)}"
        )
    return SURROGATES[name](**options)


# -- content-addressed persistence ------------------------------------------


def _atomic_write(path: str, data: bytes) -> None:
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    descriptor, temp_path = tempfile.mkstemp(prefix=".tmp-", dir=directory)
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except FileNotFoundError:
            pass
        raise


def save_model(model: Surrogate, directory: Union[str, os.PathLike]) -> str:
    """Persist a fitted surrogate into a content-addressed model dir.

    The model pickles to ``<directory>/<digest>/model.pkl`` where
    ``digest`` is the sha256 of the pickle bytes (truncated to 16 hex
    chars), next to a ``meta.json`` with the model's :meth:`describe`
    payload; ``<directory>/latest.json`` is atomically repointed at the
    new id.  Returns the model id.
    """
    if not getattr(model, "is_fitted", False):
        raise ValueError("only fitted surrogates can be saved")
    payload = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
    model_id = hashlib.sha256(payload).hexdigest()[:16]
    root = os.fspath(directory)
    bundle = os.path.join(root, model_id)
    _atomic_write(os.path.join(bundle, "model.pkl"), payload)
    meta = dict(model.describe())
    meta["model_id"] = model_id
    _atomic_write(
        os.path.join(bundle, "meta.json"),
        (json.dumps(meta, indent=2, sort_keys=True) + "\n").encode("utf-8"),
    )
    _atomic_write(
        os.path.join(root, "latest.json"),
        (json.dumps({"model_id": model_id}, sort_keys=True) + "\n").encode("utf-8"),
    )
    return model_id


def list_models(directory: Union[str, os.PathLike]) -> List[Dict[str, object]]:
    """The saved model bundles under a model dir (meta payloads)."""
    root = os.fspath(directory)
    if not os.path.isdir(root):
        return []
    bundles = []
    for name in sorted(os.listdir(root)):
        meta_path = os.path.join(root, name, "meta.json")
        if os.path.isfile(meta_path):
            with open(meta_path, "r", encoding="utf-8") as handle:
                bundles.append(json.load(handle))
    return bundles


def load_model(
    directory: Union[str, os.PathLike], model_id: Optional[str] = None
) -> Surrogate:
    """Load a surrogate from a model dir (the latest one by default).

    The pickle bytes are re-hashed and must match the bundle's id --
    a tampered or torn bundle fails loudly instead of mispredicting.
    """
    root = os.fspath(directory)
    if model_id is None:
        latest = os.path.join(root, "latest.json")
        try:
            with open(latest, "r", encoding="utf-8") as handle:
                model_id = str(json.load(handle)["model_id"])
        except FileNotFoundError:
            raise FileNotFoundError(
                f"no saved surrogate under {root!r}; run 'repro ml fit' first"
            ) from None
    path = os.path.join(root, model_id, "model.pkl")
    with open(path, "rb") as handle:
        payload = handle.read()
    digest = hashlib.sha256(payload).hexdigest()[:16]
    if digest != model_id:
        raise ValueError(
            f"model bundle {model_id!r} is corrupt: content hash {digest!r} "
            "does not match its directory name"
        )
    model = pickle.loads(payload)
    if not isinstance(model, Surrogate):
        raise ValueError(
            f"model bundle {model_id!r} did not unpickle to a Surrogate "
            f"(got {type(model).__name__})"
        )
    return model
