"""Surrogate modelling over campaign stores (see ROADMAP item 4).

The subpackage turns completed campaigns into trained models and back
into new campaigns:

* :mod:`repro.ml.features` -- deterministic spec -> feature vectors
  (:class:`FeatureSchema`);
* :mod:`repro.ml.dataset` -- stream a :class:`~repro.campaign.CampaignStore`
  into ``(X, y)`` matrices (:func:`build_dataset`);
* :mod:`repro.ml.models` -- the :class:`Surrogate` protocol plus exact-GP
  and random-Fourier-feature implementations with content-addressed
  save/load;
* :mod:`repro.ml.active` -- acquisition functions that select the next
  batch of scenarios as an ordinary resumable sweep
  (:func:`select_batch`).
"""

from .active import (
    ACQUISITIONS,
    ActiveSelection,
    acquisition_scores,
    candidate_keys,
    physical_key,
    select_batch,
)
from .dataset import DEFAULT_TARGETS, Dataset, build_dataset, target_value
from .features import FeatureField, FeatureSchema, flatten_spec, infer_schema
from .models import (
    SURROGATES,
    GaussianProcessSurrogate,
    RandomFeatureSurrogate,
    Surrogate,
    list_models,
    load_model,
    make_surrogate,
    save_model,
)

__all__ = [
    "ACQUISITIONS",
    "DEFAULT_TARGETS",
    "SURROGATES",
    "ActiveSelection",
    "Dataset",
    "FeatureField",
    "FeatureSchema",
    "GaussianProcessSurrogate",
    "RandomFeatureSurrogate",
    "Surrogate",
    "acquisition_scores",
    "build_dataset",
    "candidate_keys",
    "physical_key",
    "flatten_spec",
    "infer_schema",
    "list_models",
    "load_model",
    "make_surrogate",
    "save_model",
    "select_batch",
    "target_value",
]
