"""One simulator protocol over the analytical FDM and finite-volume paths.

This module is the programmatic front door of the library.  Every scenario
(a :class:`~repro.scenarios.ScenarioSpec`, a registered name or a scenario
JSON file) can be

* **run** through either simulator family behind one protocol --
  :class:`FDMSimulator` (the analytical finite-difference path, served by
  the batched, LRU-cached :class:`~repro.core.engine.EvaluationEngine`) or
  :class:`ICESimulator` (the 3D-ICE-like finite-volume solver) -- both of
  which return the same :class:`SimulationResult` schema;
* **cross-validated** by running both simulators on the same spec and
  comparing the reported metrics (:meth:`Session.cross_validate`);
* **optimized** with the paper's channel-modulation design flow
  (:meth:`Session.optimize`), yielding an :class:`OptimizationRunResult`
  whose :meth:`~OptimizationRunResult.optimized_spec` pins the optimal
  design back into a serializable scenario.

Quick use::

    from repro import run, optimize

    result = run("test-a")                    # FDM by default
    ice = run("test-a", solver="ice")         # same scenario, other model
    best = optimize("test-a")                 # Sec. IV design flow

A :class:`Session` keeps evaluation engines (and hence solution caches)
alive across calls, so repeated runs, sweeps and optimizations share
solves.
"""

from __future__ import annotations

import inspect
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Tuple, Union, runtime_checkable

import numpy as np

from ._compat import import_attribute
from .exec.base import Executor
from .core.designer import ChannelModulationDesigner
from .core.engine import EvaluationEngine
from .core.picard import PicardSettings
from .core.results import ModulationResult
from .hydraulics.network import FlowNetwork
from .ice.solver import SteadyStateSolver
from .scenarios import ScenarioSpec, resolve_scenario
from .thermal.geometry import (
    ChannelGeometry,
    MultiChannelStructure,
    TestStructure,
    WidthProfile,
)
from .thermal.properties import get_coolant_model


__all__ = [
    "SimulationResult",
    "Simulator",
    "FDMSimulator",
    "ICESimulator",
    "CrossValidationResult",
    "OptimizationRunResult",
    "Session",
    "available_simulators",
    "get_simulator",
    "register_simulator",
    "run",
    "optimize",
    "cross_validate",
    "run_many",
    "optimize_many",
]


@dataclass
class SimulationResult:
    """Common result schema shared by every simulator backend.

    Attributes
    ----------
    scenario / simulator:
        Provenance labels: the scenario name and the simulator family
        (``"fdm"`` or ``"ice"``) that produced the result.
    peak_temperature_K / min_temperature_K / thermal_gradient_K:
        Silicon temperature extrema and the paper's max-min gradient metric.
    coolant_rise_K:
        Largest coolant inlet-to-outlet temperature rise.
    pressure_drops_Pa / max_pressure_drop_Pa:
        Per-lane Eq. (9) pressure drops of the scenario's channel design
        and their maximum, always evaluated at the *nominal* per-channel
        flow (they describe the design, not a control trajectory).  For
        policy-controlled transient runs the drop at the largest applied
        flow scale is reported separately as
        ``transient["max_pressure_drop_at_peak_flow_Pa"]``.
    wall_time_s:
        Wall-clock time of the solve.
    transient:
        Transient metrics (peak transient temperature, time above
        threshold, thermal-cycling amplitude, pumping energy, flow-scale
        schedule, ...) for scenarios with a transient section; ``None``
        for steady runs.  For transient runs the headline
        ``peak_temperature_K`` is the peak *over the whole run*, while
        ``min_temperature_K``/``thermal_gradient_K`` describe the final
        snapshot.
    provenance:
        Backend name, grid/unknown counts, cache statistics (FDM) or
        residual norm (ICE), and anything else worth auditing.
    solution:
        The raw solver output (:class:`~repro.thermal.solution.ThermalSolution`
        for FDM, :class:`~repro.ice.results.ThermalMapResult` for steady
        ICE, :class:`~repro.ice.results.TransientResult` for transient
        runs); excluded from :meth:`to_dict`.
    """

    scenario: str
    simulator: str
    peak_temperature_K: float
    min_temperature_K: float
    thermal_gradient_K: float
    coolant_rise_K: float
    pressure_drops_Pa: Tuple[float, ...]
    max_pressure_drop_Pa: float
    wall_time_s: float
    transient: Optional[Dict[str, object]] = None
    provenance: Dict[str, object] = field(default_factory=dict)
    solution: object = field(default=None, repr=False, compare=False)

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible representation (without the raw solution)."""
        return {
            "scenario": self.scenario,
            "simulator": self.simulator,
            "peak_temperature_K": self.peak_temperature_K,
            "peak_temperature_C": self.peak_temperature_K - 273.15,
            "min_temperature_K": self.min_temperature_K,
            "thermal_gradient_K": self.thermal_gradient_K,
            "coolant_rise_K": self.coolant_rise_K,
            "pressure_drops_Pa": list(self.pressure_drops_Pa),
            "max_pressure_drop_Pa": self.max_pressure_drop_Pa,
            "wall_time_s": self.wall_time_s,
            "transient": self.transient,
            "provenance": self.provenance,
        }

    def summary(self) -> Dict[str, float]:
        """Headline scalars (the metrics the paper reports per design)."""
        return {
            "peak_temperature_K": self.peak_temperature_K,
            "thermal_gradient_K": self.thermal_gradient_K,
            "coolant_rise_K": self.coolant_rise_K,
            "max_pressure_drop_Pa": self.max_pressure_drop_Pa,
        }


@runtime_checkable
class Simulator(Protocol):
    """Anything that can turn a :class:`ScenarioSpec` into a result."""

    name: str

    def run(self, spec: ScenarioSpec) -> SimulationResult:  # pragma: no cover
        """Simulate the scenario and return the common result schema."""
        ...


def _lane_pressure_drops(structure: MultiChannelStructure) -> np.ndarray:
    """Per-lane Eq. (9) pressure drops of a cavity's width profiles."""
    network = FlowNetwork(
        structure.geometry,
        structure.width_profiles(),
        flow_rate_per_channel=structure.lanes[0].flow_rate,
        coolant=structure.coolant,
    )
    return network.pressure_drops


def _scenario_pressure_drops(spec: ScenarioSpec, config) -> np.ndarray:
    """Per-lane Eq. (9) pressure drops of a scenario's channel design.

    Derives the hydraulic inputs (geometry with the scenario's channel
    length, per-lane width profiles, per-channel flow rate) straight from
    the spec, reproducing exactly what :func:`_lane_pressure_drops`
    computes on the built cavity -- without paying for the flux-map
    rasterization the cavity build performs.
    """
    params = config.params.with_overrides(channel_length=spec.channel_length())
    geometry = ChannelGeometry.from_parameters(params)
    profiles = spec.width_profiles()
    if profiles is None:
        profiles = [
            WidthProfile.uniform(geometry.max_width, geometry.length)
        ] * spec.n_lanes
    network = FlowNetwork(
        geometry,
        profiles,
        flow_rate_per_channel=params.flow_rate_per_channel,
        coolant=params.coolant,
    )
    return network.pressure_drops


def _picard_options(spec: ScenarioSpec) -> Dict[str, object]:
    """Solver kwargs for a temperature-dependent coolant scenario.

    Empty for the default ``"constant"`` model -- the solvers are then
    called with exactly the pre-Picard signature, so engine cache keys
    (which fold extra solver kwargs in) and results stay bit-identical.
    """
    if spec.coolant_model == "constant":
        return {}
    return {
        "coolant_model": get_coolant_model(spec.coolant_model),
        "picard": PicardSettings.from_solver_spec(spec.solver),
    }


class FDMSimulator:
    """The analytical finite-difference path behind the simulator protocol.

    Wraps the exact solve the programmatic
    :class:`~repro.core.designer.ChannelModulationDesigner` path performs
    (same grid, same backend, same pressure model), so results agree with
    the legacy entry points bit for bit.

    Parameters
    ----------
    engine:
        Optional shared :class:`~repro.core.engine.EvaluationEngine`; by
        default a private engine is built from the spec's solver settings
        at every call.
    """

    name = "fdm"

    def __init__(self, engine: Optional[EvaluationEngine] = None) -> None:
        self.engine = engine

    def _engine_for(self, spec: ScenarioSpec) -> EvaluationEngine:
        if self.engine is not None:
            return self.engine
        return EvaluationEngine(
            solver_backend=spec.solver.backend,
            cache_size=spec.solver.cache_size,
            n_workers=spec.solver.n_workers,
        )

    def run(self, spec: ScenarioSpec) -> SimulationResult:
        spec = resolve_scenario(spec)
        if spec.transient is not None:
            raise ValueError(
                f"scenario {spec.name!r} is transient; the analytical FDM "
                "model is steady-state only -- run it with solver='ice' "
                "(transient specs default to the ice simulator)"
            )
        structure = spec.build_structure()
        if isinstance(structure, TestStructure):
            structure = MultiChannelStructure.single(structure)
        engine = self._engine_for(spec)
        start = time.perf_counter()
        solution = engine.solve(
            structure,
            n_points=spec.grid.n_grid_points,
            **_picard_options(spec),
        )
        wall_time = time.perf_counter() - start
        drops = _lane_pressure_drops(structure)
        provenance = {
            "backend": engine.stats()["backend"],
            "n_grid_points": spec.grid.n_grid_points,
            "n_lanes": structure.n_lanes,
            "n_physical_channels": structure.n_physical_channels,
            "cost_J": solution.cost,
            "cache": engine.stats(),
        }
        picard_info = solution.metadata.get("picard")
        if picard_info is not None:
            provenance["picard"] = dict(picard_info)
        return SimulationResult(
            scenario=spec.name,
            simulator=self.name,
            peak_temperature_K=solution.peak_temperature,
            min_temperature_K=solution.min_temperature,
            thermal_gradient_K=solution.thermal_gradient,
            coolant_rise_K=solution.coolant_temperature_rise,
            pressure_drops_Pa=tuple(float(drop) for drop in drops),
            max_pressure_drop_Pa=float(np.max(drops)),
            wall_time_s=wall_time,
            provenance=provenance,
            solution=solution,
        )


class ICESimulator:
    """The finite-volume (3D-ICE-like) path behind the simulator protocol.

    The steady solve goes through the pluggable linear-solver backends of
    :mod:`repro.thermal.backends`, selected by the scenario's
    ``solver.backend`` field (the same field the FDM path uses), so
    repeated runs of an unchanged stack reuse the cached factorization.

    Scenarios with a transient section dispatch to the transient engine
    (:mod:`repro.transient_engine`): trace-driven backward-Euler
    integration with the runtime flow-control policy in the loop.  When a
    shared session engine is supplied, whole transient outcomes are
    memoized on the scenario's content hash -- re-running an unchanged
    transient scenario in one session pays nothing.

    Parameters
    ----------
    engine:
        Optional shared :class:`~repro.core.engine.EvaluationEngine` used
        only as a bounded memo cache for transient outcomes (the
        finite-volume solves themselves do not go through it).
    """

    name = "ice"

    def __init__(self, engine: Optional[EvaluationEngine] = None) -> None:
        self.engine = engine

    def _run_transient(self, spec: ScenarioSpec) -> SimulationResult:
        from .transient_engine import simulate_transient

        start = time.perf_counter()
        computed = []

        def compute():
            computed.append(True)
            result = simulate_transient(spec)
            # ROM activity counts once per actual integration (memo hits
            # replay the outcome without building or stepping anything).
            if self.engine is not None:
                self.engine.n_rom_builds += int(
                    result.metadata.get("n_rom_builds", 0)
                )
                self.engine.n_rom_steps += int(
                    result.metadata.get("n_rom_steps", 0)
                )
            return result

        if self.engine is not None:
            key = ("ice-transient", spec.spec_hash())
            outcome = self.engine.memo(key, compute)
        else:
            outcome = compute()
        wall_time = time.perf_counter() - start
        memoized = self.engine is not None and not computed
        config = spec.experiment_config()
        drops = _scenario_pressure_drops(spec, config)
        final = outcome.result.final_maps()
        transient_payload: Dict[str, object] = dict(outcome.metrics)
        transient_payload.update(
            {
                "policy": spec.transient.policy.kind,
                "duration_s": spec.transient.duration_s,
                "time_step_s": spec.transient.time_step_s,
                "n_steps": outcome.metadata["n_steps"],
                "flow_times_s": [float(t) for t in outcome.flow_times_s],
                "flow_scales": [float(s) for s in outcome.flow_scales],
            }
        )
        return SimulationResult(
            scenario=spec.name,
            simulator=self.name,
            peak_temperature_K=outcome.metrics["peak_transient_temperature_K"],
            min_temperature_K=final.min_temperature(),
            thermal_gradient_K=final.thermal_gradient(),
            coolant_rise_K=float(outcome.coolant_rise_history_K[-1]),
            pressure_drops_Pa=tuple(float(drop) for drop in drops),
            max_pressure_drop_Pa=float(np.max(drops)),
            wall_time_s=wall_time,
            transient=transient_payload,
            provenance={
                "backend": str(outcome.metadata["backend"]),
                "solver": "ice-transient-backward-euler",
                "assembly": str(
                    outcome.result.metadata.get("assembly", "vectorized")
                ),
                "n_unknowns": outcome.metadata["n_unknowns"],
                "memoized": memoized,
                "cache": self.engine.stats() if self.engine else None,
            },
            solution=outcome.result,
        )

    def run(self, spec: ScenarioSpec) -> SimulationResult:
        spec = resolve_scenario(spec)
        if spec.transient is not None:
            return self._run_transient(spec)
        stack = spec.build_stack()
        start = time.perf_counter()
        solver = SteadyStateSolver(
            stack, backend=spec.solver.backend, **_picard_options(spec)
        )
        maps = solver.solve()
        wall_time = time.perf_counter() - start
        picard_info = maps.metadata.get("picard")
        if picard_info is not None and self.engine is not None:
            self.engine.n_picard_iterations += int(picard_info["n_iterations"])
            self.engine.n_picard_fallbacks += int(bool(picard_info["fell_back"]))
        config = spec.experiment_config()
        # The cavity's pressure drop is a property of the channel design,
        # not of the thermal model, so both simulators report the same
        # Eq. (9) values for the same scenario.
        drops = _scenario_pressure_drops(spec, config)
        inlet = config.params.inlet_temperature
        coolant_rise = 0.0
        if maps.coolant_maps:
            coolant_rise = max(
                float(np.max(grid[:, -1])) - inlet
                for grid in maps.coolant_maps.values()
            )
        return SimulationResult(
            scenario=spec.name,
            simulator=self.name,
            peak_temperature_K=maps.peak_temperature(),
            min_temperature_K=maps.min_temperature(),
            thermal_gradient_K=maps.thermal_gradient(),
            coolant_rise_K=coolant_rise,
            pressure_drops_Pa=tuple(float(drop) for drop in drops),
            max_pressure_drop_Pa=float(np.max(drops)),
            wall_time_s=wall_time,
            provenance={
                "backend": str(maps.metadata.get("backend", "auto")),
                "solver": str(maps.metadata.get("solver", "ice-steady")),
                "assembly": str(maps.metadata.get("assembly", "vectorized")),
                "grid": list(maps.metadata.get("grid", ())),
                "n_unknowns": maps.metadata.get("n_unknowns"),
                "residual_norm": maps.metadata.get("residual_norm"),
                "cache": None,
                **(
                    {"picard": dict(picard_info)}
                    if picard_info is not None
                    else {}
                ),
            },
            solution=maps,
        )


#: Registry of simulator factories keyed by family name.  Values are
#: factories (classes/callables) or lazy ``"module:attr"`` references
#: resolved on first use -- registering a plugin by reference never forces
#: an import, which makes registration order irrelevant.  Guarded by a
#: lock so registration is safe from worker threads.
_SIMULATORS: Dict[str, Union[str, Callable[..., Simulator]]] = {
    "fdm": FDMSimulator,
    "ice": ICESimulator,
}
_SIMULATORS_LOCK = threading.Lock()


def available_simulators() -> List[str]:
    """Names of the registered simulator families (a snapshot copy)."""
    with _SIMULATORS_LOCK:
        return list(_SIMULATORS)


def register_simulator(
    name: str,
    factory: Union[str, Callable[..., Simulator]],
    overwrite: bool = False,
) -> None:
    """Register a custom simulator factory under ``name``.

    ``factory`` may be a callable (class or function building a
    :class:`Simulator`) or a lazy ``"module:attr"`` string, resolved on
    first use.  The lazy form is import-order-safe -- it can be
    registered before its implementation module is importable (e.g. from
    an entry-point shim) and ships cleanly to campaign worker processes.
    """
    if not isinstance(name, str) or not name:
        raise ValueError(f"simulator name must be a non-empty string, got {name!r}")
    if not (callable(factory) or isinstance(factory, str)):
        raise TypeError(
            "simulator factory must be callable or a 'module:attr' string, "
            f"got {type(factory).__name__}"
        )
    with _SIMULATORS_LOCK:
        if name in _SIMULATORS and not overwrite:
            raise ValueError(
                f"simulator {name!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        _SIMULATORS[name] = factory


def _accepts_engine(factory: Callable[..., Simulator]) -> bool:
    """True when a simulator factory takes an ``engine`` keyword."""
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return False
    return "engine" in parameters or any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


def _resolve_simulator_factory(name: str) -> Callable[..., Simulator]:
    """Look up a registered factory, resolving lazy references once."""
    with _SIMULATORS_LOCK:
        try:
            factory = _SIMULATORS[name]
        except KeyError:
            raise ValueError(
                f"unknown simulator {name!r}; available: {list(_SIMULATORS)}"
            ) from None
    if isinstance(factory, str):
        resolved = import_attribute(factory, context=f"simulator {name!r}")
        with _SIMULATORS_LOCK:
            # Another thread may have resolved (or re-registered) the name
            # meanwhile; only cache over the unresolved reference.
            if _SIMULATORS.get(name) == factory:
                _SIMULATORS[name] = resolved
        factory = resolved
    return factory


def get_simulator(
    name: str, engine: Optional[EvaluationEngine] = None
) -> Simulator:
    """Build a simulator by family name (``"fdm"`` or ``"ice"``).

    A shared evaluation engine is forwarded to any factory whose signature
    accepts an ``engine`` keyword (not just the built-in FDM family), so
    custom engine-backed simulators keep Session cache sharing.
    """
    factory = _resolve_simulator_factory(name)
    if engine is not None and _accepts_engine(factory):
        return factory(engine=engine)
    return factory()


@dataclass
class CrossValidationResult:
    """Outcome of running both simulator families on one scenario."""

    scenario: str
    fdm: SimulationResult
    ice: SimulationResult

    @property
    def peak_delta_K(self) -> float:
        """ICE minus FDM peak temperature (K)."""
        return self.ice.peak_temperature_K - self.fdm.peak_temperature_K

    @property
    def gradient_delta_K(self) -> float:
        """ICE minus FDM thermal gradient (K)."""
        return self.ice.thermal_gradient_K - self.fdm.thermal_gradient_K

    @property
    def coolant_rise_delta_K(self) -> float:
        """ICE minus FDM coolant temperature rise (K)."""
        return self.ice.coolant_rise_K - self.fdm.coolant_rise_K

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible representation of both results and the deltas."""
        return {
            "scenario": self.scenario,
            "fdm": self.fdm.to_dict(),
            "ice": self.ice.to_dict(),
            "peak_delta_K": self.peak_delta_K,
            "gradient_delta_K": self.gradient_delta_K,
            "coolant_rise_delta_K": self.coolant_rise_delta_K,
        }


@dataclass
class OptimizationRunResult:
    """Outcome of running the Sec. IV design flow on one scenario.

    Wraps the optimizer's :class:`~repro.core.results.ModulationResult`
    with scenario provenance, and can pin the optimal design back into a
    serializable spec via :meth:`optimized_spec`.
    """

    scenario: str
    spec: ScenarioSpec
    result: ModulationResult
    wall_time_s: float
    provenance: Dict[str, object] = field(default_factory=dict)

    def optimized_spec(self) -> ScenarioSpec:
        """The scenario with the optimal width design pinned into it."""
        return self.spec.with_design(self.result.optimal.width_profiles)

    def summary(self) -> Dict[str, object]:
        """The optimizer's headline scalars plus provenance."""
        summary = dict(self.result.summary())
        summary["scenario"] = self.scenario
        summary["wall_time_s"] = self.wall_time_s
        return summary

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible representation of the full optimization run."""
        return {
            "scenario": self.scenario,
            "summary": self.result.summary(),
            "comparison": self.result.comparison_table(),
            "optimal_design": self.result.optimal.to_dict(),
            "wall_time_s": self.wall_time_s,
            "provenance": self.provenance,
        }


class Session:
    """A facade that keeps solution caches alive across scenario runs.

    One evaluation engine is maintained per (backend, worker-count) pair,
    so repeated runs of the same scenario -- or of design variants that
    revisit previously solved candidates -- are served from the LRU
    solution cache instead of re-solving.

    Parameters
    ----------
    cache_size / n_workers:
        Optional session-wide overrides of the per-spec solver settings.
    simulator:
        Optional session-wide default simulator: a registered family name
        (``"fdm"``/``"ice"``/custom) or a ready-built :class:`Simulator`
        instance -- the instance form bypasses the string registry
        entirely.  Per-call ``solver=...`` arguments still win.
    """

    def __init__(
        self,
        cache_size: Optional[int] = None,
        n_workers: Optional[int] = None,
        simulator: Optional[Union[str, Simulator]] = None,
    ) -> None:
        self.cache_size = cache_size
        self.n_workers = n_workers
        if simulator is not None and not isinstance(simulator, (str, Simulator)):
            raise TypeError(
                "Session simulator must be a registered family name or a "
                f"Simulator instance, got {type(simulator).__name__}"
            )
        self.simulator = simulator
        # Keyed on (backend, n_workers, cache_size); see engine_for.
        self._engines: Dict[Tuple[str, int, int], EvaluationEngine] = {}
        self._engines_lock = threading.Lock()

    def engine_for(self, spec: ScenarioSpec) -> EvaluationEngine:
        """The session engine serving this spec's solver settings.

        Engines are shared per (backend, worker count, cache capacity)
        triple; specs that only differ in problem content therefore share
        one solution cache, while a spec that asks for a different cache
        capacity gets its own engine instead of silently inheriting
        another spec's.  Creation is locked, so thread-executor campaigns
        racing on a cold session still share one engine per triple.
        """
        n_workers = self.n_workers or spec.solver.n_workers
        cache_size = self.cache_size or spec.solver.cache_size
        key = (spec.solver.backend, n_workers, cache_size)
        with self._engines_lock:
            if key not in self._engines:
                self._engines[key] = EvaluationEngine(
                    solver_backend=spec.solver.backend,
                    cache_size=cache_size,
                    n_workers=n_workers,
                )
            return self._engines[key]

    def _simulator_for(
        self, spec: ScenarioSpec, solver: Optional[Union[str, Simulator]]
    ) -> Simulator:
        """Build/select the simulator serving one run call.

        Precedence: per-call ``solver`` > session-wide ``simulator`` >
        the spec's own ``solver.simulator``.  A :class:`Simulator`
        instance is used as-is; names go through the registry and receive
        the shared session engine when their factory accepts one.
        """
        choice = solver if solver is not None else self.simulator
        if choice is None:
            choice = spec.solver.simulator
        if not isinstance(choice, str):
            if isinstance(choice, Simulator):
                return choice
            raise TypeError(
                "solver must be a registered family name or a Simulator "
                f"instance, got {type(choice).__name__}"
            )
        factory = _resolve_simulator_factory(choice)
        # Build/look up the shared engine only for simulators that accept
        # one (the FDM solution cache, the ICE transient-outcome memo), so
        # sessions of engine-less custom simulators stay engine-free.
        engine = self.engine_for(spec) if _accepts_engine(factory) else None
        return get_simulator(choice, engine=engine)

    def run(
        self, scenario, solver: Optional[Union[str, Simulator]] = None
    ) -> SimulationResult:
        """Run a scenario through the requested (or its default) simulator."""
        spec = resolve_scenario(scenario)
        return self._simulator_for(spec, solver).run(spec)

    def optimize(self, scenario) -> OptimizationRunResult:
        """Run the optimal channel-modulation design flow on a scenario."""
        spec = resolve_scenario(scenario)
        engine = self.engine_for(spec)
        designer = ChannelModulationDesigner.from_spec(spec, engine=engine)
        start = time.perf_counter()
        result = designer.design()
        wall_time = time.perf_counter() - start
        return OptimizationRunResult(
            scenario=spec.name,
            spec=spec,
            result=result,
            wall_time_s=wall_time,
            provenance={
                "backend": engine.stats()["backend"],
                "n_grid_points": spec.grid.n_grid_points,
                "gradient_mode": designer.optimizer.effective_gradient_mode,
                "cache": engine.stats(),
            },
        )

    def cross_validate(self, scenario) -> CrossValidationResult:
        """Run both simulator families on one scenario and compare."""
        spec = resolve_scenario(scenario)
        return CrossValidationResult(
            scenario=spec.name,
            fdm=self.run(spec, solver="fdm"),
            ice=self.run(spec, solver="ice"),
        )

    # -- campaigns ---------------------------------------------------------

    def run_many(
        self,
        sweep,
        *,
        executor: Union[str, Executor] = "serial",
        workers: int = 1,
        solver: Optional[str] = None,
        out=None,
        cache=None,
        action: str = "run",
        progress: Optional[Callable[[Dict[str, object]], None]] = None,
    ):
        """Run a whole sweep through an executor, streaming into a store.

        Parameters
        ----------
        sweep:
            A :class:`~repro.sweeps.SweepSpec`, a sweep mapping or JSON
            file path, a sequence of scenario-likes, or one scenario-like
            (see :func:`~repro.sweeps.expand_scenarios`).
        executor / workers:
            A registered executor name (``"serial"``, ``"thread"``,
            ``"process"`` or custom) or a ready-built executor instance;
            ``workers`` sizes named executors.
        solver:
            Optional simulator-family override applied to every scenario.
        out:
            Optional campaign-store target: a JSONL path or a
            :class:`~repro.campaign.CampaignStore`.  Completed records
            stream into it; on re-runs, scenarios whose ``spec_hash`` is
            already stored with ``status == "ok"`` are *not* recomputed.
        cache:
            Optional shared result cache: a
            :class:`~repro.serve.cache.ResultCache` or a directory path.
            Unlike ``out`` (which is scoped to one campaign), the cache
            is content-addressed and shared across campaigns, sessions
            and processes: every task is looked up by its resume key
            before any solve, hits are replayed with zero counters
            (``source == "cache"``), and fresh ok records (plus
            store-resumed records not yet cached) are written back.
        action:
            ``"run"`` (simulate) or ``"optimize"`` (Sec. IV design flow).
        progress:
            Optional callback invoked with each fresh record as it lands.

        Returns
        -------
        :class:`~repro.campaign.CampaignResult` with per-scenario records
        in sweep order and solve/cache counters aggregated across workers.
        """
        from .campaign import CampaignResult, CampaignStore
        from .exec import get_executor
        from .exec.base import (
            COUNTER_KEYS,
            CampaignTask,
            make_tasks,
            session_counters,
        )
        from .sweeps import resolve_campaign

        # The session-wide simulator override must be visible to the tasks
        # themselves: record labels, resume keys and process workers all
        # derive the effective simulator from the task, not from this
        # session.  Instance overrides cannot be recorded or shipped to
        # workers, so campaigns require a registered family name.
        if solver is None and action == "run" and self.simulator is not None:
            if not isinstance(self.simulator, str):
                raise ValueError(
                    "campaigns need a registered simulator family name; "
                    "Session(simulator=<instance>) cannot be recorded in a "
                    "campaign store or shipped to worker processes -- pass "
                    "solver=<name> or register the simulator by name"
                )
            solver = self.simulator
        name, specs = resolve_campaign(sweep)
        tasks = make_tasks(specs, action=action, solver=solver)
        if out is None or isinstance(out, CampaignStore):
            store = out
        else:
            store = CampaignStore(out)
        if store is not None and store.closed:
            # Caller-provided stores come back closed from a previous
            # run_many (the finally below); resuming with the same object
            # is legitimate, so reopen rather than raise.
            store.reopen()
        if cache is not None and not hasattr(cache, "get"):
            from .serve.cache import ResultCache

            cache = ResultCache(cache)
        stored = store.load() if store is not None else {}
        if isinstance(executor, str):
            executor_obj = get_executor(executor, workers=workers)
        else:
            executor_obj = executor
        records: List[Optional[Dict[str, object]]] = [None] * len(tasks)
        pending: List[CampaignTask] = []
        start = time.perf_counter()
        try:
            for task in tasks:
                previous = stored.get(task.key())
                if previous is not None and previous.get("status") == "ok":
                    resumed = dict(previous)
                    resumed["index"] = task.index
                    resumed["source"] = "store"
                    records[task.index] = resumed
                    if cache is not None and task.key() not in cache:
                        cache.put(task.key(), resumed)
                    continue
                cached = cache.get(task.key()) if cache is not None else None
                if cached is not None and cached.get("status") == "ok":
                    # A shared-cache hit: replay the content fields and
                    # zero the activity ones -- nothing was solved here.
                    record = dict(cached)
                    record["index"] = task.index
                    record["executor"] = executor_obj.name
                    record["counters"] = {key: 0 for key in COUNTER_KEYS}
                    record["wall_time_s"] = 0.0
                    if store is not None:
                        store.append(record)
                    record["source"] = "cache"
                    records[task.index] = record
                    if progress is not None:
                        progress(record)
                    continue
                pending.append(task)
            counters_before = session_counters(self)
            for record in executor_obj.execute(pending, session=self):
                record["executor"] = executor_obj.name
                if store is not None:
                    store.append(record)
                if cache is not None and record.get("status") == "ok":
                    cache.put(record["spec_hash"], record)
                record["source"] = "run"
                records[record["index"]] = record
                if progress is not None:
                    progress(record)
        finally:
            # A dying worker pool or a raising progress callback must not
            # leak the store handle -- every record streamed so far is
            # flushed and the interrupted campaign stays resumable.
            if store is not None:
                store.close()
        wall_time = time.perf_counter() - start
        # Aggregate the campaign's engine counters: activity on this
        # session's engines (serial/thread executors) plus the per-record
        # deltas reported by executors that declare running their own
        # sessions (shares_session=False: process workers, custom remote
        # executors).  The default is shares_session=True -- a custom
        # executor that simply runs execute_task on the caller's session
        # must not have its activity counted twice.
        counters_after = session_counters(self)
        deltas = [
            {
                key: counters_after[key] - counters_before[key]
                for key in counters_before
            }
        ]
        if not getattr(executor_obj, "shares_session", True):
            deltas.extend(
                record["counters"]
                for record in records
                if record is not None
                and record.get("source") == "run"
                and record.get("counters")
            )
        counters = EvaluationEngine.merge_stats(deltas)
        return CampaignResult(
            name=name,
            executor=executor_obj.name,
            workers=getattr(executor_obj, "workers", workers),
            records=records,
            wall_time_s=wall_time,
            n_from_store=sum(
                1 for r in records if r is not None and r.get("source") == "store"
            ),
            n_from_cache=sum(
                1 for r in records if r is not None and r.get("source") == "cache"
            ),
            store_path=store.path if store is not None else None,
            provenance={
                "action": action,
                "solver": solver,
                "n_scenarios": len(tasks),
                "counters": counters,
            },
        )

    def optimize_many(
        self,
        sweep,
        *,
        executor: Union[str, Executor] = "serial",
        workers: int = 1,
        out=None,
        progress: Optional[Callable[[Dict[str, object]], None]] = None,
    ):
        """Run the Sec. IV design flow over a whole sweep (see run_many)."""
        return self.run_many(
            sweep,
            executor=executor,
            workers=workers,
            out=out,
            action="optimize",
            progress=progress,
        )

    def stats(self) -> Dict[str, Dict[str, object]]:
        """Cache/solve statistics of every engine the session created."""
        report: Dict[str, Dict[str, object]] = {}
        with self._engines_lock:
            # Snapshot: thread-executor tasks may create engines while
            # another task is reading statistics.
            engines = list(self._engines.items())
        for (backend, workers, cache_size), engine in engines:
            label = f"{backend}@{workers}"
            if label in report:  # same backend/workers, other cache capacity
                label = f"{backend}@{workers}/cache{cache_size}"
            report[label] = engine.stats()
        return report


def run(
    scenario, solver: Optional[str] = None, session: Optional[Session] = None
) -> SimulationResult:
    """Run a scenario (spec, registered name or JSON path) once.

    ``solver`` overrides the spec's default simulator family; pass a
    :class:`Session` to share solution caches across calls.
    """
    return (session or Session()).run(scenario, solver=solver)


def optimize(scenario, session: Optional[Session] = None) -> OptimizationRunResult:
    """Run the Sec. IV channel-modulation design flow on a scenario."""
    return (session or Session()).optimize(scenario)


def cross_validate(
    scenario, session: Optional[Session] = None
) -> CrossValidationResult:
    """Run both the FDM and ICE simulators on a scenario and compare."""
    return (session or Session()).cross_validate(scenario)


def run_many(sweep, session: Optional[Session] = None, **kwargs):
    """Run a whole sweep/campaign once (see :meth:`Session.run_many`).

    Pass a :class:`Session` to share solution caches with other calls;
    keyword arguments (``executor``, ``workers``, ``out``, ``solver``,
    ``action``, ``progress``) are forwarded to :meth:`Session.run_many`.
    """
    return (session or Session()).run_many(sweep, **kwargs)


def optimize_many(sweep, session: Optional[Session] = None, **kwargs):
    """Optimize every scenario of a sweep (see :meth:`Session.optimize_many`)."""
    return (session or Session()).optimize_many(sweep, **kwargs)
