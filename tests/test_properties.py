"""Unit tests for the material/coolant property library and Table I."""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.thermal.properties import (
    COOLANT_LIBRARY,
    Coolant,
    CoolantModel,
    WATER_COOLANT_MODEL,
    MATERIAL_LIBRARY,
    PaperParameters,
    SILICON,
    SolidMaterial,
    TABLE_I,
    WATER,
    m3_per_s_to_ml_per_min,
    ml_per_min_to_m3_per_s,
)


class TestSolidMaterial:
    def test_silicon_matches_table_i(self):
        assert SILICON.thermal_conductivity == pytest.approx(130.0)

    def test_rejects_non_positive_conductivity(self):
        with pytest.raises(ValueError):
            SolidMaterial("bad", thermal_conductivity=0.0, volumetric_heat_capacity=1.0)

    def test_rejects_non_positive_heat_capacity(self):
        with pytest.raises(ValueError):
            SolidMaterial("bad", thermal_conductivity=1.0, volumetric_heat_capacity=-2.0)

    def test_materials_are_immutable(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SILICON.thermal_conductivity = 10.0

    def test_library_contains_silicon_and_copper(self):
        assert "silicon" in MATERIAL_LIBRARY
        assert "copper" in MATERIAL_LIBRARY


class TestCoolant:
    def test_water_volumetric_heat_capacity_matches_table_i(self):
        assert WATER.volumetric_heat_capacity == pytest.approx(4.17e6)

    def test_specific_heat_consistency(self):
        assert WATER.specific_heat == pytest.approx(
            WATER.volumetric_heat_capacity / WATER.density
        )

    def test_kinematic_viscosity_consistency(self):
        assert WATER.kinematic_viscosity == pytest.approx(
            WATER.dynamic_viscosity / WATER.density
        )

    def test_rejects_non_positive_viscosity(self):
        with pytest.raises(ValueError):
            Coolant(
                name="bad",
                thermal_conductivity=0.6,
                volumetric_heat_capacity=4e6,
                dynamic_viscosity=0.0,
                density=1000.0,
                prandtl=6.0,
            )

    def test_library_contains_water(self):
        assert "water" in COOLANT_LIBRARY


class TestFlowRateConversions:
    def test_round_trip(self):
        assert m3_per_s_to_ml_per_min(ml_per_min_to_m3_per_s(4.8)) == pytest.approx(4.8)

    def test_known_value(self):
        # 60 ml/min is exactly 1 ml/s = 1e-6 m^3/s.
        assert ml_per_min_to_m3_per_s(60.0) == pytest.approx(1e-6)


class TestPaperParameters:
    def test_table_i_defaults(self):
        table = TABLE_I.as_table()
        assert table["k_Si [W/m.K]"] == pytest.approx(130.0)
        assert table["W [um]"] == pytest.approx(100.0)
        assert table["H_Si [um]"] == pytest.approx(50.0)
        assert table["H_C [um]"] == pytest.approx(100.0)
        assert table["c_v [J/m^3.K]"] == pytest.approx(4.17e6)
        assert table["V_dot [ml/min/channel]"] == pytest.approx(4.8)
        assert table["T_C,in [K]"] == pytest.approx(300.0)
        assert table["dP_max [Pa]"] == pytest.approx(10e5)
        assert table["w_Cmin [um]"] == pytest.approx(10.0)
        assert table["w_Cmax [um]"] == pytest.approx(50.0)

    def test_with_overrides_returns_new_instance(self):
        modified = TABLE_I.with_overrides(inlet_temperature=310.0)
        assert modified.inlet_temperature == pytest.approx(310.0)
        assert TABLE_I.inlet_temperature == pytest.approx(300.0)
        assert modified is not TABLE_I

    def test_rejects_inverted_width_bounds(self):
        with pytest.raises(ValueError):
            PaperParameters(min_channel_width=60e-6, max_channel_width=50e-6)

    def test_rejects_width_equal_to_pitch(self):
        with pytest.raises(ValueError):
            PaperParameters(max_channel_width=100e-6, channel_pitch=100e-6)

    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError):
            PaperParameters(channel_height=0.0)

    def test_flow_rate_reporting(self):
        assert TABLE_I.flow_rate_ml_per_min == pytest.approx(4.8)


class TestCoolantModelProperties:
    """Hypothesis property tests of the temperature-dependent water model."""

    def test_constant_mode_validation(self):
        with pytest.raises(ValueError, match="mode"):
            CoolantModel(name="x", mode="table")
        with pytest.raises(ValueError, match="t_min"):
            CoolantModel(name="x", mode="constant", t_min=400.0, t_max=300.0)
        with pytest.raises(ValueError, match="coefficients"):
            CoolantModel(name="x", mode="polynomial")

    @given(
        st.floats(min_value=276.0, max_value=369.0),
        st.floats(min_value=0.1, max_value=20.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_viscosity_monotone_decreasing(self, temperature, delta):
        import numpy as np

        model = WATER_COOLANT_MODEL
        warmer = model.clamp(temperature + delta)
        mu_cold = float(model.mu(np.asarray(temperature)))
        mu_warm = float(model.mu(np.asarray(warmer)))
        assert mu_cold > 0.0 and mu_warm > 0.0
        if warmer > temperature:
            assert mu_warm < mu_cold

    @given(st.floats(min_value=100.0, max_value=500.0))
    @settings(max_examples=80, deadline=None)
    def test_film_properties_positive_and_clamped(self, temperature):
        import numpy as np

        state = WATER_COOLANT_MODEL.film(np.asarray(temperature))
        for value in (
            state.thermal_conductivity,
            state.volumetric_heat_capacity,
            state.dynamic_viscosity,
            state.density,
            state.prandtl,
        ):
            assert np.all(np.asarray(value) > 0.0)
        # Clamping: far outside the fit range the state equals the edge.
        edge = 275.0 if temperature < 275.0 else min(temperature, 370.0)
        reference = WATER_COOLANT_MODEL.film(np.asarray(edge))
        assert float(state.dynamic_viscosity) == pytest.approx(
            float(reference.dynamic_viscosity)
        )

    @given(
        st.sampled_from(["constant", "polynomial"]),
        st.floats(min_value=200.0, max_value=299.0),
        st.floats(min_value=301.0, max_value=500.0),
        st.lists(
            st.floats(
                min_value=-2.0,
                max_value=2.0,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_through_dict(self, mode, t_min, t_max, coefficients):
        coefficient_tuple = tuple(coefficients)
        model = CoolantModel(
            name="rt",
            mode=mode,
            base=WATER,
            t_min=t_min,
            t_max=t_max,
            mu_coefficients=coefficient_tuple,
            k_coefficients=coefficient_tuple,
            rho_coefficients=coefficient_tuple,
            cp_coefficients=coefficient_tuple,
        )
        rebuilt = CoolantModel.from_dict(
            json.loads(json.dumps(model.to_dict()))
        )
        assert rebuilt == model
