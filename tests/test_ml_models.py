"""Tests of repro.ml.models: GP/RFF surrogates and content-addressed save/load."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.ml.dataset import Dataset, build_dataset
from repro.ml.features import FeatureField, FeatureSchema
from repro.ml.models import (
    SURROGATES,
    GaussianProcessSurrogate,
    RandomFeatureSurrogate,
    Surrogate,
    _cholesky_with_jitter,
    list_models,
    load_model,
    make_surrogate,
    save_model,
)


def toy_dataset(n=12, seed=7):
    """A smooth 2D regression problem wrapped as a Dataset."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1.0, 1.0, size=(n, 2))
    y = np.column_stack(
        [
            np.sin(2.0 * X[:, 0]) + 0.5 * X[:, 1],
            (X**2).sum(axis=1),
        ]
    )
    schema = FeatureSchema(
        fields=(
            FeatureField(path="a", kind="numeric"),
            FeatureField(path="b", kind="numeric"),
        )
    )
    return Dataset(
        X=X,
        y=y,
        targets=("f", "g"),
        schema=schema,
        spec_hashes=tuple(f"h{i}" for i in range(n)),
        scenarios=tuple(f"s{i}" for i in range(n)),
    )


class TestRegistry:
    def test_builtin_names(self):
        assert set(SURROGATES) == {"gp", "rff"}

    def test_make_surrogate_builds_each(self):
        assert isinstance(make_surrogate("gp"), GaussianProcessSurrogate)
        assert isinstance(make_surrogate("rff"), RandomFeatureSurrogate)

    def test_unknown_name_is_an_error(self):
        with pytest.raises(ValueError, match="unknown surrogate"):
            make_surrogate("forest")

    def test_fitted_models_satisfy_the_protocol(self):
        ds = toy_dataset()
        for name in SURROGATES:
            assert isinstance(make_surrogate(name).fit(ds), Surrogate)


class TestGaussianProcess:
    def test_interpolates_training_points(self):
        ds = toy_dataset()
        model = make_surrogate("gp").fit(ds)
        mean, std = model.predict(ds.X)
        assert mean.shape == (ds.n_samples, 2)
        assert std.shape == (ds.n_samples, 2)
        assert np.allclose(mean, ds.y, atol=1e-3)

    def test_std_is_small_on_data_and_grows_away_from_it(self):
        ds = toy_dataset()
        model = make_surrogate("gp").fit(ds)
        _, std_on = model.predict(ds.X)
        _, std_off = model.predict(np.full((1, 2), 25.0))
        assert float(std_on.max()) < 0.05
        assert float(std_off.min()) > float(std_on.max())

    def test_predict_rejects_wrong_width(self):
        model = make_surrogate("gp").fit(toy_dataset())
        with pytest.raises(ValueError, match="fitted on 2"):
            model.predict(np.zeros((1, 3)))

    def test_fit_needs_two_samples(self):
        ds = toy_dataset(n=1)
        with pytest.raises(ValueError, match="2\\+ distinct ok records"):
            make_surrogate("gp").fit(ds)

    def test_describe_is_json_friendly(self):
        model = make_surrogate("gp").fit(toy_dataset())
        described = json.loads(json.dumps(model.describe()))
        assert described["model"] == "gp"
        assert described["n_samples"] == 12
        assert described["targets"] == ["f", "g"]


class TestRandomFeatures:
    def test_fits_smooth_functions_approximately(self):
        ds = toy_dataset(n=40)
        model = make_surrogate("rff", n_features=512).fit(ds)
        mean, std = model.predict(ds.X)
        assert np.allclose(mean, ds.y, atol=0.15)
        assert np.all(std >= 0.0)

    def test_seeded_fits_are_deterministic(self):
        ds = toy_dataset()
        first = make_surrogate("rff").fit(ds)
        second = make_surrogate("rff").fit(ds)
        query = np.array([[0.3, -0.4]])
        assert np.array_equal(first.predict(query)[0], second.predict(query)[0])

    def test_uncertainty_grows_away_from_data(self):
        ds = toy_dataset(n=40)
        model = make_surrogate("rff", n_features=512).fit(ds)
        _, std_on = model.predict(ds.X)
        _, std_off = model.predict(np.full((1, 2), 10.0))
        assert float(std_off.min()) > float(std_on.mean())


class TestCholeskyJitter:
    def test_recovers_from_a_singular_kernel(self):
        K = np.ones((4, 4))  # rank one: plain Cholesky fails
        L, jitter = _cholesky_with_jitter(K)
        assert jitter > 0.0
        assert np.allclose(L @ L.T, K + jitter * np.eye(4))

    def test_gp_survives_duplicate_rows(self):
        ds = toy_dataset()
        X = np.vstack([ds.X, ds.X[:1]])
        y = np.vstack([ds.y, ds.y[:1]])
        dup = Dataset(X=X, y=y, targets=ds.targets, schema=ds.schema)
        model = GaussianProcessSurrogate(optimize=False).fit(dup)
        mean, _ = model.predict(ds.X[:1])
        assert np.allclose(mean, ds.y[:1], atol=1e-2)


class TestSaveLoad:
    def test_round_trip_is_content_addressed(self, tmp_path):
        ds = toy_dataset()
        model = make_surrogate("gp").fit(ds)
        model_id = save_model(model, tmp_path)
        # The id is the truncated sha256 of the stored pickle itself.
        payload = (tmp_path / model_id / "model.pkl").read_bytes()
        digest = __import__("hashlib").sha256(payload).hexdigest()
        assert model_id == digest[:16]
        clone = load_model(tmp_path)
        query = np.array([[0.1, 0.2]])
        assert np.array_equal(clone.predict(query)[0], model.predict(query)[0])

    def test_saving_twice_reuses_the_bundle(self, tmp_path):
        model = make_surrogate("rff").fit(toy_dataset())
        first = save_model(model, tmp_path)
        second = save_model(model, tmp_path)
        assert first == second
        assert [entry["model_id"] for entry in list_models(tmp_path)] == [first]

    def test_load_by_id_and_latest_pointer(self, tmp_path):
        gp_id = save_model(make_surrogate("gp").fit(toy_dataset()), tmp_path)
        rff_id = save_model(make_surrogate("rff").fit(toy_dataset()), tmp_path)
        assert load_model(tmp_path, gp_id).name == "gp"
        assert load_model(tmp_path).name == "rff"  # latest.json wins
        latest = json.loads((tmp_path / "latest.json").read_text())
        assert latest["model_id"] == rff_id

    def test_tampered_bundle_is_rejected(self, tmp_path):
        model_id = save_model(make_surrogate("gp").fit(toy_dataset()), tmp_path)
        bundle = tmp_path / model_id / "model.pkl"
        bundle.write_bytes(bundle.read_bytes() + b" ")
        with pytest.raises(ValueError, match="content hash"):
            load_model(tmp_path, model_id)

    def test_missing_directory_is_a_clear_error(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "nope")
