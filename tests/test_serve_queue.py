"""Tests of the serve primitives: the durable job queue and the result cache."""

from __future__ import annotations

import json

import pytest

from repro.serve.cache import ResultCache, cacheable_record
from repro.serve.queue import JobQueue, job_hash


def ok_record(spec_hash="ab" * 32, **extra):
    record = {
        "spec_hash": spec_hash,
        "scenario": "t",
        "action": "run",
        "solver": "fdm",
        "status": "ok",
        "result": {"peak_temperature_K": 331.25},
        "index": 3,
        "source": "run",
        "executor": "serial",
        "wall_time_s": 0.01,
        "counters": {"n_solves": 1},
    }
    record.update(extra)
    return record


class TestJobLifecycle:
    def test_submit_claim_done(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        job, resubmitted = queue.submit("sweep", {"x": 1}, task_keys=["a1" * 32])
        assert not resubmitted
        assert job.state == "submitted"
        assert job.n_total == 1
        assert job.job_id == job.hash[:12]
        claimed = queue.claim(timeout=0.1)
        assert claimed.job_id == job.job_id
        assert claimed.state == "running"
        queue.mark_done(job.job_id, {"n_ok": 1})
        assert queue.get(job.job_id).state == "done"
        assert queue.get(job.job_id).summary == {"n_ok": 1}
        assert queue.counts()["done"] == 1

    def test_failed_jobs_record_the_error(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        job, _ = queue.submit("run", "test-a", task_keys=["a1" * 32])
        queue.claim(timeout=0.1)
        queue.mark_failed(job.job_id, "RuntimeError: boom")
        final = queue.get(job.job_id)
        assert final.state == "failed"
        assert "boom" in final.error

    def test_claim_times_out_empty(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        assert queue.claim(timeout=0.01) is None

    def test_claim_is_fifo(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        first, _ = queue.submit("run", "a", task_keys=["a1" * 32])
        second, _ = queue.submit("run", "b", task_keys=["b2" * 32])
        assert queue.claim(timeout=0.1).job_id == first.job_id
        assert queue.claim(timeout=0.1).job_id == second.job_id

    def test_unknown_job_is_a_keyerror(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        with pytest.raises(KeyError, match="nope"):
            queue.get("nope")

    def test_progress_is_in_memory_only(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        queue = JobQueue(path)
        job, _ = queue.submit("run", "a", task_keys=["a1" * 32])
        queue.update_progress(job.job_id, n_done=2, n_total=4)
        assert queue.get(job.job_id).progress == {"n_done": 2, "n_total": 4}
        queue.close()
        assert JobQueue(path).get(job.job_id).progress == {}


class TestIdempotentSubmission:
    def test_identical_resubmission_returns_existing_job(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        job, _ = queue.submit("sweep", {"x": 1}, task_keys=["a1" * 32, "b2" * 32])
        again, resubmitted = queue.submit(
            "sweep", {"x": 1}, task_keys=["a1" * 32, "b2" * 32]
        )
        assert resubmitted
        assert again.job_id == job.job_id
        assert queue.counts()["submitted"] == 1

    def test_done_jobs_still_satisfy_resubmission(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        job, _ = queue.submit("sweep", {"x": 1}, task_keys=["a1" * 32])
        queue.claim(timeout=0.1)
        queue.mark_done(job.job_id, {})
        again, resubmitted = queue.submit("sweep", {"x": 1}, task_keys=["a1" * 32])
        assert resubmitted and again.job_id == job.job_id

    def test_failed_jobs_never_satisfy_resubmission(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        job, _ = queue.submit("sweep", {"x": 1}, task_keys=["a1" * 32])
        queue.claim(timeout=0.1)
        queue.mark_failed(job.job_id, "boom")
        retry, resubmitted = queue.submit("sweep", {"x": 1}, task_keys=["a1" * 32])
        assert not resubmitted
        assert retry.job_id != job.job_id

    def test_fresh_forces_a_new_job(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        job, _ = queue.submit("sweep", {"x": 1}, task_keys=["a1" * 32])
        forced, resubmitted = queue.submit(
            "sweep", {"x": 1}, task_keys=["a1" * 32], fresh=True
        )
        assert not resubmitted
        assert forced.job_id != job.job_id
        assert forced.hash == job.hash  # same content, distinct job

    def test_hash_covers_kind_and_task_keys(self):
        keys = ["a1" * 32, "b2" * 32]
        assert job_hash("sweep", keys) == job_hash("sweep", list(keys))
        assert job_hash("sweep", keys) != job_hash("optimize", keys)
        assert job_hash("sweep", keys) != job_hash("sweep", keys[:1])


class TestJournalDurability:
    def test_replay_restores_all_states(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        queue = JobQueue(path)
        done, _ = queue.submit("sweep", {"x": 1}, task_keys=["a1" * 32])
        queue.claim(timeout=0.1)
        queue.mark_done(done.job_id, {"n_ok": 1})
        failed, _ = queue.submit("run", "b", task_keys=["b2" * 32])
        queue.claim(timeout=0.1)
        queue.mark_failed(failed.job_id, "boom")
        waiting, _ = queue.submit("run", "c", task_keys=["c3" * 32])
        queue.close()

        replayed = JobQueue(path)
        assert replayed.get(done.job_id).state == "done"
        assert replayed.get(done.job_id).summary == {"n_ok": 1}
        assert replayed.get(failed.job_id).error == "boom"
        assert replayed.claim(timeout=0.1).job_id == waiting.job_id

    def test_running_jobs_are_requeued_as_recovered(self, tmp_path):
        """A job mid-flight when the process dies is requeued on replay."""
        path = tmp_path / "queue.jsonl"
        queue = JobQueue(path)
        job, _ = queue.submit("sweep", {"x": 1}, task_keys=["a1" * 32])
        queue.claim(timeout=0.1)
        queue.close()  # die without mark_done: journal ends at "running"

        replayed = JobQueue(path)
        assert replayed.n_recovered == 1
        recovered = replayed.claim(timeout=0.1)
        assert recovered.job_id == job.job_id
        assert recovered.recovered

    def test_torn_final_line_is_tolerated_and_healed(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        queue = JobQueue(path)
        job, _ = queue.submit("sweep", {"x": 1}, task_keys=["a1" * 32])
        queue.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "running", "job_id"')  # torn write

        replayed = JobQueue(path)
        assert replayed.get(job.job_id).state == "submitted"
        replayed.claim(timeout=0.1)  # appends: the torn tail must be healed
        replayed.close()
        lines = path.read_text().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_malformed_interior_line_raises(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        path.write_text('not json\n{"event": "submitted", "job_id": "x"}\n')
        with pytest.raises(ValueError, match="queue.jsonl:1"):
            JobQueue(path)

    def test_unknown_event_raises(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        path.write_text('{"event": "exploded", "job_id": "x"}\n')
        with pytest.raises(ValueError, match="exploded"):
            JobQueue(path)


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "ab" * 32
        cache.put(key, ok_record(key))
        entry = cache.get(key)
        assert entry["result"] == {"peak_temperature_K": 331.25}
        assert entry["status"] == "ok"
        assert cache.stats() == {
            "n_hits": 1,
            "n_misses": 0,
            "n_puts": 1,
            "n_gc_runs": 0,
            "n_gc_removed": 0,
        }

    def test_entries_strip_campaign_positional_fields(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "ab" * 32
        cache.put(key, ok_record(key))
        entry = cache.get(key)
        for volatile in ("index", "source", "executor", "wall_time_s", "counters"):
            assert volatile not in entry
        assert cacheable_record(ok_record(key)) == entry

    def test_two_level_fanout_layout(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "deadbeef" * 8
        cache.put(key, ok_record(key))
        assert cache.path_for(key).endswith(f"de/ad/{key}.json")
        assert key in cache
        assert list(cache.keys()) == [key]
        assert len(cache) == 1

    def test_miss_is_counted(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("ab" * 32) is None
        assert cache.stats()["n_misses"] == 1

    def test_only_ok_records_are_cacheable(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(ValueError, match="status='ok'"):
            cache.put("ab" * 32, ok_record(status="error"))

    def test_non_hash_keys_are_rejected(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(ValueError, match="lowercase hex"):
            cache.path_for("../../etc/passwd")
        with pytest.raises(ValueError, match="lowercase hex"):
            cache.path_for("abc")  # too short to fan out

    def test_corrupt_entry_is_a_miss_then_overwritten(self, tmp_path):
        import os

        cache = ResultCache(tmp_path / "cache")
        key = "ab" * 32
        cache.put(key, ok_record(key))
        with open(cache.path_for(key), "w", encoding="utf-8") as handle:
            handle.write('{"torn')
        assert cache.get(key) is None
        cache.put(key, ok_record(key))
        assert cache.get(key)["status"] == "ok"
        assert not [
            name
            for name in os.listdir(os.path.dirname(cache.path_for(key)))
            if name.startswith(".tmp-")
        ]


class TestResultCacheGc:
    @staticmethod
    def fill(cache, n, age_step_s=100.0):
        """n entries with strictly increasing mtimes (oldest first)."""
        import os
        import time

        now = time.time()
        keys = [f"{index:02x}" * 32 for index in range(n)]
        for index, key in enumerate(keys):
            cache.put(key, ok_record(key))
            mtime = now - (n - index) * age_step_s
            os.utime(cache.path_for(key), (mtime, mtime))
        return keys

    def test_age_expiry_removes_only_old_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = self.fill(cache, 4, age_step_s=100.0)  # ages 400..100 s
        report = cache.gc(max_age_s=250.0)
        assert report == {"n_scanned": 4, "n_removed": 2, "n_kept": 2}
        assert keys[0] not in cache and keys[1] not in cache
        assert keys[2] in cache and keys[3] in cache

    def test_entry_cap_removes_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = self.fill(cache, 5)
        report = cache.gc(max_entries=2)
        assert report["n_removed"] == 3
        assert report["n_kept"] == 2
        assert [key for key in keys if key in cache] == keys[3:]

    def test_age_and_cap_compose(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = self.fill(cache, 6, age_step_s=100.0)  # ages 600..100 s
        report = cache.gc(max_age_s=450.0, max_entries=2)
        assert report["n_removed"] == 4
        assert [key for key in keys if key in cache] == keys[4:]

    def test_noop_gc_keeps_everything_but_counts_the_run(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        self.fill(cache, 3)
        report = cache.gc()
        assert report == {"n_scanned": 3, "n_removed": 0, "n_kept": 3}
        stats = cache.stats()
        assert stats["n_gc_runs"] == 1
        assert stats["n_gc_removed"] == 0

    def test_negative_limits_are_rejected(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(ValueError, match="max_age_s"):
            cache.gc(max_age_s=-1.0)
        with pytest.raises(ValueError, match="max_entries"):
            cache.gc(max_entries=-1)

    def test_gc_counters_survive_a_restart(self, tmp_path):
        # Regression: gc runs/removals used to be per-handle, so 'repro
        # cache gc' (a fresh process each time) always reported zeros.
        cache = ResultCache(tmp_path / "cache")
        self.fill(cache, 4)
        cache.gc(max_entries=2)
        cache.gc()
        stats = cache.stats()
        assert stats["n_gc_runs"] == 2
        assert stats["n_gc_removed"] == 2

        reopened = ResultCache(tmp_path / "cache")
        durable = reopened.stats()
        assert durable["n_gc_runs"] == 2
        assert durable["n_gc_removed"] == 2
        # Traffic counters are per-handle by design and start at zero.
        assert durable["n_hits"] == 0 and durable["n_misses"] == 0
        # The stats file does not masquerade as a cache entry.
        assert len(list(reopened.keys())) == 2

    def test_gc_counters_accumulate_across_handles(self, tmp_path):
        first = ResultCache(tmp_path / "cache")
        self.fill(first, 3)
        first.gc(max_entries=1)
        second = ResultCache(tmp_path / "cache")
        second.gc()
        assert second.stats()["n_gc_runs"] == 2
        assert second.stats()["n_gc_removed"] == 2

    def test_torn_gc_stats_file_resets_to_zero(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        self.fill(cache, 2)
        cache.gc()
        import os

        stats_file = os.path.join(cache.root, "gc-stats.json")
        assert os.path.exists(stats_file)
        with open(stats_file, "w", encoding="utf-8") as handle:
            handle.write("{torn")
        reopened = ResultCache(tmp_path / "cache")
        assert reopened.stats()["n_gc_runs"] == 0

    def test_gc_tolerates_concurrently_removed_entries(self, tmp_path):
        import os

        cache = ResultCache(tmp_path / "cache")
        keys = self.fill(cache, 3)
        os.remove(cache.path_for(keys[0]))
        report = cache.gc(max_entries=0)
        assert report["n_scanned"] == 2
        assert report["n_removed"] == 2
        assert len(cache) == 0

    def test_removed_entries_become_clean_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = self.fill(cache, 2)
        cache.gc(max_entries=1)
        assert cache.get(keys[0]) is None
        assert cache.get(keys[1])["status"] == "ok"
        assert cache.stats()["n_gc_removed"] == 1


class TestSubmitBackpressure:
    def submit(self, queue, name, index):
        return queue.submit(
            "run", {"scenario": name}, task_keys=[f"{index:02x}" * 32]
        )

    def test_submissions_beyond_the_cap_raise(self, tmp_path):
        from repro.serve.queue import QueueFullError

        queue = JobQueue(tmp_path / "queue.jsonl", max_pending=2)
        self.submit(queue, "a", 0)
        self.submit(queue, "b", 1)
        with pytest.raises(QueueFullError, match="max_pending=2"):
            self.submit(queue, "c", 2)
        assert queue.n_rejected == 1

    def test_resubmission_of_a_pending_job_is_exempt(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl", max_pending=1)
        job, resubmitted = self.submit(queue, "a", 0)
        assert not resubmitted
        again, resubmitted = self.submit(queue, "a", 0)
        assert resubmitted and again.job_id == job.job_id
        assert queue.n_rejected == 0

    def test_draining_the_queue_reopens_submission(self, tmp_path):
        from repro.serve.queue import QueueFullError

        queue = JobQueue(tmp_path / "queue.jsonl", max_pending=1)
        job, _ = self.submit(queue, "a", 0)
        with pytest.raises(QueueFullError):
            self.submit(queue, "b", 1)
        claimed = queue.claim(timeout=1.0)
        assert claimed.job_id == job.job_id
        self.submit(queue, "b", 1)  # pending slot freed by the claim

    def test_default_queue_is_unbounded(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        assert queue.max_pending is None
        for index in range(20):
            self.submit(queue, f"s{index}", index)

    def test_cap_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="max_pending"):
            JobQueue(tmp_path / "queue.jsonl", max_pending=0)

    def test_replay_ignores_the_cap(self, tmp_path):
        """A journal holding more pending jobs than the cap must load."""
        queue = JobQueue(tmp_path / "queue.jsonl")
        for index in range(3):
            self.submit(queue, f"s{index}", index)
        reopened = JobQueue(tmp_path / "queue.jsonl", max_pending=1)
        assert reopened.counts()["submitted"] == 3
