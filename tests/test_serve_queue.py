"""Tests of the serve primitives: the durable job queue and the result cache."""

from __future__ import annotations

import json

import pytest

from repro.serve.cache import ResultCache, cacheable_record
from repro.serve.queue import JobQueue, job_hash


def ok_record(spec_hash="ab" * 32, **extra):
    record = {
        "spec_hash": spec_hash,
        "scenario": "t",
        "action": "run",
        "solver": "fdm",
        "status": "ok",
        "result": {"peak_temperature_K": 331.25},
        "index": 3,
        "source": "run",
        "executor": "serial",
        "wall_time_s": 0.01,
        "counters": {"n_solves": 1},
    }
    record.update(extra)
    return record


class TestJobLifecycle:
    def test_submit_claim_done(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        job, resubmitted = queue.submit("sweep", {"x": 1}, task_keys=["a1" * 32])
        assert not resubmitted
        assert job.state == "submitted"
        assert job.n_total == 1
        assert job.job_id == job.hash[:12]
        claimed = queue.claim(timeout=0.1)
        assert claimed.job_id == job.job_id
        assert claimed.state == "running"
        queue.mark_done(job.job_id, {"n_ok": 1})
        assert queue.get(job.job_id).state == "done"
        assert queue.get(job.job_id).summary == {"n_ok": 1}
        assert queue.counts()["done"] == 1

    def test_failed_jobs_record_the_error(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        job, _ = queue.submit("run", "test-a", task_keys=["a1" * 32])
        queue.claim(timeout=0.1)
        queue.mark_failed(job.job_id, "RuntimeError: boom")
        final = queue.get(job.job_id)
        assert final.state == "failed"
        assert "boom" in final.error

    def test_claim_times_out_empty(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        assert queue.claim(timeout=0.01) is None

    def test_claim_is_fifo(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        first, _ = queue.submit("run", "a", task_keys=["a1" * 32])
        second, _ = queue.submit("run", "b", task_keys=["b2" * 32])
        assert queue.claim(timeout=0.1).job_id == first.job_id
        assert queue.claim(timeout=0.1).job_id == second.job_id

    def test_unknown_job_is_a_keyerror(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        with pytest.raises(KeyError, match="nope"):
            queue.get("nope")

    def test_progress_is_in_memory_only(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        queue = JobQueue(path)
        job, _ = queue.submit("run", "a", task_keys=["a1" * 32])
        queue.update_progress(job.job_id, n_done=2, n_total=4)
        assert queue.get(job.job_id).progress == {"n_done": 2, "n_total": 4}
        queue.close()
        assert JobQueue(path).get(job.job_id).progress == {}


class TestIdempotentSubmission:
    def test_identical_resubmission_returns_existing_job(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        job, _ = queue.submit("sweep", {"x": 1}, task_keys=["a1" * 32, "b2" * 32])
        again, resubmitted = queue.submit(
            "sweep", {"x": 1}, task_keys=["a1" * 32, "b2" * 32]
        )
        assert resubmitted
        assert again.job_id == job.job_id
        assert queue.counts()["submitted"] == 1

    def test_done_jobs_still_satisfy_resubmission(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        job, _ = queue.submit("sweep", {"x": 1}, task_keys=["a1" * 32])
        queue.claim(timeout=0.1)
        queue.mark_done(job.job_id, {})
        again, resubmitted = queue.submit("sweep", {"x": 1}, task_keys=["a1" * 32])
        assert resubmitted and again.job_id == job.job_id

    def test_failed_jobs_never_satisfy_resubmission(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        job, _ = queue.submit("sweep", {"x": 1}, task_keys=["a1" * 32])
        queue.claim(timeout=0.1)
        queue.mark_failed(job.job_id, "boom")
        retry, resubmitted = queue.submit("sweep", {"x": 1}, task_keys=["a1" * 32])
        assert not resubmitted
        assert retry.job_id != job.job_id

    def test_fresh_forces_a_new_job(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        job, _ = queue.submit("sweep", {"x": 1}, task_keys=["a1" * 32])
        forced, resubmitted = queue.submit(
            "sweep", {"x": 1}, task_keys=["a1" * 32], fresh=True
        )
        assert not resubmitted
        assert forced.job_id != job.job_id
        assert forced.hash == job.hash  # same content, distinct job

    def test_hash_covers_kind_and_task_keys(self):
        keys = ["a1" * 32, "b2" * 32]
        assert job_hash("sweep", keys) == job_hash("sweep", list(keys))
        assert job_hash("sweep", keys) != job_hash("optimize", keys)
        assert job_hash("sweep", keys) != job_hash("sweep", keys[:1])


class TestJournalDurability:
    def test_replay_restores_all_states(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        queue = JobQueue(path)
        done, _ = queue.submit("sweep", {"x": 1}, task_keys=["a1" * 32])
        queue.claim(timeout=0.1)
        queue.mark_done(done.job_id, {"n_ok": 1})
        failed, _ = queue.submit("run", "b", task_keys=["b2" * 32])
        queue.claim(timeout=0.1)
        queue.mark_failed(failed.job_id, "boom")
        waiting, _ = queue.submit("run", "c", task_keys=["c3" * 32])
        queue.close()

        replayed = JobQueue(path)
        assert replayed.get(done.job_id).state == "done"
        assert replayed.get(done.job_id).summary == {"n_ok": 1}
        assert replayed.get(failed.job_id).error == "boom"
        assert replayed.claim(timeout=0.1).job_id == waiting.job_id

    def test_running_jobs_are_requeued_as_recovered(self, tmp_path):
        """A job mid-flight when the process dies is requeued on replay."""
        path = tmp_path / "queue.jsonl"
        queue = JobQueue(path)
        job, _ = queue.submit("sweep", {"x": 1}, task_keys=["a1" * 32])
        queue.claim(timeout=0.1)
        queue.close()  # die without mark_done: journal ends at "running"

        replayed = JobQueue(path)
        assert replayed.n_recovered == 1
        recovered = replayed.claim(timeout=0.1)
        assert recovered.job_id == job.job_id
        assert recovered.recovered

    def test_torn_final_line_is_tolerated_and_healed(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        queue = JobQueue(path)
        job, _ = queue.submit("sweep", {"x": 1}, task_keys=["a1" * 32])
        queue.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "running", "job_id"')  # torn write

        replayed = JobQueue(path)
        assert replayed.get(job.job_id).state == "submitted"
        replayed.claim(timeout=0.1)  # appends: the torn tail must be healed
        replayed.close()
        lines = path.read_text().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_malformed_interior_line_raises(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        path.write_text('not json\n{"event": "submitted", "job_id": "x"}\n')
        with pytest.raises(ValueError, match="queue.jsonl:1"):
            JobQueue(path)

    def test_unknown_event_raises(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        path.write_text('{"event": "exploded", "job_id": "x"}\n')
        with pytest.raises(ValueError, match="exploded"):
            JobQueue(path)


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "ab" * 32
        cache.put(key, ok_record(key))
        entry = cache.get(key)
        assert entry["result"] == {"peak_temperature_K": 331.25}
        assert entry["status"] == "ok"
        assert cache.stats() == {"n_hits": 1, "n_misses": 0, "n_puts": 1}

    def test_entries_strip_campaign_positional_fields(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "ab" * 32
        cache.put(key, ok_record(key))
        entry = cache.get(key)
        for volatile in ("index", "source", "executor", "wall_time_s", "counters"):
            assert volatile not in entry
        assert cacheable_record(ok_record(key)) == entry

    def test_two_level_fanout_layout(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "deadbeef" * 8
        cache.put(key, ok_record(key))
        assert cache.path_for(key).endswith(f"de/ad/{key}.json")
        assert key in cache
        assert list(cache.keys()) == [key]
        assert len(cache) == 1

    def test_miss_is_counted(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("ab" * 32) is None
        assert cache.stats()["n_misses"] == 1

    def test_only_ok_records_are_cacheable(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(ValueError, match="status='ok'"):
            cache.put("ab" * 32, ok_record(status="error"))

    def test_non_hash_keys_are_rejected(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(ValueError, match="lowercase hex"):
            cache.path_for("../../etc/passwd")
        with pytest.raises(ValueError, match="lowercase hex"):
            cache.path_for("abc")  # too short to fan out

    def test_corrupt_entry_is_a_miss_then_overwritten(self, tmp_path):
        import os

        cache = ResultCache(tmp_path / "cache")
        key = "ab" * 32
        cache.put(key, ok_record(key))
        with open(cache.path_for(key), "w", encoding="utf-8") as handle:
            handle.write('{"torn')
        assert cache.get(key) is None
        cache.put(key, ok_record(key))
        assert cache.get(key)["status"] == "ok"
        assert not [
            name
            for name in os.listdir(os.path.dirname(cache.path_for(key)))
            if name.startswith(".tmp-")
        ]
