"""Golden-record regression tests of the headline scenario results.

Small JSON goldens under ``tests/goldens/`` pin the steady metrics of the
paper's scenarios (``test-a``, ``test-b``, ``niagara-arch1``) through
*both* simulator families, plus the transient metrics and subsampled peak
history of a short trace-driven run.  Any change to the physics, the
assembly, the solver backends or the metric reducers that shifts a
reported number past tolerance fails here with a field-by-field diff.

Refresh intentionally-changed goldens with::

    PYTHONPATH=src python -m pytest tests/test_goldens.py --update-goldens

and commit the rewritten files.  Comparison is tolerance-aware
(rel. 1e-6 by default) so goldens are portable across BLAS/LAPACK builds.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.api import Session
from repro.scenarios import get_scenario
from repro.transient_engine import simulate_transient

#: The steady scenarios pinned by goldens, with the simulator families
#: each must reproduce.
STEADY_GOLDENS = ("test-a", "test-b", "niagara-arch1")


def stable_metrics(result) -> dict:
    """The machine-independent slice of a SimulationResult payload."""
    payload = result.to_dict()
    stable = {
        key: payload[key]
        for key in (
            "scenario",
            "simulator",
            "peak_temperature_K",
            "min_temperature_K",
            "thermal_gradient_K",
            "coolant_rise_K",
            "pressure_drops_Pa",
            "max_pressure_drop_Pa",
        )
    }
    if payload.get("transient") is not None:
        transient = dict(payload["transient"])
        stable["transient"] = transient
    return stable


@pytest.fixture(scope="module")
def session():
    return Session()


class TestComparator:
    """The tolerance-aware diff itself must catch what it claims to."""

    def test_within_tolerance_passes(self):
        from golden_utils import compare_golden

        expected = {"a": 1.0, "nested": {"b": [1.0, 2.0]}}
        actual = {"a": 1.0 + 1e-9, "nested": {"b": [1.0, 2.0 - 1e-8]}}
        assert compare_golden(expected, actual, rtol=1e-6) == []

    def test_out_of_tolerance_and_shape_changes_fail(self):
        from golden_utils import compare_golden

        assert compare_golden({"a": 1.0}, {"a": 1.1}, rtol=1e-6)
        assert compare_golden({"a": 1.0}, {}, rtol=1e-6)
        assert compare_golden({"a": [1.0]}, {"a": [1.0, 2.0]})
        assert compare_golden({"a": True}, {"a": 1.0})  # bools are exact
        assert compare_golden({"a": "x"}, {"a": "y"})


@pytest.mark.parametrize("name", STEADY_GOLDENS)
def test_steady_goldens(name, session, golden):
    spec = get_scenario(name)
    golden(
        name,
        {
            "fdm": stable_metrics(session.run(spec, solver="fdm")),
            "ice": stable_metrics(session.run(spec, solver="ice")),
        },
    )


def test_adjoint_optimize_golden(session, golden):
    # Pin a short adjoint-driven optimization of Test A: the optimizer
    # trajectory depends on every gradient component, so any drift in the
    # adjoint assembly or the transpose solves shifts these summary
    # numbers past tolerance.
    base = get_scenario("test-a")
    spec = base.with_overrides(
        name="test-a-adjoint-short",
        optimizer=replace(
            base.optimizer, max_iterations=10, gradient_mode="adjoint"
        ),
    )
    outcome = session.optimize(spec)
    assert outcome.to_dict()["provenance"]["gradient_mode"] == "adjoint"
    summary = outcome.result.summary()
    golden(
        "test-a-adjoint-short",
        {
            key: value
            for key, value in summary.items()
            if isinstance(value, (int, float, str, bool))
        },
        # An SLSQP trajectory accumulates round-off across iterations.
        rtol=1e-5,
    )


def test_transient_golden(session, golden):
    # A short version of the registered burst scenario keeps the golden
    # small and the test fast while still exercising traces end to end.
    base = get_scenario("test-a-burst")
    spec = base.with_overrides(
        name="test-a-burst-short",
        transient=replace(base.transient, duration_s=0.4, store_every=4),
    )
    outcome = simulate_transient(spec)
    result = session.run(spec)
    golden(
        "test-a-burst-short",
        {
            "metrics": stable_metrics(result),
            # Every 5th per-step peak pins the trajectory shape without
            # bloating the fixture.
            "peak_history_K": [
                float(value) for value in outcome.peak_history_K[::5]
            ],
            "times_s": [float(value) for value in outcome.step_times_s[::5]],
        },
        # 40 implicit steps accumulate a little more round-off spread
        # across BLAS builds than one steady solve.
        rtol=1e-5,
    )
    assert np.array_equal(
        outcome.peak_history_K,
        simulate_transient(spec).peak_history_K,
    )


def test_transient_rom_golden(session, golden):
    # The registered reduced-order burst scenario: pins the ROM
    # trajectory *and* its measured-error contract (rom_order,
    # rom_peak_abs_err_K) through the Session payload.
    outcome = simulate_transient("test-a-burst-rom")
    result = session.run("test-a-burst-rom")
    assert result.transient["rom_peak_abs_err_K"] <= 1e-3
    golden(
        "test-a-burst-rom",
        {
            "metrics": stable_metrics(result),
            "peak_history_K": [
                float(value) for value in outcome.peak_history_K[::10]
            ],
            "times_s": [float(value) for value in outcome.step_times_s[::10]],
        },
        # The reduced trajectory round-off spreads like the full one's;
        # the absolute floor keeps the ~1e-12 K measured-error metric
        # (pure round-off, machine-dependent) from failing on relative
        # terms.
        rtol=1e-5,
        atol=1e-6,
    )
    assert np.array_equal(
        outcome.peak_history_K,
        simulate_transient("test-a-burst-rom").peak_history_K,
    )
